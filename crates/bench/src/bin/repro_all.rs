//! Runs every reproduction experiment in paper order and prints all
//! tables. Pass `--quick` for a fast smoke run of the whole suite.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for experiment in etrain_bench::registry() {
        println!("# {} — {}", experiment.id, experiment.artifact);
        for table in (experiment.run)(quick) {
            println!("{table}");
        }
    }
}
