//! Fig. 10(c): controlled experiment — impact of the delay-cost deadline.
//!
//! Paper setup: all three cargo apps share one deadline, swept from 10 s
//! to 180 s. Paper result: adapting the deadline traces an energy–delay
//! tradeoff similar to Θ's — a larger deadline lets packets wait for more
//! piggybacking opportunities and saves more energy.

use crate::ExperimentResult;
use etrain_sim::sweep::deadline_sweep;
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, pct, s};

/// Runs the Fig. 10(c) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick).scheduler(SchedulerKind::ETrain {
        theta: 0.2,
        k: None,
    });
    let deadlines: &[f64] = if quick {
        &[10.0, 60.0, 180.0]
    } else {
        &[10.0, 30.0, 60.0, 90.0, 120.0, 150.0, 180.0]
    };
    let sweep = deadline_sweep(&base, deadlines);
    let first_energy = sweep[0].1.extra_energy_j;

    let mut table = Table::new(
        "Fig. 10(c) — shared deadline sweep (Θ = 0.2, k = ∞)",
        &["deadline_s", "energy_j", "delay_s", "violation", "vs_10s"],
    );
    for (deadline, report) in &sweep {
        table.push_row_strings(vec![
            format!("{deadline:.0}"),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            pct(report.deadline_violation_ratio),
            pct(1.0 - report.extra_energy_j / first_energy),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "saving_at_180s_deadline",
        0,
        -1,
        "vs_10s",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_deadline_saves_energy() {
        let tables = run(true).tables;
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let e_small: f64 = rows[0][1].parse().unwrap();
        let e_large: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(
            e_large < e_small,
            "180 s deadline ({e_large} J) should beat 10 s ({e_small} J)"
        );
    }
}
