//! The paper's *offline* tail-energy minimization (Sec. III, Eq. 1):
//! given full knowledge of packet arrivals and train departure times,
//! choose transmission times `S = {t_s(u)}` minimizing total tail energy
//! subject to causality (Eq. 2) and a total delay-cost budget (Eq. 4).
//!
//! The paper notes the problem generalizes Knapsack and is NP-hard, and
//! therefore designs the online Algorithm 1 instead. This module provides
//! the offline side as a reference:
//!
//! - [`OfflineProblem::solve_exhaustive`] — exact search over the
//!   candidate grid (arrival instants and subsequent heartbeat departures)
//!   for small instances; used by tests to bound the online algorithm;
//! - [`OfflineProblem::solve_greedy`] — a scalable heuristic: ride the
//!   next train whenever the delay-cost budget allows, otherwise transmit
//!   on arrival.
//!
//! Restricting candidates to arrivals and heartbeat departures is the
//! natural discretization of the paper's slotted model: between those
//! instants the tail-energy landscape only worsens (waiting longer without
//! reaching a train strictly increases delay cost without creating new
//! sharing opportunities).

use etrain_radio::{analytic_extra_energy_j, RadioParams, Transmission};
use etrain_trace::heartbeats::Heartbeat;
use etrain_trace::packets::Packet;

use crate::queue::AppProfile;

/// One packet's chosen transmission time in an offline schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineRelease {
    /// The scheduled packet.
    pub packet: Packet,
    /// Its transmission time `t_s(u)` in seconds.
    pub release_s: f64,
}

/// A complete offline schedule with its objective values.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineSchedule {
    /// Per-packet release times.
    pub releases: Vec<OfflineRelease>,
    /// Extra radio energy (transmission + tails) of the whole schedule in
    /// joules, including the heartbeats.
    pub energy_j: f64,
    /// Total delay cost `Σ φ_u(t_s(u) − t_a(u))` of the schedule.
    pub delay_cost: f64,
}

/// An offline problem instance.
///
/// # Examples
///
/// ```
/// use etrain_radio::RadioParams;
/// use etrain_sched::{AppProfile, CostProfile, OfflineProblem};
/// use etrain_trace::heartbeats::Heartbeat;
/// use etrain_trace::packets::Packet;
/// use etrain_trace::{CargoAppId, TrainAppId};
///
/// let problem = OfflineProblem {
///     packets: vec![Packet { id: 0, app: CargoAppId(0), arrival_s: 10.0, size_bytes: 5_000 }],
///     heartbeats: vec![Heartbeat { train: TrainAppId(0), time_s: 60.0, size_bytes: 100 }],
///     profiles: vec![AppProfile::new("Mail", CostProfile::mail(300.0))],
///     radio: RadioParams::galaxy_s4_3g(),
///     bandwidth_bps: 450_000.0,
///     horizon_s: 200.0,
///     cost_budget: 10.0,
/// };
/// let exact = problem.solve_exhaustive().expect("instance is small");
/// // Riding the heartbeat at 60 s shares its tail and is optimal here.
/// assert_eq!(exact.releases[0].release_s, 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct OfflineProblem {
    /// Packets to schedule, any order.
    pub packets: Vec<Packet>,
    /// Train departures (fixed, never rescheduled), any order.
    pub heartbeats: Vec<Heartbeat>,
    /// Delay-cost profiles indexed by the packets' app ids.
    pub profiles: Vec<AppProfile>,
    /// Radio parameters for the energy objective.
    pub radio: RadioParams,
    /// Constant uplink bandwidth used to derive transmission durations.
    pub bandwidth_bps: f64,
    /// Scenario horizon (tails truncate here) in seconds.
    pub horizon_s: f64,
    /// The paper's Eq. 4 budget Θ on the total delay cost.
    pub cost_budget: f64,
}

/// Instances up to this packet count may be solved exhaustively.
const EXHAUSTIVE_LIMIT: usize = 10;

impl OfflineProblem {
    fn tx_duration_s(&self, size_bytes: u64) -> f64 {
        size_bytes as f64 * 8.0 / self.bandwidth_bps
    }

    /// Candidate release times for one packet: its arrival plus every
    /// later heartbeat inside the horizon.
    fn candidates(&self, packet: &Packet) -> Vec<f64> {
        let mut c = vec![packet.arrival_s];
        c.extend(
            self.heartbeats
                .iter()
                .map(|hb| hb.time_s)
                .filter(|&t| t >= packet.arrival_s && t < self.horizon_s),
        );
        c
    }

    fn delay_cost_of(&self, packet: &Packet, release_s: f64) -> f64 {
        self.profiles[packet.app.index()]
            .cost
            .cost(release_s - packet.arrival_s)
    }

    /// Evaluates a full assignment: total extra energy of heartbeats plus
    /// packets released at the given times (serialized back-to-back when
    /// they collide), and the schedule's delay cost.
    fn evaluate(&self, releases: &[(Packet, f64)]) -> (f64, f64) {
        let mut txs: Vec<Transmission> = self
            .heartbeats
            .iter()
            .map(|hb| Transmission::new(hb.time_s, self.tx_duration_s(hb.size_bytes)))
            .collect();
        // Serialize same-instant releases: sort by time, push each start
        // to the end of the previous transmission if they overlap.
        let mut ordered: Vec<(f64, f64)> = releases
            .iter()
            .map(|(p, t)| (*t, self.tx_duration_s(p.size_bytes)))
            .collect();
        ordered.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cursor: f64 = 0.0;
        for (start, duration) in ordered {
            let actual = start.max(cursor);
            txs.push(Transmission::new(actual, duration));
            cursor = actual + duration;
        }
        let energy = analytic_extra_energy_j(&self.radio, &txs, self.horizon_s);
        let cost = releases
            .iter()
            .map(|(p, t)| self.delay_cost_of(p, *t))
            .sum();
        (energy, cost)
    }

    /// Exact minimization over the candidate grid.
    ///
    /// Returns `None` when the instance exceeds the exhaustive limit
    /// (10 packets) — use [`OfflineProblem::solve_greedy`] instead.
    pub fn solve_exhaustive(&self) -> Option<OfflineSchedule> {
        if self.packets.len() > EXHAUSTIVE_LIMIT {
            return None;
        }
        let candidate_sets: Vec<Vec<f64>> =
            self.packets.iter().map(|p| self.candidates(p)).collect();
        let mut best: Option<(f64, Vec<f64>, f64)> = None;
        let mut assignment = vec![0usize; self.packets.len()];
        loop {
            let releases: Vec<(Packet, f64)> = self
                .packets
                .iter()
                .enumerate()
                .map(|(i, p)| (*p, candidate_sets[i][assignment[i]]))
                .collect();
            let (energy, cost) = self.evaluate(&releases);
            if cost <= self.cost_budget {
                let better = best.as_ref().is_none_or(|(e, _, _)| energy < *e);
                if better {
                    best = Some((energy, releases.iter().map(|(_, t)| *t).collect(), cost));
                }
            }
            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == assignment.len() {
                    let (energy, times, cost) = best?;
                    let releases = self
                        .packets
                        .iter()
                        .zip(times)
                        .map(|(p, t)| OfflineRelease {
                            packet: *p,
                            release_s: t,
                        })
                        .collect();
                    return Some(OfflineSchedule {
                        releases,
                        energy_j: energy,
                        delay_cost: cost,
                    });
                }
                assignment[pos] += 1;
                if assignment[pos] < candidate_sets[pos].len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
    }

    /// Whether [`OfflineProblem::solve_exhaustive`] can handle this
    /// instance (at most 10 packets).
    pub fn is_exact_tractable(&self) -> bool {
        self.packets.len() <= EXHAUSTIVE_LIMIT
    }

    /// Best known offline schedule, for use as an ordering bound.
    ///
    /// Returns the exact candidate-grid optimum when the instance is within
    /// the exhaustive limit and a feasible assignment exists, otherwise the
    /// greedy heuristic. The flag is `true` only in the exact case — only
    /// then is the returned energy a true lower bound (on the candidate
    /// grid) that an online scheduler must not beat by more than
    /// discretization slack.
    pub fn solve_best(&self) -> (OfflineSchedule, bool) {
        if self.is_exact_tractable() {
            if let Some(schedule) = self.solve_exhaustive() {
                return (schedule, true);
            }
        }
        (self.solve_greedy(), false)
    }

    /// Greedy heuristic: each packet rides the next heartbeat after its
    /// arrival if the incremental delay cost fits the remaining budget;
    /// otherwise it transmits on arrival.
    pub fn solve_greedy(&self) -> OfflineSchedule {
        let mut remaining = self.cost_budget;
        let mut releases = Vec::with_capacity(self.packets.len());
        let mut ordered: Vec<&Packet> = self.packets.iter().collect();
        ordered.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        for packet in ordered {
            let next_train = self
                .heartbeats
                .iter()
                .map(|hb| hb.time_s)
                .filter(|&t| t >= packet.arrival_s && t < self.horizon_s)
                .fold(f64::INFINITY, f64::min);
            let release = if next_train.is_finite() {
                let cost = self.delay_cost_of(packet, next_train);
                if cost <= remaining {
                    remaining -= cost;
                    next_train
                } else {
                    packet.arrival_s
                }
            } else {
                packet.arrival_s
            };
            releases.push((*packet, release));
        }
        let (energy, cost) = self.evaluate(&releases);
        OfflineSchedule {
            releases: releases
                .into_iter()
                .map(|(packet, release_s)| OfflineRelease { packet, release_s })
                .collect(),
            energy_j: energy,
            delay_cost: cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use etrain_trace::{CargoAppId, TrainAppId};

    fn packet(id: u64, arrival_s: f64) -> Packet {
        Packet {
            id,
            app: CargoAppId(0),
            arrival_s,
            size_bytes: 5_000,
        }
    }

    fn heartbeat(time_s: f64) -> Heartbeat {
        Heartbeat {
            train: TrainAppId(0),
            time_s,
            size_bytes: 100,
        }
    }

    fn problem(packets: Vec<Packet>, heartbeats: Vec<Heartbeat>, budget: f64) -> OfflineProblem {
        OfflineProblem {
            packets,
            heartbeats,
            profiles: vec![AppProfile::new("Weibo", CostProfile::weibo(120.0))],
            radio: RadioParams::galaxy_s4_3g(),
            bandwidth_bps: 450_000.0,
            horizon_s: 700.0,
            cost_budget: budget,
        }
    }

    #[test]
    fn solve_best_is_exact_for_small_instances() {
        let p = problem(
            vec![packet(0, 10.0), packet(1, 200.0)],
            vec![heartbeat(60.0), heartbeat(300.0)],
            f64::MAX,
        );
        assert!(p.is_exact_tractable());
        let (best, exact) = p.solve_best();
        assert!(exact);
        let optimum = p.solve_exhaustive().unwrap();
        assert_eq!(best.energy_j, optimum.energy_j);
        // Exact optimum never above the greedy heuristic.
        assert!(best.energy_j <= p.solve_greedy().energy_j + 1e-9);
    }

    #[test]
    fn solve_best_falls_back_to_greedy_above_the_limit() {
        let packets: Vec<Packet> = (0..12).map(|i| packet(i, 10.0 * i as f64)).collect();
        let p = problem(packets, vec![heartbeat(300.0)], f64::MAX);
        assert!(!p.is_exact_tractable());
        let (best, exact) = p.solve_best();
        assert!(!exact);
        assert_eq!(best.energy_j, p.solve_greedy().energy_j);
    }

    #[test]
    fn lone_packet_rides_the_train_when_budget_allows() {
        let p = problem(vec![packet(0, 10.0)], vec![heartbeat(60.0)], 10.0);
        let schedule = p.solve_exhaustive().unwrap();
        assert_eq!(schedule.releases[0].release_s, 60.0);
        // Sharing the heartbeat's tail: strictly cheaper than two tails.
        let immediate = p.evaluate(&[(packet(0, 10.0), 10.0)]).0;
        assert!(schedule.energy_j < immediate);
    }

    #[test]
    fn zero_budget_forces_transmit_on_arrival() {
        let p = problem(vec![packet(0, 10.0)], vec![heartbeat(60.0)], 0.0);
        let schedule = p.solve_exhaustive().unwrap();
        assert_eq!(schedule.releases[0].release_s, 10.0);
        assert_eq!(schedule.delay_cost, 0.0);
    }

    #[test]
    fn exhaustive_is_no_worse_than_greedy() {
        let p = problem(
            vec![packet(0, 5.0), packet(1, 40.0), packet(2, 100.0)],
            vec![heartbeat(60.0), heartbeat(200.0), heartbeat(400.0)],
            4.0,
        );
        let exact = p.solve_exhaustive().unwrap();
        let greedy = p.solve_greedy();
        assert!(exact.energy_j <= greedy.energy_j + 1e-9);
        assert!(exact.delay_cost <= p.cost_budget + 1e-9);
        assert!(greedy.delay_cost <= p.cost_budget + 1e-9);
    }

    #[test]
    fn oversized_instances_fall_back_to_greedy() {
        let packets: Vec<Packet> = (0..16).map(|i| packet(i, i as f64 * 10.0)).collect();
        let p = problem(packets, vec![heartbeat(300.0)], 100.0);
        assert!(p.solve_exhaustive().is_none());
        let greedy = p.solve_greedy();
        assert_eq!(greedy.releases.len(), 16);
    }

    #[test]
    fn greedy_respects_budget() {
        // Budget only covers one packet's ride; the second transmits on
        // arrival.
        let p = problem(
            vec![packet(0, 10.0), packet(1, 12.0)],
            vec![heartbeat(100.0)],
            0.8, // each ride costs (100−arrival)/120 ≈ 0.74
        );
        let greedy = p.solve_greedy();
        let rides = greedy
            .releases
            .iter()
            .filter(|r| r.release_s == 100.0)
            .count();
        assert_eq!(rides, 1);
        assert!(greedy.delay_cost <= 0.8);
    }

    #[test]
    fn causality_always_holds() {
        let p = problem(
            vec![packet(0, 150.0)],
            vec![heartbeat(60.0), heartbeat(200.0)],
            100.0,
        );
        let schedule = p.solve_exhaustive().unwrap();
        // The 60 s heartbeat precedes the arrival and must not be chosen.
        assert!(schedule.releases[0].release_s >= 150.0);
    }
}
