//! The multi-app heartbeat monitor: one [`CycleDetector`] per train app
//! plus liveness tracking.

use std::collections::BTreeMap;

use etrain_trace::TrainAppId;

use crate::detect::{CycleDetector, DetectedPattern};

/// Liveness status of a train app as judged by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainStatus {
    /// Heartbeats are arriving on schedule.
    Alive,
    /// The app has missed enough expected heartbeats to be presumed dead
    /// (its daemon was killed, or the app was uninstalled).
    Dead,
    /// Not enough observations to judge.
    Undetermined,
}

/// How many multiples of the expected cycle may elapse without a heartbeat
/// before the train app is presumed dead.
const LIVENESS_GRACE_FACTOR: f64 = 2.5;

/// The Heartbeat Monitor module of eTrain (paper Sec. V-2), adapted for
/// observation-based operation: it ingests heartbeat transmission events per
/// train app, learns each app's cycle and exposes the union of predicted
/// "train departure times" that the scheduler piggybacks on.
///
/// # Examples
///
/// ```
/// use etrain_hb::HeartbeatMonitor;
/// use etrain_trace::TrainAppId;
///
/// let mut monitor = HeartbeatMonitor::new();
/// for j in 0..5 {
///     monitor.observe(TrainAppId(0), j as f64 * 300.0);
/// }
/// let next = monitor.next_departure(1200.0).unwrap();
/// assert_eq!(next.0, TrainAppId(0));
/// assert!((next.1 - 1500.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HeartbeatMonitor {
    detectors: BTreeMap<TrainAppId, CycleDetector>,
}

impl HeartbeatMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        HeartbeatMonitor {
            detectors: BTreeMap::new(),
        }
    }

    /// Records a heartbeat of `train` at `time_s`. Unknown train apps are
    /// registered implicitly, mirroring the Android implementation where the
    /// Xposed hook fires for whatever app sends a heartbeat.
    pub fn observe(&mut self, train: TrainAppId, time_s: f64) {
        self.detectors.entry(train).or_default().observe(time_s);
    }

    /// Removes a train app (e.g. the user uninstalled it).
    pub fn remove(&mut self, train: TrainAppId) -> bool {
        self.detectors.remove(&train).is_some()
    }

    /// The train apps the monitor has seen, in id order.
    pub fn trains(&self) -> Vec<TrainAppId> {
        self.detectors.keys().copied().collect()
    }

    /// The per-app detector, if the app has been observed.
    pub fn detector(&self, train: TrainAppId) -> Option<&CycleDetector> {
        self.detectors.get(&train)
    }

    /// The detected pattern of `train` ([`DetectedPattern::Unknown`] if the
    /// app is unknown).
    pub fn pattern(&self, train: TrainAppId) -> DetectedPattern {
        self.detectors
            .get(&train)
            .map_or(DetectedPattern::Unknown, CycleDetector::detect)
    }

    /// Judges whether `train` is still alive at time `now_s`.
    ///
    /// An app is presumed dead once `LIVENESS_GRACE_FACTOR` times its
    /// expected cycle has passed without a heartbeat.
    pub fn status(&self, train: TrainAppId, now_s: f64) -> TrainStatus {
        let Some(detector) = self.detectors.get(&train) else {
            return TrainStatus::Undetermined;
        };
        let Some(last) = detector.last_observation_s() else {
            return TrainStatus::Undetermined;
        };
        let expected_cycle = match detector.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => cycle_s,
            DetectedPattern::Adaptive {
                current_level_s, ..
            } => current_level_s,
            DetectedPattern::Unknown => return TrainStatus::Undetermined,
        };
        if now_s - last > LIVENESS_GRACE_FACTOR * expected_cycle {
            TrainStatus::Dead
        } else {
            TrainStatus::Alive
        }
    }

    /// Whether any train app is alive at `now_s` — when this is false the
    /// eTrain scheduler must stop deferring packets (paper Sec. V-3).
    pub fn any_alive(&self, now_s: f64) -> bool {
        self.detectors
            .keys()
            .any(|&train| self.status(train, now_s) == TrainStatus::Alive)
    }

    /// The earliest predicted departure strictly after `now_s` across all
    /// live train apps, with the app that produces it.
    pub fn next_departure(&self, now_s: f64) -> Option<(TrainAppId, f64)> {
        self.detectors
            .iter()
            .filter(|&(&train, _)| self.status(train, now_s) != TrainStatus::Dead)
            .filter_map(|(&train, detector)| {
                let mut next = detector.predict_next()?;
                // Roll forward past `now_s` using the detector's horizon
                // prediction (handles a monitor queried long after the last
                // observation).
                if next <= now_s {
                    next = *detector
                        .predict_until(
                            now_s,
                            now_s + 4.0 * (next - detector.last_observation_s()?).max(1.0),
                        )
                        .first()?;
                }
                Some((train, next))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// All predicted departures in `(after_s, until_s]`, merged across live
    /// train apps and time-sorted. This is the set `H` of paper Sec. III-C
    /// restricted to the lookahead window.
    pub fn departures_between(&self, after_s: f64, until_s: f64) -> Vec<(TrainAppId, f64)> {
        let mut out: Vec<(TrainAppId, f64)> = self
            .detectors
            .iter()
            .filter(|&(&train, _)| self.status(train, after_s) != TrainStatus::Dead)
            .flat_map(|(&train, detector)| {
                detector
                    .predict_until(after_s, until_s)
                    .into_iter()
                    .map(move |t| (train, t))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed_monitor() -> HeartbeatMonitor {
        let mut m = HeartbeatMonitor::new();
        // QQ-like 300 s and WhatsApp-like 240 s.
        for j in 0..5 {
            m.observe(TrainAppId(0), j as f64 * 300.0);
            m.observe(TrainAppId(1), 20.0 + j as f64 * 240.0);
        }
        m
    }

    #[test]
    fn implicit_registration_and_listing() {
        let m = fed_monitor();
        assert_eq!(m.trains(), vec![TrainAppId(0), TrainAppId(1)]);
        assert!(m.detector(TrainAppId(0)).is_some());
        assert!(m.detector(TrainAppId(9)).is_none());
    }

    #[test]
    fn next_departure_picks_earliest_across_apps() {
        let m = fed_monitor();
        // After t=1200: QQ next at 1500, WhatsApp (last 980) next at 1220.
        let (train, t) = m.next_departure(1200.0).unwrap();
        assert_eq!(train, TrainAppId(1));
        assert!((t - 1220.0).abs() < 1.0);
    }

    #[test]
    fn departures_between_merges_and_sorts() {
        let m = fed_monitor();
        let deps = m.departures_between(1200.0, 2000.0);
        assert!(!deps.is_empty());
        assert!(deps.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(deps.iter().any(|&(train, _)| train == TrainAppId(0)));
        assert!(deps.iter().any(|&(train, _)| train == TrainAppId(1)));
    }

    #[test]
    fn liveness_transitions_to_dead() {
        let m = fed_monitor();
        assert_eq!(m.status(TrainAppId(0), 1300.0), TrainStatus::Alive);
        // 2.5 × 300 s after the last heartbeat at 1200 s.
        assert_eq!(m.status(TrainAppId(0), 2000.0), TrainStatus::Dead);
        assert_eq!(m.status(TrainAppId(7), 0.0), TrainStatus::Undetermined);
    }

    #[test]
    fn any_alive_reflects_all_dead() {
        let m = fed_monitor();
        assert!(m.any_alive(1300.0));
        assert!(!m.any_alive(10_000.0));
    }

    #[test]
    fn dead_trains_are_excluded_from_predictions() {
        let mut m = HeartbeatMonitor::new();
        for j in 0..5 {
            m.observe(TrainAppId(0), j as f64 * 300.0); // dies after 1200
            m.observe(TrainAppId(1), j as f64 * 240.0 + 5000.0); // active later
        }
        let deps = m.departures_between(6000.0, 7000.0);
        assert!(deps.iter().all(|&(train, _)| train == TrainAppId(1)));
    }

    #[test]
    fn remove_unregisters() {
        let mut m = fed_monitor();
        assert!(m.remove(TrainAppId(0)));
        assert!(!m.remove(TrainAppId(0)));
        assert_eq!(m.trains(), vec![TrainAppId(1)]);
    }

    #[test]
    fn undetermined_with_single_observation() {
        let mut m = HeartbeatMonitor::new();
        m.observe(TrainAppId(0), 100.0);
        assert_eq!(m.status(TrainAppId(0), 200.0), TrainStatus::Undetermined);
        assert_eq!(m.next_departure(200.0), None);
    }
}
