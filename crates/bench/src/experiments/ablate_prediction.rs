//! Ablation: oracle bandwidth for the prediction-based comparators.
//!
//! PerES and eTime time their transmissions by a bandwidth estimate; the
//! paper argues accurate instantaneous prediction is impractical and makes
//! eTrain channel-oblivious by design (Sec. IV). This ablation replaces
//! the stochastic drive trace with a constant-bandwidth channel of the
//! same mean — on a constant channel the previous-slot estimate is *exact*,
//! so the gap between the two columns isolates how much each algorithm
//! loses to prediction error. eTrain's loss should be the smallest.

use crate::ExperimentResult;
use etrain_sim::{BandwidthSource, SchedulerKind, Table};
use etrain_trace::bandwidth::wuhan_drive_synthetic;

use super::{j, paper_base, pct, s};

/// Runs the prediction ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    // Constant channel with the drive trace's mean: prediction is perfect.
    let mean_bps = wuhan_drive_synthetic(9).mean_bps();

    let algorithms = [
        SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        },
        SchedulerKind::PerEs { omega: 0.2 },
        SchedulerKind::ETime { v_bytes: 30_000.0 },
    ];
    let mut table = Table::new(
        "Ablation — stochastic channel vs oracle (constant, same mean)",
        &[
            "algorithm",
            "stochastic_j",
            "oracle_j",
            "delta_j",
            "stochastic_delay_s",
            "oracle_delay_s",
            "loss_to_prediction",
        ],
    );
    for kind in algorithms {
        let stochastic = base.clone().scheduler(kind).run();
        let oracle = base
            .clone()
            .scheduler(kind)
            .bandwidth(BandwidthSource::Constant(mean_bps))
            .run();
        let delta = stochastic.extra_energy_j - oracle.extra_energy_j;
        table.push_row_strings(vec![
            kind.name().to_owned(),
            j(stochastic.extra_energy_j),
            j(oracle.extra_energy_j),
            j(delta),
            s(stochastic.normalized_delay_s),
            s(oracle.normalized_delay_s),
            pct(delta / oracle.extra_energy_j.max(f64::MIN_POSITIVE)),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "etrain_loss_to_prediction",
        0,
        0,
        "loss_to_prediction",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_three_algorithms() {
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        for name in ["eTrain", "PerES", "eTime"] {
            assert!(csv.contains(name), "{name} missing");
        }
    }
}
