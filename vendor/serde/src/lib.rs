//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based data model, this shim uses a concrete
//! [`Value`] tree: `Serialize` maps a type *into* a `Value`,
//! `Deserialize` maps a `Value` back *out*. `serde_json` (the companion
//! shim) renders `Value` to JSON text and parses it back. The observable
//! behaviour matches real serde for the constructs this workspace uses:
//! named-field structs, tuple/newtype structs, externally-tagged enums,
//! primitives, `String`, `Option`, `Vec`, and small tuples.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree — the interchange format between
/// `Serialize`/`Deserialize` impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (JSON objects preserve field order here).
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving whether it was written as an integer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            Value::Number(Number::F64(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct FromValueError {
    message: String,
}

impl FromValueError {
    pub fn new(message: impl Into<String>) -> Self {
        FromValueError {
            message: message.into(),
        }
    }

    pub fn expected(expected: &str, got: &Value) -> Self {
        FromValueError::new(format!("expected {expected}, found {}", got.kind()))
    }

    pub fn missing_field(name: &str) -> Self {
        FromValueError::new(format!("missing field `{name}`"))
    }

    pub fn unknown_variant(name: &str, ty: &str) -> Self {
        FromValueError::new(format!("unknown variant `{name}` for {ty}"))
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for FromValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FromValueError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, FromValueError>;

    /// The value to use when a struct field is missing entirely.
    /// `None` means "missing is an error"; `Option<T>` overrides this to
    /// `Some(None)` so absent optional fields deserialize leniently.
    fn absent() -> Option<Self> {
        None
    }
}

pub mod de {
    //! Deserialization helpers mirroring `serde::de`.

    /// Owned deserialization — with this shim's value-tree model every
    /// [`Deserialize`](crate::Deserialize) is already owned.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization helpers mirroring `serde::ser`.

    pub use crate::Serialize;
}

/// Looks up a named struct field in an object, falling back to
/// [`Deserialize::absent`] when the key is not present. Used by derived
/// impls.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &'static str,
) -> Result<T, FromValueError> {
    match entries.iter().find(|(key, _)| key == name) {
        Some((_, value)) => T::from_value(value),
        None => T::absent().ok_or_else(|| FromValueError::missing_field(name)),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_bool()
            .ok_or_else(|| FromValueError::expected("bool", value))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, FromValueError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| FromValueError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    FromValueError::new(format!(
                        "number {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, FromValueError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| FromValueError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    FromValueError::new(format!(
                        "number {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_f64()
            .ok_or_else(|| FromValueError::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| FromValueError::expected("f32", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| FromValueError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let s = value
            .as_str()
            .ok_or_else(|| FromValueError::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(FromValueError::expected("single-char string", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        let items = value
            .as_array()
            .ok_or_else(|| FromValueError::expected("array", value))?;
        if items.len() != N {
            return Err(FromValueError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| FromValueError::new("array length changed during conversion"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_array()
            .ok_or_else(|| FromValueError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys (matches BTreeMap/serde_json's
        // "preserve_order = false" canonical form closely enough).
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_object()
            .ok_or_else(|| FromValueError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, FromValueError> {
        value
            .as_object()
            .ok_or_else(|| FromValueError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, FromValueError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| FromValueError::expected("tuple array", value))?;
                let expected = [$( stringify!($idx) ),+].len();
                if items.len() != expected {
                    return Err(FromValueError::new(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($( $name::from_value(&items[$idx])?, )+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip_and_absent() {
        assert_eq!(Some(3u32).to_value(), Value::Number(Number::U64(3)));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::absent(), Some(None));
        assert_eq!(u32::absent(), None);
    }

    #[test]
    fn vec_of_tuples_round_trips() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let val = v.to_value();
        let back: Vec<(u64, String)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn int_range_checks() {
        let big = Value::Number(Number::U64(300));
        assert!(u8::from_value(&big).is_err());
        assert_eq!(u16::from_value(&big).unwrap(), 300);
        let neg = Value::Number(Number::I64(-1));
        assert!(u64::from_value(&neg).is_err());
        assert_eq!(i32::from_value(&neg).unwrap(), -1);
    }

    #[test]
    fn field_lookup_uses_absent() {
        let obj = vec![("present".to_string(), Value::Bool(true))];
        let hit: bool = __field(&obj, "present").unwrap();
        assert!(hit);
        let miss: Option<bool> = __field(&obj, "gone").unwrap();
        assert_eq!(miss, None);
        assert!(__field::<bool>(&obj, "gone").is_err());
    }
}
