//! # etrain-sched — delay-cost models and transmission schedulers
//!
//! This crate implements the paper's scheduling layer:
//!
//! - [`CostProfile`] — the three delay-cost profile functions of paper
//!   Fig. 6 (f1 for Mail, f2 for Weibo, f3 for Cloud) plus the machinery to
//!   evaluate the instantaneous cost `P_i(t)` of pending queues;
//! - [`ETrainScheduler`] — the paper's online transmission strategy
//!   (Algorithm 1): a Lyapunov drift-maximizing greedy selection gated by
//!   the cost bound Θ and opened up to `k` packets when a heartbeat departs;
//! - [`BaselineScheduler`] — transmit-on-arrival (the paper's "default
//!   baseline strategy");
//! - [`PerEsScheduler`] and [`ETimeScheduler`] — reimplementations of the
//!   two Lyapunov-based comparators (PerES and eTime, refs. 15/16), which time
//!   transmissions by *predicted bandwidth* instead of heartbeats;
//! - [`Scheduler`] — the common driving interface used by the simulator and
//!   the live eTrain system, including the [`Scheduler::on_tx_failure`]
//!   feedback hook through which failed transmissions are re-admitted;
//! - [`RetryPolicy`] — exponential backoff with jitter, bounded attempts and
//!   deadline-aware give-up, shared by the simulator's fault layer and the
//!   live core's retry state machine;
//! - [`GuardedScheduler`] — eTrain wrapped in the Healthy → Degraded →
//!   Fallback degradation ladder with bounded admission and load shedding
//!   ([`AdmissionConfig`]/[`ShedPolicy`]), so the system provably falls
//!   back to no-piggyback behaviour instead of misbehaving.
//!
//! # Example
//!
//! ```
//! use etrain_sched::{AppProfile, CostProfile, ETrainConfig, ETrainScheduler, Scheduler, SlotContext};
//! use etrain_trace::packets::Packet;
//! use etrain_trace::CargoAppId;
//!
//! # fn main() -> Result<(), etrain_sched::SchedulerError> {
//! let profiles = vec![AppProfile::new("Mail", CostProfile::mail(60.0))];
//! let mut sched = ETrainScheduler::new(ETrainConfig::default(), profiles);
//!
//! // A packet arrives; eTrain defers it (no immediate release).
//! let pkt = Packet { id: 0, app: CargoAppId(0), arrival_s: 5.0, size_bytes: 5_000 };
//! assert!(sched.on_arrival(pkt, 5.0)?.is_empty());
//!
//! // A heartbeat departs at t = 30: the packet piggybacks.
//! let ctx = SlotContext { now_s: 30.0, heartbeat_departing: true,
//!                         predicted_bandwidth_bps: 500_000.0, trains_alive: true };
//! let released = sched.on_slot(&ctx);
//! assert_eq!(released.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod api;
mod baseline;
mod cost;
mod etime;
mod etrain;
mod health;
mod offline;
mod peres;
mod queue;
mod retry;

pub use admission::{AdmissionConfig, ShedPolicy};
pub use api::{Scheduler, SchedulerError, SlotContext};
pub use baseline::BaselineScheduler;
pub use cost::CostProfile;
pub use etime::{ETimeConfig, ETimeScheduler};
pub use etrain::{
    reference_cost_from_env, try_reference_cost_from_env, ETrainConfig, ETrainScheduler,
    REFERENCE_COST_ENV,
};
pub use health::{
    audit_transitions, GuardedScheduler, HealthConfig, HealthState, HealthTransition,
    TransitionCause,
};
pub use offline::{OfflineProblem, OfflineRelease, OfflineSchedule};
pub use peres::{PerEsConfig, PerEsScheduler};
pub use queue::{AppProfile, WaitingQueues};
pub use retry::{RetryDecision, RetryPolicy};
