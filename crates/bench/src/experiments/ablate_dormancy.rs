//! Ablation: eTrain vs **fast dormancy**, the alternative tail-energy
//! technique of the paper's related work (Sec. VII).
//!
//! Fast dormancy demotes the radio to IDLE right after each transmission,
//! shortening or eliminating the tail — but every subsequent transmission
//! then pays an IDLE→DCH promotion (signaling latency, network load, and
//! the very overhead the tail exists to amortize). eTrain keeps the tail
//! mechanism intact and instead fills the tails with useful data.
//!
//! This ablation compares, on the same workload: the normal 3G baseline,
//! a fast-dormancy baseline (tails cut to 1 s), and eTrain on the normal
//! radio — reporting both energy and the promotion count.

use crate::ExperimentResult;
use etrain_radio::RadioParams;
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, s};

/// Runs the fast-dormancy ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    // Fast dormancy cuts the tail to 1 s but every transmission from IDLE
    // then pays a 2 s DCH promotion — the paper's Sec. VII argument made
    // concrete (promotion signaling + latency).
    let fast_dormancy = RadioParams::builder()
        .delta_dch_s(0.5)
        .delta_fach_s(0.5)
        .promotion_idle_to_dch_s(2.0)
        .build()
        .expect("valid short-tail radio");

    let rows = [
        (
            "Baseline / normal 3G",
            RadioParams::galaxy_s4_3g(),
            SchedulerKind::Baseline,
        ),
        (
            "Baseline / fast dormancy",
            fast_dormancy,
            SchedulerKind::Baseline,
        ),
        (
            "eTrain / normal 3G",
            RadioParams::galaxy_s4_3g(),
            SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            },
        ),
    ];

    let mut table = Table::new(
        "Ablation — eTrain vs fast dormancy (2 s promotion from IDLE)",
        &[
            "configuration",
            "energy_j",
            "promotions",
            "promo_time_s",
            "delay_s",
        ],
    );
    for (name, radio, kind) in rows {
        let promo_s = radio.promotion_idle_to_dch_s();
        let report = base.clone().radio(radio).scheduler(kind).run();
        table.push_row_strings(vec![
            name.to_owned(),
            j(report.extra_energy_j),
            report.promotions.to_string(),
            s(report.promotions as f64 * promo_s),
            s(report.normalized_delay_s),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "etrain_energy_j",
        0,
        -1,
        "energy_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_dormancy_saves_energy_but_multiplies_promotions() {
        let tables = run(true).tables;
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let normal_promotions: f64 = rows[0][2].parse().unwrap();
        let fd_promotions: f64 = rows[1][2].parse().unwrap();
        let fd_energy: f64 = rows[1][1].parse().unwrap();
        let normal_energy: f64 = rows[0][1].parse().unwrap();
        assert!(fd_energy < normal_energy, "fast dormancy cuts tail energy");
        assert!(
            fd_promotions > 1.5 * normal_promotions,
            "fast dormancy must multiply promotions: {fd_promotions} vs {normal_promotions}"
        );
        // eTrain keeps promotions low (batching) while saving energy.
        let etrain_promotions: f64 = rows[2][2].parse().unwrap();
        assert!(etrain_promotions <= normal_promotions);
    }
}
