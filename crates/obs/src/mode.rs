//! The `ETRAIN_OBS` knob: how much observability a run records.

use serde::{Deserialize, Serialize};

/// Environment variable that selects the observability mode for binaries
/// and tests that do not set one programmatically (mirrors
/// `ETRAIN_ORACLE`).
pub const OBS_ENV: &str = "ETRAIN_OBS";

/// How much the observability layer records during a run.
///
/// The default is [`ObsMode::Off`]: no events are allocated and the
/// simulation output is bit-for-bit identical to a run without the
/// observability layer compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ObsMode {
    /// Record nothing (zero-cost; the default).
    #[default]
    Off,
    /// Record events into a bounded in-memory ring per run; old events
    /// are evicted once the ring is full.
    Ring,
    /// Record every event, exportable as JSON Lines.
    Jsonl,
}

impl ObsMode {
    /// Strict [`OBS_ENV`] reader: `Ok(Off)` when unset or empty, the
    /// parsed mode otherwise, and `Err` (with the parse reason) for an
    /// unrecognized value. Binaries call this so a typo like
    /// `ETRAIN_OBS=jsnol` fails fast instead of silently recording
    /// nothing.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var(OBS_ENV) {
            Err(_) => Ok(ObsMode::Off),
            Ok(raw) if raw.trim().is_empty() => Ok(ObsMode::Off),
            Ok(raw) => raw.parse(),
        }
    }

    /// Reads the mode from the [`OBS_ENV`] environment variable.
    ///
    /// Unset, empty, or unparseable values fall back to [`ObsMode::Off`]
    /// so that stray environment state can never change results — but an
    /// unparseable value warns once on stderr rather than being swallowed
    /// silently (library contexts cannot fail fast; binaries use
    /// [`ObsMode::try_from_env`]).
    pub fn from_env() -> Self {
        ObsMode::try_from_env().unwrap_or_else(|reason| {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: ignoring {reason}; observability stays off");
            });
            ObsMode::Off
        })
    }

    /// Whether any recording happens at all.
    pub fn is_enabled(self) -> bool {
        self != ObsMode::Off
    }
}

impl std::str::FromStr for ObsMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "none" => Ok(ObsMode::Off),
            "ring" => Ok(ObsMode::Ring),
            "jsonl" | "on" | "1" | "true" => Ok(ObsMode::Jsonl),
            other => Err(format!(
                "unknown {OBS_ENV} mode {other:?} (expected off, ring, or jsonl)"
            )),
        }
    }
}

impl std::fmt::Display for ObsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsMode::Off => write!(f, "off"),
            ObsMode::Ring => write!(f, "ring"),
            ObsMode::Jsonl => write!(f, "jsonl"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spellings() {
        assert_eq!("off".parse::<ObsMode>().unwrap(), ObsMode::Off);
        assert_eq!("Ring".parse::<ObsMode>().unwrap(), ObsMode::Ring);
        assert_eq!(" JSONL ".parse::<ObsMode>().unwrap(), ObsMode::Jsonl);
        assert_eq!("on".parse::<ObsMode>().unwrap(), ObsMode::Jsonl);
        assert!("journal".parse::<ObsMode>().is_err());
    }

    #[test]
    fn default_is_off() {
        assert_eq!(ObsMode::default(), ObsMode::Off);
        assert!(!ObsMode::Off.is_enabled());
        assert!(ObsMode::Ring.is_enabled());
        assert!(ObsMode::Jsonl.is_enabled());
    }

    #[test]
    fn display_round_trips() {
        for mode in [ObsMode::Off, ObsMode::Ring, ObsMode::Jsonl] {
            assert_eq!(mode.to_string().parse::<ObsMode>().unwrap(), mode);
        }
    }
}
