//! # etrain-bench — per-figure/table reproduction harness
//!
//! One experiment module per table and figure of the paper's evaluation,
//! each printing the same rows/series the paper reports. Every experiment
//! is exposed both as a library function (so integration tests can
//! smoke-run it) and as a binary:
//!
//! ```text
//! cargo run -p etrain-bench --release --bin fig7a          # full fidelity
//! cargo run -p etrain-bench --release --bin fig7a -- --quick
//! cargo run -p etrain-bench --release --bin repro_all      # everything
//! ```
//!
//! `--quick` shrinks horizons/sweeps for CI-speed smoke runs; the shapes
//! remain, the absolute numbers lose precision.
//!
//! Every experiment returns an [`ExperimentResult`]: the printable tables
//! plus the headline metrics that `repro_all` collects — concurrently,
//! across a worker pool — into the machine-readable `BENCH_repro.json`.
//!
//! The mapping from experiment name to paper artifact lives in
//! `DESIGN.md`; measured-vs-paper numbers are recorded in
//! `EXPERIMENTS.md`.

pub mod experiments;

use std::time::Instant;

use etrain_sim::Table;
use serde::{Deserialize, Serialize};

/// One headline metric of an experiment — the single number (per axis of
/// interest) a reader checks first, extracted for machine-readable
/// reproduction logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// What the number is (`hb_share_3_trains`, `toy_saving`, ...).
    pub metric: String,
    /// The value, unit-normalized (percent columns are parsed to their
    /// numeric percentage, `12.3% → 12.3`).
    pub value: f64,
    /// The unit the value is in (`J`, `s`, `%`, `count`, ...).
    pub unit: String,
}

/// The structured outcome of one experiment run: the printable tables and
/// the headline metrics distilled from them.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// The tables, in print order.
    pub tables: Vec<Table>,
    /// Headline metrics, in declaration order.
    pub headlines: Vec<Headline>,
}

impl ExperimentResult {
    /// Wraps already-built tables with no headlines (yet).
    pub fn from_tables(tables: Vec<Table>) -> Self {
        ExperimentResult {
            tables,
            headlines: Vec::new(),
        }
    }

    /// Adds an explicit headline metric.
    pub fn headline(
        mut self,
        metric: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        self.headlines.push(Headline {
            metric: metric.into(),
            value,
            unit: unit.into(),
        });
        self
    }

    /// Extracts a headline from a cell of an already-built table: data row
    /// `row` (negative indexes from the end) of the column named `column`
    /// in table `table`. Trailing `%`/`s` unit suffixes are stripped
    /// before parsing.
    ///
    /// A missing table/row/column skips the headline (experiments may
    /// legitimately produce fewer rows in quick mode); a cell that is
    /// present but not numeric panics — that is a wiring bug.
    ///
    /// # Panics
    ///
    /// Panics if the addressed cell exists but does not parse as a number.
    pub fn headline_cell(
        self,
        metric: &str,
        table: usize,
        row: isize,
        column: &str,
        unit: &str,
    ) -> Self {
        let Some(cell) = self.tables.get(table).and_then(|t| t.cell(row, column)) else {
            return self;
        };
        let value: f64 = cell
            .trim()
            .trim_end_matches(['%', 's'])
            .parse()
            .unwrap_or_else(|_| panic!("headline `{metric}`: cell `{cell}` is not numeric"));
        self.headline(metric, value, unit)
    }
}

/// An experiment that reproduces one paper artifact.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Short name (`fig7a`, `table1`, ...) — also the binary name.
    pub name: &'static str,
    /// The paper artifact it reproduces.
    pub description: &'static str,
    /// Runs the experiment; `quick` trades fidelity for speed.
    pub run: fn(quick: bool) -> ExperimentResult,
}

/// All experiments in paper order, followed by the ablations.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig1a",
            description: "Fig. 1(a): 4-hour standby energy vs number of IM apps",
            run: experiments::fig1a::run,
        },
        Experiment {
            name: "fig1b",
            description: "Fig. 1(b): heartbeat size and timing of three IM apps",
            run: experiments::fig1b::run,
        },
        Experiment {
            name: "fig2",
            description: "Fig. 2: piggybacking toy example (five 5 KB e-mails)",
            run: experiments::fig2::run,
        },
        Experiment {
            name: "fig3",
            description: "Fig. 3: heartbeat cycles with data traffic; NetEase doubling",
            run: experiments::fig3::run,
        },
        Experiment {
            name: "table1",
            description: "Table 1: detected heartbeat cycles per app and device",
            run: experiments::table1::run,
        },
        Experiment {
            name: "fig4",
            description: "Fig. 4: instantaneous power across RRC states for one heartbeat",
            run: experiments::fig4::run,
        },
        Experiment {
            name: "fig6",
            description: "Fig. 6: delay-cost profile functions f1, f2, f3",
            run: experiments::fig6::run,
        },
        Experiment {
            name: "fig7a",
            description: "Fig. 7(a): impact of the cost bound Θ",
            run: experiments::fig7a::run,
        },
        Experiment {
            name: "fig7b",
            description: "Fig. 7(b): E-D panel for k = 2..16",
            run: experiments::fig7b::run,
        },
        Experiment {
            name: "fig8a",
            description: "Fig. 8(a): E-D panel, eTrain vs PerES vs eTime vs baseline",
            run: experiments::fig8a::run,
        },
        Experiment {
            name: "fig8b",
            description: "Fig. 8(b): energy vs arrival rate λ at matched delay",
            run: experiments::fig8b::run,
        },
        Experiment {
            name: "fig10a",
            description: "Fig. 10(a): controlled experiment, impact of train apps",
            run: experiments::fig10a::run,
        },
        Experiment {
            name: "fig10b",
            description: "Fig. 10(b): controlled experiment, impact of Θ",
            run: experiments::fig10b::run,
        },
        Experiment {
            name: "fig10c",
            description: "Fig. 10(c): controlled experiment, impact of the deadline",
            run: experiments::fig10c::run,
        },
        Experiment {
            name: "fig11",
            description: "Fig. 11: energy saving by user activeness",
            run: experiments::fig11::run,
        },
        Experiment {
            name: "ablate_k",
            description: "Ablation: finite k vs the paper's deployed k = infinity",
            run: experiments::ablate_k::run,
        },
        Experiment {
            name: "ablate_jitter",
            description: "Ablation: heartbeat jitter sensitivity",
            run: experiments::ablate_jitter::run,
        },
        Experiment {
            name: "ablate_prediction",
            description: "Ablation: oracle bandwidth for PerES/eTime",
            run: experiments::ablate_prediction::run,
        },
        Experiment {
            name: "ablate_radio",
            description: "Ablation: 3G long tails vs WiFi-like short tails",
            run: experiments::ablate_radio::run,
        },
        Experiment {
            name: "ablate_dormancy",
            description: "Ablation: eTrain vs fast dormancy (promotion cost)",
            run: experiments::ablate_dormancy::run,
        },
        Experiment {
            name: "ablate_faults",
            description:
                "Ablation: lossy channel and outages (retries, wasted joules, abandonment)",
            run: experiments::ablate_faults::run,
        },
        Experiment {
            name: "ablate_overload",
            description: "Ablation: overload control (arrival rate sweep across shed policies)",
            run: experiments::ablate_overload::run,
        },
        Experiment {
            name: "offline_gap",
            description: "Extension: online eTrain vs the Sec. III offline optimum",
            run: experiments::offline_gap::run,
        },
        Experiment {
            name: "capture_study",
            description: "Extension: Sec. II-B capture analysis (Wireshark methodology)",
            run: experiments::capture_study::run,
        },
        Experiment {
            name: "ext_day",
            description: "Extension: 24-hour diurnal battery projection (3G vs LTE DRX)",
            run: experiments::ext_day::run,
        },
        Experiment {
            name: "ext_grid",
            description: "Extension: energy-saving surface over the Theta x lambda grid",
            run: experiments::ext_grid::run,
        },
        Experiment {
            name: "ext_push_poll",
            description: "Extension: push-fetch over heartbeats vs polling",
            run: experiments::ext_push_poll::run,
        },
        Experiment {
            name: "explain",
            description: "Extension: journal-driven event-by-event energy ledger decomposition",
            run: experiments::explain::run,
        },
        Experiment {
            name: "robustness",
            description: "Robustness: chaos campaign, oracle self-test with shrinking, kill/resume",
            run: experiments::chaos::run,
        },
        Experiment {
            name: "svc_recovery",
            description:
                "Infrastructure: durable daemon crash recovery (WAL replay, corruption, SIGKILL)",
            run: experiments::svc_recovery::run,
        },
        Experiment {
            name: "engine_speedup",
            description: "Infrastructure: slot vs event kernel wall-clock on a sparse standby run",
            run: experiments::engine_speedup::run,
        },
        Experiment {
            name: "hotpath_speedup",
            description:
                "Infrastructure: cached hot decision/timeline paths vs the reference recompute",
            run: experiments::hotpath_speedup::run,
        },
        Experiment {
            name: "fleet_savings",
            description:
                "Fleet: paired baseline/eTrain population savings and the million-user projection",
            run: experiments::fleet_savings::run,
        },
        Experiment {
            name: "fleet_throughput",
            description:
                "Fleet: devices simulated per wall-clock second at 10\u{2075}-10\u{2076} scale",
            run: experiments::fleet_throughput::run,
        },
    ]
}

/// Looks up an experiment by name.
pub fn find(name: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.name == name)
}

/// Everything `repro_all` records about one finished experiment — the
/// machine-readable row of `BENCH_repro.json`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReproRecord {
    /// The experiment name.
    pub name: String,
    /// The paper artifact it reproduces.
    pub description: String,
    /// Whether the run was in quick (reduced-fidelity) mode.
    pub quick: bool,
    /// Wall-clock seconds the experiment took on its worker.
    pub wall_s: f64,
    /// Number of tables produced.
    pub tables: usize,
    /// The experiment's headline metrics.
    pub headlines: Vec<Headline>,
}

/// One finished experiment: the record for the JSON report plus the full
/// result for printing.
#[derive(Debug, Clone)]
pub struct ReproRun {
    /// The machine-readable summary.
    pub record: ReproRecord,
    /// The tables and headlines.
    pub result: ExperimentResult,
}

/// Validates every `ETRAIN_*` environment knob a bench binary honors
/// (`ETRAIN_ORACLE`, `ETRAIN_OBS`, `ETRAIN_ENGINE`, `ETRAIN_JOBS`,
/// `ETRAIN_REFERENCE_COST`, `ETRAIN_FLEET_SIZE`, `ETRAIN_WAL`,
/// `ETRAIN_SVC_ADDR`, `ETRAIN_WAL_FAULT`), exiting with status 2 and one message per
/// bad knob. Binaries call this first: a typo like `ETRAIN_ORACLE=stric`
/// must abort the run, not silently audit nothing (library contexts keep
/// the lenient warn-once fallback instead).
pub fn validate_env_knobs() {
    let mut problems = Vec::new();
    if let Err(reason) = etrain_sim::OracleMode::try_from_env() {
        problems.push(reason);
    }
    if let Err(reason) = etrain_obs::ObsMode::try_from_env() {
        problems.push(reason);
    }
    if let Err(reason) = etrain_sim::EngineKind::try_from_env() {
        problems.push(reason);
    }
    if let Err(reason) = etrain_sched::try_reference_cost_from_env() {
        problems.push(reason);
    }
    let jobs_raw = std::env::var(etrain_sim::JOBS_ENV).ok();
    if let Err(reason) = etrain_sim::try_jobs_from_env(jobs_raw.as_deref()) {
        problems.push(reason);
    }
    let fleet_raw = std::env::var(etrain_fleet::FLEET_SIZE_ENV).ok();
    if let Err(reason) = etrain_fleet::try_fleet_size_from_env(fleet_raw.as_deref()) {
        problems.push(reason);
    }
    if let Err(reason) = etrain_svc::try_wal_dir_from_env() {
        problems.push(reason);
    }
    if let Err(reason) = etrain_svc::try_addr_from_env() {
        problems.push(reason);
    }
    if let Err(reason) = etrain_svc::WalFault::try_from_env() {
        problems.push(reason);
    }
    if !problems.is_empty() {
        for problem in &problems {
            eprintln!("error: {problem}");
        }
        std::process::exit(2);
    }
}

/// The number of workers `repro_all` uses by default: the `ETRAIN_JOBS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism. Binaries run [`validate_env_knobs`]
/// first, so an unparseable value has already aborted before the lenient
/// fallback here could matter.
pub fn default_jobs() -> usize {
    let raw = std::env::var(etrain_sim::JOBS_ENV).ok();
    etrain_sim::try_jobs_from_env(raw.as_deref())
        .unwrap_or(None)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `experiments` across `jobs` workers and returns the finished runs
/// **in input order**, regardless of which worker finished first — the
/// same deterministic reassembly the simulator's `RunGrid` uses.
/// Experiment `run` functions are deterministic, so the output is
/// bit-for-bit identical to a serial loop.
///
/// # Panics
///
/// Panics if a worker thread panics (the experiment itself panicked).
pub fn run_experiments(experiments: &[Experiment], quick: bool, jobs: usize) -> Vec<ReproRun> {
    let jobs = jobs.clamp(1, experiments.len().max(1));
    let mut slots: Vec<Option<ReproRun>> = (0..experiments.len()).map(|_| None).collect();
    if jobs <= 1 {
        for (slot, experiment) in slots.iter_mut().zip(experiments) {
            *slot = Some(run_timed(experiment, quick));
        }
    } else {
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, &Experiment)>();
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, ReproRun)>();
        for pair in experiments.iter().enumerate() {
            job_tx.send(pair).expect("receiver alive");
        }
        drop(job_tx);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((index, experiment)) = job_rx.recv() {
                        let run = run_timed(experiment, quick);
                        if result_tx.send((index, run)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(result_tx);
        });
        for (index, run) in result_rx.try_iter() {
            slots[index] = Some(run);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every experiment ran"))
        .collect()
}

fn run_timed(experiment: &Experiment, quick: bool) -> ReproRun {
    let started = Instant::now();
    let result = (experiment.run)(quick);
    ReproRun {
        record: ReproRecord {
            name: experiment.name.to_owned(),
            description: experiment.description.to_owned(),
            quick,
            wall_s: started.elapsed().as_secs_f64(),
            tables: result.tables.len(),
            headlines: result.headlines.clone(),
        },
        result,
    }
}

/// The simulation-oracle tallies of one `repro_all` invocation, recorded
/// at the top of `BENCH_repro.json` so reproduction logs show how much
/// auditing backed the numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleSummary {
    /// The process-wide oracle mode the suite ran under (`off`, `record`
    /// or `strict`).
    pub mode: String,
    /// Invariant checks performed across all experiments.
    pub checks: u64,
    /// Violations found (must be 0 on a healthy build).
    pub violations: u64,
}

/// Snapshot of the process-wide oracle mode and tallies, for the report.
pub fn oracle_summary() -> OracleSummary {
    let counters = etrain_sim::oracle::counters();
    OracleSummary {
        mode: etrain_sim::OracleMode::from_env().to_string(),
        checks: counters.checks,
        violations: counters.violations,
    }
}

/// The observability tallies of one `repro_all` invocation, recorded next
/// to the oracle's so reproduction logs show whether (and how much) event
/// journaling backed the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// The process-wide observability mode (`off`, `ring` or `jsonl`).
    ///
    /// Note this is the *ambient* `ETRAIN_OBS` mode; the `explain`
    /// experiment forces journaling on for its own run regardless, so
    /// `events_recorded` is non-zero even when the mode is `off`.
    pub mode: String,
    /// Journal events recorded across all experiments.
    pub events_recorded: u64,
    /// Parallel-run journal merges performed.
    pub journals_merged: u64,
    /// Metrics snapshots frozen into reports.
    pub snapshots_taken: u64,
}

/// Snapshot of the process-wide observability mode and tallies.
pub fn obs_summary() -> ObsSummary {
    let counters = etrain_obs::counters();
    ObsSummary {
        mode: etrain_obs::ObsMode::from_env().to_string(),
        events_recorded: counters.events_recorded,
        journals_merged: counters.journals_merged,
        snapshots_taken: counters.snapshots_taken,
    }
}

/// The wall-clock of one experiment inside a [`TrajectoryPoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentWall {
    /// The experiment name.
    pub name: String,
    /// Wall-clock seconds the experiment took on its worker.
    pub wall_s: f64,
}

/// One point of the performance trajectory: the wall-clock profile of one
/// whole `repro_all` invocation. `BENCH_repro.json` accumulates these
/// across PRs, so the suite's throughput history is part of the committed
/// reproduction log (the `hotpath_speedup` experiment explains *why* a
/// point moved; the trajectory records *that* it moved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Free-form label for the invocation (`--trajectory-label`, default
    /// the suite mode).
    pub label: String,
    /// Whether the invocation ran in quick mode.
    pub quick: bool,
    /// Sum of per-experiment wall-clock seconds (serial time, independent
    /// of the worker count).
    pub total_wall_s: f64,
    /// Per-experiment wall-clock, in registry order.
    pub experiments: Vec<ExperimentWall>,
}

/// Distills the finished runs of one invocation into a trajectory point.
pub fn trajectory_point(runs: &[ReproRun], label: &str, quick: bool) -> TrajectoryPoint {
    let experiments: Vec<ExperimentWall> = runs
        .iter()
        .map(|r| ExperimentWall {
            name: r.record.name.clone(),
            wall_s: r.record.wall_s,
        })
        .collect();
    TrajectoryPoint {
        label: label.to_owned(),
        quick,
        total_wall_s: experiments.iter().map(|e| e.wall_s).sum(),
        experiments,
    }
}

/// Leniently extracts the `trajectory` array from a previous
/// `BENCH_repro.json`, so each invocation appends to the committed
/// history. Reports written before the trajectory existed, missing files
/// and malformed JSON all yield an empty history rather than an error —
/// losing the trajectory must never block a reproduction run.
pub fn load_prior_trajectory(json: &str) -> Vec<TrajectoryPoint> {
    #[derive(Deserialize)]
    struct Prior {
        trajectory: Option<Vec<TrajectoryPoint>>,
    }
    serde_json::from_str::<Prior>(json)
        .ok()
        .and_then(|p| p.trajectory)
        .unwrap_or_default()
}

/// Leniently extracts `(name, wall_s)` pairs from the `experiments`
/// array of a `BENCH_repro.json` body (the `perf_gate` binary compares
/// two of these). Malformed input yields an empty list.
pub fn load_experiment_walls(json: &str) -> Vec<ExperimentWall> {
    #[derive(Deserialize)]
    struct Prior {
        experiments: Option<Vec<ExperimentWall>>,
    }
    serde_json::from_str::<Prior>(json)
        .ok()
        .and_then(|p| p.experiments)
        .unwrap_or_default()
}

/// One wall-clock regression found by [`perf_regressions`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRegression {
    /// The experiment name, or `"(total)"` for the suite-wide sum.
    pub name: String,
    /// Baseline wall-clock seconds (floored; see [`perf_regressions`]).
    pub baseline_s: f64,
    /// Current wall-clock seconds.
    pub current_s: f64,
}

/// Compares per-experiment wall-clocks (matched by name) and the matched
/// totals, reporting every current time exceeding `factor ×` its
/// baseline. Baselines are floored at `floor_s` first, so sub-floor
/// experiments never trip the gate on scheduler noise. Experiments
/// present on only one side are skipped entirely — including from the
/// totals — so a legitimately grown registry never reads as a
/// regression.
pub fn perf_regressions(
    baseline: &[ExperimentWall],
    current: &[ExperimentWall],
    factor: f64,
    floor_s: f64,
) -> Vec<PerfRegression> {
    let mut regressions = Vec::new();
    let mut base_total = 0.0f64;
    let mut cur_total = 0.0f64;
    let mut matched = 0usize;
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        matched += 1;
        base_total += base.wall_s;
        cur_total += cur.wall_s;
        let floored = base.wall_s.max(floor_s);
        if cur.wall_s > factor * floored {
            regressions.push(PerfRegression {
                name: cur.name.clone(),
                baseline_s: floored,
                current_s: cur.wall_s,
            });
        }
    }
    let floored_total = base_total.max(floor_s);
    if matched > 0 && cur_total > factor * floored_total {
        regressions.push(PerfRegression {
            name: "(total)".to_owned(),
            baseline_s: floored_total,
            current_s: cur_total,
        });
    }
    regressions
}

/// The body of `BENCH_repro.json`: the oracle and observability tallies,
/// one record per experiment in registry order, and the accumulated
/// performance trajectory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReproReport {
    /// Simulation-oracle mode and tallies for the whole suite.
    pub oracle: OracleSummary,
    /// Observability mode and tallies for the whole suite.
    pub obs: ObsSummary,
    /// Per-experiment records.
    pub experiments: Vec<ReproRecord>,
    /// Wall-clock history across invocations, oldest first; the last
    /// point describes this report's own run.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// Serializes the records of finished runs — plus the current oracle
/// tallies and the accumulated `trajectory` (the caller appends this
/// run's own [`trajectory_point`] before passing it in) — as the
/// pretty-printed JSON body of `BENCH_repro.json`.
///
/// # Panics
///
/// Panics if serialization fails (the record types are plain data, so it
/// cannot).
pub fn repro_report_json(runs: &[ReproRun], trajectory: Vec<TrajectoryPoint>) -> String {
    let report = ReproReport {
        oracle: oracle_summary(),
        obs: obs_summary(),
        experiments: runs.iter().map(|r| r.record.clone()).collect(),
        trajectory,
    };
    serde_json::to_string_pretty(&report).expect("plain-data records serialize")
}

/// Binary entry point shared by all `src/bin/*.rs` wrappers: runs the
/// experiment and prints its tables and headlines. CLI flags: `--quick`
/// shrinks the run; `--csv DIR` additionally writes each table as
/// `DIR/<experiment>_<index>.csv` for plotting.
///
/// # Panics
///
/// Panics if `name` is not in the registry (binaries are generated from
/// it), or if `--csv` is given without a directory or the directory cannot
/// be written.
pub fn run_binary(name: &str) {
    validate_env_knobs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).expect("--csv needs a directory").clone());

    let experiment = find(name).unwrap_or_else(|| panic!("unknown experiment `{name}`"));
    println!("# {} — {}", experiment.name, experiment.description);
    if quick {
        println!("# (quick mode: reduced horizons/sweeps)");
    }
    let result = (experiment.run)(quick);
    for table in &result.tables {
        println!("{table}");
    }
    for headline in &result.headlines {
        println!(
            "# headline {} = {} {}",
            headline.metric, headline.value, headline.unit
        );
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("creating the --csv directory");
        for (index, table) in result.tables.iter().enumerate() {
            let path = format!("{dir}/{name}_{index}.csv");
            std::fs::write(&path, table.to_csv()).expect("writing the CSV file");
            println!("# wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_table() -> Table {
        let mut t = Table::new("toy", &["knob", "energy_j", "saving"]);
        t.push_row(&["0.5", "812.5", "10.0%"]);
        t.push_row(&["2.0", "640.0", "21.2%"]);
        t
    }

    #[test]
    fn headline_cell_parses_units_and_signed_rows() {
        let result = ExperimentResult::from_tables(vec![toy_table()])
            .headline_cell("last_energy", 0, -1, "energy_j", "J")
            .headline_cell("first_saving", 0, 0, "saving", "%");
        assert_eq!(
            result.headlines,
            vec![
                Headline {
                    metric: "last_energy".into(),
                    value: 640.0,
                    unit: "J".into()
                },
                Headline {
                    metric: "first_saving".into(),
                    value: 10.0,
                    unit: "%".into()
                },
            ]
        );
    }

    #[test]
    fn headline_cell_skips_missing_cells() {
        let result = ExperimentResult::from_tables(vec![toy_table()])
            .headline_cell("gone", 0, 5, "energy_j", "J")
            .headline_cell("no_table", 3, 0, "energy_j", "J")
            .headline_cell("no_column", 0, 0, "missing", "J");
        assert!(result.headlines.is_empty());
    }

    #[test]
    #[should_panic(expected = "not numeric")]
    fn headline_cell_rejects_non_numeric_cells() {
        let mut t = Table::new("t", &["name"]);
        t.push_row(&["Baseline"]);
        let _ = ExperimentResult::from_tables(vec![t]).headline_cell("x", 0, 0, "name", "");
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let registry = registry();
        let mut names: Vec<&str> = registry.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len(), "duplicate experiment names");
        assert!(find("fig7a").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn concurrent_runs_preserve_registry_order_and_match_serial() {
        // Three cheap, pure-model experiments exercise the pool without
        // simulating hours of radio time.
        let cheap: Vec<Experiment> = ["fig2", "fig4", "fig6"]
            .iter()
            .map(|name| find(name).expect("registered"))
            .collect();
        let serial = run_experiments(&cheap, true, 1);
        let parallel = run_experiments(&cheap, true, 3);
        let names: Vec<&str> = parallel.iter().map(|r| r.record.name.as_str()).collect();
        assert_eq!(names, vec!["fig2", "fig4", "fig6"]);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.result, b.result, "{} diverged", a.record.name);
            assert!(b.record.wall_s >= 0.0);
            assert!(b.record.quick);
            assert_eq!(b.record.tables, b.result.tables.len());
        }
    }

    #[test]
    fn json_report_carries_names_and_headlines() {
        let cheap = [find("fig6").expect("registered")];
        let runs = run_experiments(&cheap, true, 1);
        let point = trajectory_point(&runs, "test", true);
        let json = repro_report_json(&runs, vec![point]);
        assert!(json.contains("\"fig6\""));
        assert!(json.contains("wall_s"));
        assert!(json.contains("f3_at_3x_deadline"));
        // The report leads with the oracle and observability tallies.
        assert!(json.contains("\"oracle\""));
        assert!(json.contains("\"violations\""));
        assert!(json.contains("\"obs\""));
        assert!(json.contains("\"events_recorded\""));
        // ... and ends with the perf trajectory.
        assert!(json.contains("\"trajectory\""));
        assert!(json.contains("\"total_wall_s\""));
    }

    #[test]
    fn trajectory_round_trips_and_accumulates() {
        let cheap = [find("fig6").expect("registered")];
        let runs = run_experiments(&cheap, true, 1);
        let first = trajectory_point(&runs, "pr-7", true);
        assert_eq!(first.experiments.len(), 1);
        assert_eq!(first.experiments[0].name, "fig6");
        assert!((first.total_wall_s - first.experiments[0].wall_s).abs() < 1e-12);

        // A later invocation loads the prior report and appends itself.
        let json = repro_report_json(&runs, vec![first.clone()]);
        let mut history = load_prior_trajectory(&json);
        assert_eq!(history, vec![first.clone()]);
        history.push(trajectory_point(&runs, "pr-8", true));
        let json2 = repro_report_json(&runs, history);
        assert_eq!(load_prior_trajectory(&json2).len(), 2);
    }

    #[test]
    fn prior_trajectory_loading_is_lenient() {
        // Pre-trajectory reports, junk, and empty input all yield an
        // empty history instead of failing the run.
        assert!(load_prior_trajectory("{\"oracle\": {}, \"experiments\": []}").is_empty());
        assert!(load_prior_trajectory("not json at all").is_empty());
        assert!(load_prior_trajectory("").is_empty());
        assert!(load_prior_trajectory("{\"trajectory\": null}").is_empty());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    fn wall(name: &str, wall_s: f64) -> ExperimentWall {
        ExperimentWall {
            name: name.to_owned(),
            wall_s,
        }
    }

    #[test]
    fn perf_regressions_flag_only_real_slowdowns() {
        let baseline = [wall("a", 10.0), wall("b", 1.0), wall("tiny", 0.001)];
        // `a` held steady, `b` regressed 3x, `tiny` blew up 90x but stays
        // under the floor, `new` has no baseline and is skipped — and the
        // matched total (13.09 s vs 11.001 s) stays within the factor, so
        // only `b` is flagged.
        let current = [
            wall("a", 10.0),
            wall("b", 3.0),
            wall("tiny", 0.09),
            wall("new", 50.0),
        ];
        let found = perf_regressions(&baseline, &current, 2.0, 0.05);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name, "b");
        assert_eq!(found[0].baseline_s, 1.0);
        assert_eq!(found[0].current_s, 3.0);
    }

    #[test]
    fn perf_regressions_compare_suite_totals() {
        let baseline = [wall("a", 1.0), wall("b", 1.0)];
        // Each experiment stays within 2x, but the total regresses past it
        // (1.9 + 1.9 = 3.8 <= 4.0 is fine; 2.5 + 1.9 = 4.4 > 4.0 trips).
        let ok = perf_regressions(&baseline, &[wall("a", 1.9), wall("b", 1.9)], 2.0, 0.05);
        assert!(ok.is_empty());
        let bad = perf_regressions(&baseline, &[wall("a", 2.5), wall("b", 1.9)], 2.1, 0.05);
        assert_eq!(bad.len(), 2, "per-experiment a plus the total");
        assert_eq!(bad[1].name, "(total)");
    }

    #[test]
    fn perf_regressions_handle_empty_baseline() {
        assert!(perf_regressions(&[], &[wall("a", 99.0)], 2.0, 0.05).is_empty());
    }

    #[test]
    fn experiment_walls_load_leniently() {
        let json = r#"{"experiments": [{"name": "fig2", "wall_s": 0.25, "tables": 1}]}"#;
        assert_eq!(load_experiment_walls(json), vec![wall("fig2", 0.25)]);
        assert!(load_experiment_walls("junk").is_empty());
        assert!(load_experiment_walls("{}").is_empty());
    }
}
