//! Fig. 1(a): overall power consumption of a standby smartphone over four
//! hours with 0–3 IM apps running in 3G.
//!
//! Paper observation: with all three apps (QQ + WeChat + WhatsApp) the
//! phone spends nearly 87 % of its standby energy (≈ 2000 J) on heartbeat
//! transmissions.

use crate::ExperimentResult;
use etrain_sim::{BandwidthSource, RunGrid, RunSpec, Scenario, SchedulerKind, Table};
use etrain_trace::heartbeats::TrainAppSpec;
use etrain_trace::packets::CargoWorkload;

use super::{j, pct};

/// Runs the Fig. 1(a) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { 3600 } else { 4 * 3600 };
    let all_trains = TrainAppSpec::paper_trio();

    let mut table = Table::new(
        format!("Fig. 1(a) — standby energy over {} h, 3G", horizon / 3600),
        &[
            "im_apps",
            "heartbeats",
            "hb_energy_j",
            "standby_energy_j",
            "total_j",
            "hb_share",
        ],
    );
    // One grid job per train-app count, run concurrently.
    let grid = RunGrid::from_specs(
        (0..=all_trains.len())
            .map(|n| {
                RunSpec::new(
                    format!("trains={n}"),
                    Scenario::paper_default()
                        .duration_secs(horizon)
                        .trains(all_trains[..n].to_vec())
                        .workload(CargoWorkload::new(Vec::new())) // display off, no cargo
                        .bandwidth(BandwidthSource::Constant(450_000.0))
                        .scheduler(SchedulerKind::Baseline)
                        .seed(1),
                )
            })
            .collect(),
    );
    for (n, report) in grid.run().iter().enumerate() {
        let hb = report.extra_energy_j;
        let idle = report.idle_energy_j;
        table.push_row_strings(vec![
            n.to_string(),
            report.heartbeats_sent.to_string(),
            j(hb),
            j(idle),
            j(hb + idle),
            pct(hb / (hb + idle).max(f64::MIN_POSITIVE)),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "hb_share_3_trains",
        0,
        -1,
        "hb_share",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_apps_dominate_standby_budget() {
        let tables = run(true).tables;
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 4); // 0..=3 apps
        let csv = tables[0].to_csv();
        let last = csv.lines().last().unwrap();
        let share: f64 = last
            .rsplit(',')
            .next()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            share > 75.0,
            "heartbeats should dominate standby energy, got {share}%"
        );
    }
}
