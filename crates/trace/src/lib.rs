//! # etrain-trace — workload, bandwidth, heartbeat and user-trace substrates
//!
//! The eTrain paper evaluates against four kinds of input data, none of which
//! ship with the paper. This crate synthesizes statistically equivalent
//! replacements (the substitutions are documented in the repository's
//! `DESIGN.md`):
//!
//! - [`heartbeats`] — heartbeat processes of the measured IM "train apps"
//!   (QQ 300 s / 378 B, WeChat 270 s / 74 B, WhatsApp 240 s / 66 B, NetEase's
//!   doubling 60→480 s cycle, RenRen 300 s, iOS/APNS 1800 s — paper Table 1
//!   and Fig. 3);
//! - [`packets`] — Poisson cargo-app packet arrivals with truncated-normal
//!   sizes (paper Sec. VI-A "synthesized packet trace");
//! - [`bandwidth`] — a regime-switching synthetic 3G uplink bandwidth trace
//!   standing in for the paper's 2-hour Wuhan bus/campus drive trace;
//! - [`user`] — user behaviour records `(user id, behavior, time, size)`
//!   for active / moderate / inactive users (paper Sec. VI-D-4, Fig. 11).
//!
//! Supporting modules: [`rng`] (seeded distributions) and [`io`] (CSV/JSON
//! persistence so traces can be saved, inspected and replayed).
//!
//! # Example
//!
//! ```
//! use etrain_trace::heartbeats::TrainAppSpec;
//! use etrain_trace::packets::CargoWorkload;
//!
//! // The paper's three train apps over one hour:
//! let trains = TrainAppSpec::paper_trio();
//! let beats = etrain_trace::heartbeats::synthesize(&trains, 3600.0, 42);
//! assert!(beats.len() > 3600 / 300 * 3 - 3);
//!
//! // The paper's three cargo apps at total rate λ = 0.08 pkt/s:
//! let workload = CargoWorkload::paper_default(0.08);
//! let packets = workload.generate(3600.0, 42);
//! assert!(!packets.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod capture;
pub mod diurnal;
pub mod faults;
pub mod heartbeats;
pub mod io;
pub mod packets;
pub mod rng;
pub mod summary;
pub mod user;

mod ids;

pub use ids::{CargoAppId, TrainAppId};
