//! Runs every reproduction experiment concurrently across a worker pool
//! and prints all tables in paper (registry) order, then writes the
//! machine-readable `BENCH_repro.json` with per-experiment wall-clock and
//! headline metrics.
//!
//! Flags:
//! - `--quick` — reduced horizons/sweeps for a CI-speed smoke run;
//! - `--jobs N` — worker count (default: `ETRAIN_JOBS` env, then the
//!   machine's available parallelism);
//! - `--json PATH` — where to write the report (default
//!   `BENCH_repro.json`); `--no-json` skips it;
//! - `--trajectory-label LABEL` — labels this invocation's point in the
//!   report's `trajectory` array (default `quick`/`full`). The prior
//!   report at the `--json` path, if any, contributes its accumulated
//!   trajectory, so the committed report carries the suite's wall-clock
//!   history across PRs.
//!
//! Every simulated run is audited by the simulation oracle: unless the
//! `ETRAIN_ORACLE` environment variable is already set, the suite runs in
//! `record` mode and writes the check/violation tallies into the report.
//! `ETRAIN_ORACLE=strict` turns any violation into a hard failure.
//!
//! `ETRAIN_OBS=ring|jsonl` additionally turns on the observability layer
//! for every scenario the suite runs: profiling spans are collected, the
//! `explain` experiment's raw journal is exported as
//! `BENCH_explain.jsonl`, and the phase profile is written to
//! `BENCH_profile.txt` (both next to the JSON report). Observability never
//! changes the numbers — headlines are bit-for-bit identical either way.

use std::time::Instant;

fn main() {
    etrain_bench::validate_env_knobs();
    let args: Vec<String> = std::env::args().collect();
    if std::env::var(etrain_sim::ORACLE_ENV).is_err() {
        // Default the whole suite to record-mode auditing. Set before any
        // experiment runs; single-threaded at this point.
        std::env::set_var(etrain_sim::ORACLE_ENV, "record");
    }
    let obs_mode = etrain_obs::ObsMode::from_env();
    if obs_mode.is_enabled() {
        // Profiling piggybacks on the observability knob: wall-clock spans
        // accumulate in process-wide atomics and are only ever rendered as
        // the text summary below — they never feed results.
        etrain_obs::prof::set_enabled(true);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--jobs needs a positive integer")
        })
        .unwrap_or_else(etrain_bench::default_jobs);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .expect("--json needs a file path")
                .to_owned()
        })
        .unwrap_or_else(|| "BENCH_repro.json".to_owned());
    let trajectory_label = args
        .iter()
        .position(|a| a == "--trajectory-label")
        .map(|i| {
            args.get(i + 1)
                .expect("--trajectory-label needs a value")
                .to_owned()
        })
        .unwrap_or_else(|| if quick { "quick" } else { "full" }.to_owned());

    let registry = etrain_bench::registry();
    eprintln!(
        "# running {} experiments on {} worker(s){}",
        registry.len(),
        jobs,
        if quick { " (quick mode)" } else { "" }
    );
    let started = Instant::now();
    let runs = etrain_bench::run_experiments(&registry, quick, jobs);
    let total_s = started.elapsed().as_secs_f64();

    for run in &runs {
        println!("# {} — {}", run.record.name, run.record.description);
        for table in &run.result.tables {
            println!("{table}");
        }
        for headline in &run.record.headlines {
            println!(
                "# headline {} = {} {}",
                headline.metric, headline.value, headline.unit
            );
        }
        println!("# wall-clock: {:.2} s", run.record.wall_s);
        println!();
    }
    let serial_s: f64 = runs.iter().map(|r| r.record.wall_s).sum();
    eprintln!(
        "# suite wall-clock: {total_s:.2} s across {jobs} worker(s) \
         (sum of experiment times: {serial_s:.2} s)"
    );
    let oracle = etrain_bench::oracle_summary();
    eprintln!(
        "# oracle: mode {} — {} checks, {} violation(s)",
        oracle.mode, oracle.checks, oracle.violations
    );
    let obs = etrain_bench::obs_summary();
    eprintln!(
        "# obs: mode {} — {} event(s) recorded, {} journal merge(s), {} snapshot(s)",
        obs.mode, obs.events_recorded, obs.journals_merged, obs.snapshots_taken
    );

    if !no_json {
        // The prior report's trajectory (if any) is carried forward and
        // this invocation's point appended, so the committed report
        // accumulates the suite's wall-clock history.
        let mut trajectory = std::fs::read_to_string(&json_path)
            .map(|prior| etrain_bench::load_prior_trajectory(&prior))
            .unwrap_or_default();
        trajectory.push(etrain_bench::trajectory_point(
            &runs,
            &trajectory_label,
            quick,
        ));
        std::fs::write(
            &json_path,
            etrain_bench::repro_report_json(&runs, trajectory),
        )
        .expect("writing the JSON report");
        eprintln!("# wrote {json_path}");
    }
    if obs_mode.is_enabled() {
        eprintln!("{}", etrain_obs::prof::flame_summary());
        if !no_json {
            // Artifacts land next to the JSON report: the explain run's
            // raw journal and the suite's phase profile.
            let jsonl = etrain_bench::experiments::explain::run_with_journal(quick).jsonl;
            std::fs::write("BENCH_explain.jsonl", jsonl).expect("writing the explain journal");
            eprintln!("# wrote BENCH_explain.jsonl");
            std::fs::write("BENCH_profile.txt", etrain_obs::prof::flame_summary())
                .expect("writing the phase profile");
            eprintln!("# wrote BENCH_profile.txt");
        }
    }
    assert_eq!(
        oracle.violations, 0,
        "the simulation oracle found violated invariants"
    );
}
