//! Fig. 7(b): the E-D (energy–delay) panel for the piggyback bound
//! k ∈ {2, 4, 8, 16}.
//!
//! Paper result: larger k always dominates (same energy at lower delay, or
//! more saving at the same delay), with strongly diminishing returns past
//! k = 8 — which is why the deployed system uses k = ∞.

use crate::ExperimentResult;
use etrain_sim::sweep::{lin_space, theta_sweep};
use etrain_sim::Table;

use super::{j, paper_base, s};

/// Runs the Fig. 7(b) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let thetas = if quick {
        lin_space(0.5, 3.0, 3)
    } else {
        lin_space(0.0, 3.0, 7)
    };
    let ks = [2usize, 4, 8, 16];

    let mut table = Table::new(
        "Fig. 7(b) — E-D panel per k (points traced by Θ)",
        &["k", "theta", "energy_j", "delay_s"],
    );
    for &k in &ks {
        for (theta, report) in theta_sweep(&base, &thetas, Some(k)) {
            table.push_row_strings(vec![
                k.to_string(),
                format!("{theta:.1}"),
                j(report.extra_energy_j),
                s(report.normalized_delay_s),
            ]);
        }
    }
    // The deployed configuration for reference.
    for (theta, report) in theta_sweep(&base, &thetas, None) {
        table.push_row_strings(vec![
            "inf".to_owned(),
            format!("{theta:.1}"),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "energy_kinf_max_theta",
        0,
        -1,
        "energy_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Interpolates each k's E-D curve at a common delay and checks that
    /// larger k never costs more energy there.
    #[test]
    fn larger_k_dominates_at_matched_delay() {
        let tables = run(true).tables;
        let mut per_k: std::collections::BTreeMap<String, Vec<(f64, f64)>> = Default::default();
        for row in tables[0].to_csv().lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            per_k.entry(cells[0].to_owned()).or_default().push((
                cells[3].parse().unwrap(), // delay
                cells[2].parse().unwrap(), // energy
            ));
        }
        let energy_near = |points: &[(f64, f64)], delay: f64| -> f64 {
            points
                .iter()
                .min_by(|a, b| (a.0 - delay).abs().total_cmp(&(b.0 - delay).abs()))
                .map(|p| p.1)
                .unwrap()
        };
        let probe = 40.0;
        let e2 = energy_near(&per_k["2"], probe);
        let e16 = energy_near(&per_k["16"], probe);
        assert!(
            e16 <= e2 * 1.1,
            "k=16 ({e16} J) should not lose badly to k=2 ({e2} J) near {probe} s"
        );
    }
}
