//! Heartbeat processes of IM "train apps".
//!
//! Reproduces the measurement results of paper Sec. II-B (Table 1, Fig. 3):
//! Android IM apps send keep-alive heartbeats on stable per-app cycles
//! (QQ 300 s, WeChat 270 s, WhatsApp 240 s, RenRen 300 s), the NetEase news
//! app starts at 60 s and doubles its cycle after every 6 beats up to 480 s,
//! and all iOS apps share one 1800 s APNS connection.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ids::TrainAppId;
use crate::rng::seeded;

/// The cycle law of a train app's heartbeat daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CyclePattern {
    /// A constant heartbeat cycle (all measured IM apps — Table 1).
    Fixed {
        /// The cycle length in seconds.
        cycle_s: f64,
    },
    /// A cycle that doubles after every `beats_per_level` heartbeats until
    /// reaching `max_s` (the NetEase news app — Fig. 3(d)).
    Doubling {
        /// Initial cycle in seconds.
        initial_s: f64,
        /// Number of heartbeats sent at each cycle length before doubling.
        beats_per_level: u32,
        /// Cycle ceiling in seconds.
        max_s: f64,
    },
}

impl CyclePattern {
    /// The gap that follows the `beat_index`-th heartbeat (0-based), in
    /// seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use etrain_trace::heartbeats::CyclePattern;
    ///
    /// let netease = CyclePattern::Doubling { initial_s: 60.0, beats_per_level: 6, max_s: 480.0 };
    /// assert_eq!(netease.cycle_after(0), 60.0);
    /// assert_eq!(netease.cycle_after(6), 120.0);
    /// assert_eq!(netease.cycle_after(100), 480.0);
    /// ```
    pub fn cycle_after(&self, beat_index: usize) -> f64 {
        match *self {
            CyclePattern::Fixed { cycle_s } => cycle_s,
            CyclePattern::Doubling {
                initial_s,
                beats_per_level,
                max_s,
            } => {
                let level = beat_index / beats_per_level.max(1) as usize;
                // Guard the exponent: past level 60 the cycle has long hit max_s.
                let factor = 2f64.powi(level.min(60) as i32);
                (initial_s * factor).min(max_s)
            }
        }
    }

    /// Ideal (jitter-free) departure times over `[0, horizon_s)`, starting
    /// at `phase_s`.
    pub fn departure_times(&self, phase_s: f64, horizon_s: f64) -> Vec<f64> {
        let mut times = Vec::new();
        let mut t = phase_s;
        let mut idx = 0;
        while t < horizon_s {
            times.push(t);
            t += self.cycle_after(idx);
            idx += 1;
        }
        times
    }
}

/// One heartbeat transmission event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// The train app that sent the heartbeat.
    pub train: TrainAppId,
    /// Departure time in seconds.
    pub time_s: f64,
    /// Heartbeat packet size in bytes.
    pub size_bytes: u64,
}

/// Specification of a train app's heartbeat behaviour.
///
/// The presets reproduce the paper's measured apps; `jitter_s` adds a
/// uniform ±jitter to each departure (0 by default — the paper found the
/// cycles deterministic; ablations use non-zero jitter).
///
/// # Examples
///
/// ```
/// use etrain_trace::heartbeats::TrainAppSpec;
///
/// let qq = TrainAppSpec::qq();
/// assert_eq!(qq.name, "QQ");
/// assert_eq!(qq.heartbeat_size_bytes, 378);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainAppSpec {
    /// Human-readable app name.
    pub name: String,
    /// The heartbeat cycle law.
    pub pattern: CyclePattern,
    /// Size of one heartbeat packet in bytes.
    pub heartbeat_size_bytes: u64,
    /// Time of the first heartbeat in seconds.
    pub phase_s: f64,
    /// Uniform jitter half-width applied to each departure, in seconds.
    pub jitter_s: f64,
}

impl TrainAppSpec {
    /// Creates a fixed-cycle spec.
    pub fn fixed(name: impl Into<String>, cycle_s: f64, size_bytes: u64, phase_s: f64) -> Self {
        TrainAppSpec {
            name: name.into(),
            pattern: CyclePattern::Fixed { cycle_s },
            heartbeat_size_bytes: size_bytes,
            phase_s,
            jitter_s: 0.0,
        }
    }

    /// Mobile QQ: 300 s cycle, 378 B heartbeats (Table 1 / Sec. VI-A).
    pub fn qq() -> Self {
        TrainAppSpec::fixed("QQ", 300.0, 378, 0.0)
    }

    /// WeChat: 270 s cycle, 74 B heartbeats.
    pub fn wechat() -> Self {
        TrainAppSpec::fixed("WeChat", 270.0, 74, 10.0)
    }

    /// WhatsApp: 240 s cycle, 66 B heartbeats.
    pub fn whatsapp() -> Self {
        TrainAppSpec::fixed("WhatsApp", 240.0, 66, 20.0)
    }

    /// RenRen SNS: constant 300 s cycle (Fig. 3(d)).
    pub fn renren() -> Self {
        TrainAppSpec::fixed("RenRen", 300.0, 150, 30.0)
    }

    /// NetEase news: 60 s initial cycle doubling after every 6 beats up to
    /// 480 s (Fig. 3(d)).
    pub fn netease() -> Self {
        TrainAppSpec {
            name: "NetEase".to_owned(),
            pattern: CyclePattern::Doubling {
                initial_s: 60.0,
                beats_per_level: 6,
                max_s: 480.0,
            },
            heartbeat_size_bytes: 120,
            phase_s: 5.0,
            jitter_s: 0.0,
        }
    }

    /// The shared iOS APNS connection: one 1800 s heartbeat stream for all
    /// apps on the device (Table 1, iPhone rows).
    pub fn ios_apns() -> Self {
        TrainAppSpec::fixed("APNS", 1800.0, 200, 0.0)
    }

    /// The paper's simulation trio (Sec. VI-A): QQ + WeChat + WhatsApp.
    pub fn paper_trio() -> Vec<TrainAppSpec> {
        vec![
            TrainAppSpec::qq(),
            TrainAppSpec::wechat(),
            TrainAppSpec::whatsapp(),
        ]
    }

    /// Sets the jitter half-width, returning the modified spec (used by the
    /// jitter ablation).
    pub fn with_jitter(mut self, jitter_s: f64) -> Self {
        self.jitter_s = jitter_s;
        self
    }

    /// Sets the phase (first departure time), returning the modified spec.
    pub fn with_phase(mut self, phase_s: f64) -> Self {
        self.phase_s = phase_s;
        self
    }

    /// Generates this app's heartbeats over `[0, horizon_s)` as
    /// [`TrainAppId`] `id`.
    pub fn generate(&self, id: TrainAppId, horizon_s: f64, rng: &mut impl Rng) -> Vec<Heartbeat> {
        let mut out = Vec::new();
        self.generate_into(id, horizon_s, rng, &mut out);
        out
    }

    /// [`TrainAppSpec::generate`] into a caller-owned buffer: appends this
    /// app's heartbeats to `out` without allocating a fresh `Vec` per
    /// call. Consumes exactly the same RNG draws as the allocating form,
    /// so the two are bit-for-bit interchangeable — the fleet simulator
    /// leans on this to synthesize per-device traces into reusable
    /// per-worker scratch buffers.
    pub fn generate_into(
        &self,
        id: TrainAppId,
        horizon_s: f64,
        rng: &mut impl Rng,
        out: &mut Vec<Heartbeat>,
    ) {
        for t in self.pattern.departure_times(self.phase_s, horizon_s) {
            let jitter = if self.jitter_s > 0.0 {
                rng.gen_range(-self.jitter_s..=self.jitter_s)
            } else {
                0.0
            };
            let hb = Heartbeat {
                train: id,
                time_s: (t + jitter).max(0.0),
                size_bytes: self.heartbeat_size_bytes,
            };
            if hb.time_s < horizon_s {
                out.push(hb);
            }
        }
    }
}

/// Synthesizes the merged, time-sorted heartbeat stream of several train
/// apps — the "train departure times" the scheduler consumes.
///
/// # Examples
///
/// ```
/// use etrain_trace::heartbeats::{synthesize, TrainAppSpec};
///
/// let beats = synthesize(&TrainAppSpec::paper_trio(), 3600.0, 1);
/// // 12 + 14 + 15 heartbeats in one hour.
/// assert_eq!(beats.len(), 12 + 14 + 15);
/// assert!(beats.windows(2).all(|w| w[0].time_s <= w[1].time_s));
/// ```
pub fn synthesize(specs: &[TrainAppSpec], horizon_s: f64, seed: u64) -> Vec<Heartbeat> {
    let mut all = Vec::new();
    synthesize_into(specs, horizon_s, seed, &mut all);
    all
}

/// [`synthesize`] into a caller-owned buffer: clears `out` and fills it
/// with the merged, time-sorted heartbeat stream, bit-for-bit identical to
/// the allocating form (same seeding, same RNG draw order across specs,
/// same sort). Lets a population simulator synthesize one device's
/// heartbeats after another into the same scratch `Vec` — no per-device
/// trace materialization.
///
/// # Examples
///
/// ```
/// use etrain_trace::heartbeats::{synthesize, synthesize_into, TrainAppSpec};
///
/// let mut scratch = Vec::new();
/// synthesize_into(&TrainAppSpec::paper_trio(), 3600.0, 1, &mut scratch);
/// assert_eq!(scratch, synthesize(&TrainAppSpec::paper_trio(), 3600.0, 1));
/// ```
pub fn synthesize_into(
    specs: &[TrainAppSpec],
    horizon_s: f64,
    seed: u64,
    out: &mut Vec<Heartbeat>,
) {
    let mut rng = seeded(seed);
    out.clear();
    for (i, spec) in specs.iter().enumerate() {
        spec.generate_into(TrainAppId(i), horizon_s, &mut rng, out);
    }
    out.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cycle_departures_are_periodic() {
        let times = CyclePattern::Fixed { cycle_s: 300.0 }.departure_times(0.0, 1500.0);
        assert_eq!(times, vec![0.0, 300.0, 600.0, 900.0, 1200.0]);
    }

    #[test]
    fn doubling_matches_netease_measurement() {
        // 60 s × 6 beats, then 120 s × 6, ... capped at 480 s.
        let p = CyclePattern::Doubling {
            initial_s: 60.0,
            beats_per_level: 6,
            max_s: 480.0,
        };
        assert_eq!(p.cycle_after(5), 60.0);
        assert_eq!(p.cycle_after(6), 120.0);
        assert_eq!(p.cycle_after(12), 240.0);
        assert_eq!(p.cycle_after(18), 480.0);
        assert_eq!(p.cycle_after(24), 480.0); // capped
        assert_eq!(p.cycle_after(10_000), 480.0); // no overflow
    }

    #[test]
    fn doubling_departure_times_monotone_increasing_gaps() {
        let p = CyclePattern::Doubling {
            initial_s: 60.0,
            beats_per_level: 6,
            max_s: 480.0,
        };
        let times = p.departure_times(0.0, 7200.0);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(gaps.first().copied(), Some(60.0));
        assert_eq!(gaps.last().copied(), Some(480.0));
    }

    #[test]
    fn phase_offsets_first_departure() {
        let times = CyclePattern::Fixed { cycle_s: 100.0 }.departure_times(25.0, 300.0);
        assert_eq!(times, vec![25.0, 125.0, 225.0]);
    }

    #[test]
    fn paper_trio_sizes_and_cycles() {
        let trio = TrainAppSpec::paper_trio();
        let cycles: Vec<f64> = trio
            .iter()
            .map(|s| match s.pattern {
                CyclePattern::Fixed { cycle_s } => cycle_s,
                _ => panic!("trio is fixed-cycle"),
            })
            .collect();
        assert_eq!(cycles, vec![300.0, 270.0, 240.0]);
        let sizes: Vec<u64> = trio.iter().map(|s| s.heartbeat_size_bytes).collect();
        assert_eq!(sizes, vec![378, 74, 66]);
    }

    #[test]
    fn jitter_perturbs_but_preserves_count() {
        let spec = TrainAppSpec::qq().with_jitter(2.0);
        let mut rng = seeded(5);
        let beats = spec.generate(TrainAppId(0), 3600.0, &mut rng);
        assert_eq!(beats.len(), 12);
        let ideal = CyclePattern::Fixed { cycle_s: 300.0 }.departure_times(0.0, 3600.0);
        let mut any_moved = false;
        for (hb, t) in beats.iter().zip(ideal) {
            assert!((hb.time_s - t).abs() <= 2.0 + 1e-12);
            if (hb.time_s - t).abs() > 1e-9 {
                any_moved = true;
            }
        }
        assert!(any_moved);
    }

    #[test]
    fn synthesize_merges_and_sorts() {
        let beats = synthesize(&TrainAppSpec::paper_trio(), 1800.0, 1);
        assert!(beats.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        // All three apps contribute.
        for i in 0..3 {
            assert!(beats.iter().any(|h| h.train == TrainAppId(i)));
        }
    }

    #[test]
    fn synthesize_into_matches_allocating_form_bitwise() {
        // Jitter makes the RNG draw order observable: the buffer form must
        // consume draws in exactly the same sequence as the allocating one.
        let specs: Vec<TrainAppSpec> = TrainAppSpec::paper_trio()
            .into_iter()
            .map(|s| s.with_jitter(3.0))
            .collect();
        let mut scratch = vec![Heartbeat {
            train: TrainAppId(9),
            time_s: -1.0,
            size_bytes: 0,
        }]; // stale content must be cleared, not merged
        for seed in [0u64, 7, 991] {
            synthesize_into(&specs, 2700.0, seed, &mut scratch);
            let fresh = synthesize(&specs, 2700.0, seed);
            assert_eq!(scratch.len(), fresh.len());
            for (a, b) in scratch.iter().zip(&fresh) {
                assert_eq!(a.train, b.train);
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(a.size_bytes, b.size_bytes);
            }
        }
    }

    #[test]
    fn empty_specs_produce_no_heartbeats() {
        assert!(synthesize(&[], 3600.0, 1).is_empty());
    }

    #[test]
    fn zero_horizon_produces_no_heartbeats() {
        assert!(synthesize(&TrainAppSpec::paper_trio(), 0.0, 1).is_empty());
    }
}
