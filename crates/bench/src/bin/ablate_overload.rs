//! Runs the overload-control ablation (shed policies under arrival-rate sweep).

fn main() {
    etrain_bench::run_binary("ablate_overload");
}
