//! Integration tests of the threaded eTrain runtime: registration →
//! request → heartbeat → broadcast decision → (simulated) transmission.

use std::time::Duration;

use etrain::apps::{replay, CargoAppModel};
use etrain::core::{
    CoreConfig, ETrainSystem, RetryPolicy, RetryVerdict, SystemConfig, TransmitRequest, TxResult,
};
use etrain::sched::{AppProfile, CostProfile};
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::user::{generate_app_use, Activeness};

fn fast_system(theta: f64) -> ETrainSystem {
    ETrainSystem::start(SystemConfig {
        core: CoreConfig {
            theta,
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
            ..CoreConfig::default()
        },
        time_scale: 2000.0,
    })
}

#[test]
fn multiple_cargo_apps_ride_one_train() {
    let system = fast_system(1e6);
    let train = system.train_handle("QQ");
    let mail = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
    let weibo = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
    let cloud = system.cargo_client(AppProfile::new("Cloud", CostProfile::cloud(600.0)));

    mail.submit(TransmitRequest::upload(5_000)).unwrap();
    weibo.submit(TransmitRequest::upload(2_000)).unwrap();
    cloud.submit(TransmitRequest::download(100_000)).unwrap();
    train.heartbeat().unwrap();

    for client in [&mail, &weibo, &cloud] {
        let decision = client
            .next_decision(Duration::from_secs(3))
            .expect("all three apps ride the same heartbeat");
        assert_eq!(decision.piggybacked_on, Some(train.id()));
        assert_eq!(decision.app, client.id());
    }
    system.shutdown();
}

#[test]
fn decisions_keep_flowing_across_heartbeats() {
    let system = fast_system(1e6);
    let train = system.train_handle("WeChat");
    let client = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));

    for round in 0..3 {
        client
            .submit(TransmitRequest::upload(1_000 + round))
            .unwrap();
        train.heartbeat().unwrap();
        let decision = client
            .next_decision(Duration::from_secs(3))
            .unwrap_or_else(|| panic!("round {round} decision missing"));
        assert_eq!(decision.size_bytes, 1_000 + round);
    }
    system.shutdown();
}

/// The full failure loop on the threaded runtime: submit → decision →
/// report a failed transfer → backed-off re-decision on a later heartbeat
/// → delivery; then a deadline-bounded request that is abandoned on its
/// first failure.
#[test]
fn failed_transfers_back_off_then_deliver_or_abandon() {
    let system = ETrainSystem::start(SystemConfig {
        core: CoreConfig {
            theta: 1e6, // only heartbeats release
            retry: RetryPolicy {
                base_backoff_s: 5.0,
                jitter_frac: 0.0,
                max_attempts: 4,
                give_up_age_s: 1e9,
                ..RetryPolicy::default()
            },
            ..CoreConfig::default()
        },
        time_scale: 2000.0,
    });
    let train = system.train_handle("QQ");
    let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));

    // Round 1: decision arrives, the transfer fails mid-flight.
    let id = client
        .submit(TransmitRequest::upload(3_000))
        .unwrap()
        .id()
        .unwrap();
    train.heartbeat().unwrap();
    let first = client
        .next_decision(Duration::from_secs(3))
        .expect("first decision rides the heartbeat");
    assert_eq!(first.request, id);
    let verdict = client.report_result(id, TxResult::Failed).unwrap();
    let resume_at_s = match verdict {
        RetryVerdict::RetryScheduled { resume_at_s } => resume_at_s,
        other => panic!("first failure should schedule a retry, got {other:?}"),
    };
    assert!(
        resume_at_s >= system.now_s() - 1.0,
        "backoff must point into the future"
    );

    // A second report for the same request is rejected: it is no longer
    // awaiting a result.
    assert!(client.report_result(id, TxResult::Failed).is_err());

    // Round 2: after the backoff elapses the request re-enters the
    // scheduler and rides the next heartbeat — same request id.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let second = loop {
        train.heartbeat().unwrap();
        if let Some(d) = client.next_decision(Duration::from_millis(100)) {
            break d;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "retried request never re-decided"
        );
    };
    assert_eq!(second.request, id, "retry must keep the request id");
    assert!(second.decided_at_s >= resume_at_s - 1.0);
    assert_eq!(
        client.report_result(id, TxResult::Delivered).unwrap(),
        RetryVerdict::Delivered
    );

    // A deadline-bounded request: the give-up check sees the deadline
    // cannot be met after the first failure and abandons immediately.
    let doomed = client
        .submit(TransmitRequest::upload(500).with_deadline(1.0))
        .unwrap()
        .id()
        .unwrap();
    train.heartbeat().unwrap();
    let decision = client
        .next_decision(Duration::from_secs(3))
        .expect("doomed request still gets its first decision");
    assert_eq!(decision.request, doomed);
    assert_eq!(
        client.report_result(doomed, TxResult::Failed).unwrap(),
        RetryVerdict::Abandoned
    );

    let stats = system.stats();
    assert_eq!(stats.delivered, 1);
    assert!(stats.retries >= 1);
    assert_eq!(stats.abandoned, 1);
    system.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_clean() {
    let system = fast_system(0.2);
    let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
    client.submit(TransmitRequest::upload(10)).unwrap();
    system.shutdown();
    // Dropping a second system (already shut down) must not hang: Drop
    // re-runs stop_and_join harmlessly — covered by shutdown() consuming
    // self; nothing further to call here.
}

/// Kill-mid-submit crash consistency on the durable service: a run is
/// killed cold right after a submit is acknowledged (drop without
/// checkpoint or drain — the WAL's crash model), restarted, and the
/// journal replay must bring back every admitted request exactly once:
/// nothing lost, nothing double-applied.
#[test]
fn durable_service_survives_kill_mid_submit_without_loss_or_double_apply() {
    use etrain::core::CommandOutcome;
    use etrain::core::CoreCommand;
    use etrain::svc::{DurableService, SvcCommand, SvcHealthConfig, SvcOutcome, WalConfig};
    use etrain::trace::{CargoAppId, TrainAppId};

    let dir = std::env::temp_dir().join(format!("etrain-live-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = WalConfig::new(&dir);
    cfg.fsync = false;

    let core_cfg = CoreConfig {
        theta: 1e6, // only heartbeats release
        ..CoreConfig::default()
    };
    let (mut service, _) =
        DurableService::open(cfg.clone(), core_cfg, SvcHealthConfig::default()).unwrap();
    service
        .apply(SvcCommand::Core(CoreCommand::RegisterTrain {
            name: "QQ".into(),
        }))
        .unwrap();
    service
        .apply(SvcCommand::Core(CoreCommand::RegisterCargo {
            profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
        }))
        .unwrap();
    let admitted = service
        .submit_idem(
            "req-1".to_string(),
            CargoAppId(0),
            TransmitRequest::upload(4_096),
            1.0,
        )
        .unwrap();
    let id = match admitted {
        SvcOutcome::Submitted { summary } => summary.id().expect("admitted"),
        other => panic!("expected a fresh submission, got {other:?}"),
    };
    // The kill: the submit is journaled and acked, nothing else is —
    // no checkpoint, no drain.
    drop(service);

    let (mut service, recovery) =
        DurableService::open(cfg, core_cfg, SvcHealthConfig::default()).unwrap();
    assert_eq!(recovery.replayed, 3);
    assert_eq!(recovery.replay_errors, 0);

    // Not lost: the pending request rides the next heartbeat.
    let outcome = service
        .apply(SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(0),
            now_s: 2.0,
        }))
        .unwrap();
    let decisions = match outcome {
        SvcOutcome::Core(CommandOutcome::Decisions { decisions }) => decisions,
        other => panic!("expected decisions, got {other:?}"),
    };
    assert_eq!(decisions.len(), 1, "the admitted request must survive");
    assert_eq!(decisions[0].request, id);

    // Not double-applied: the client's retry of the acked submit is a
    // duplicate answered from the recovered dedup table, and exactly
    // one admission is on the books.
    let retry = service
        .submit_idem(
            "req-1".to_string(),
            CargoAppId(0),
            TransmitRequest::upload(4_096),
            3.0,
        )
        .unwrap();
    assert!(
        matches!(retry, SvcOutcome::Duplicate { summary } if summary.id() == Some(id)),
        "retry must dedup to the original admission"
    );
    assert_eq!(service.state().stats().submitted, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_pipeline_through_live_core_matches_counts() {
    // The apps-crate replay drives the same deterministic core the
    // threaded system wraps; verify the full pipeline on a real trace.
    let trace = generate_app_use(3, Activeness::Active, 21).normalized_to(600.0);
    let outcome = replay::replay_through_core(
        &trace,
        &CargoAppModel::weibo().with_deadline(30.0),
        &TrainAppSpec::paper_trio(),
        CoreConfig {
            theta: 20.0,
            k: Some(20),
            slot_s: 1.0,
            startup_grace_s: 600.0,
            ..CoreConfig::default()
        },
    );
    assert_eq!(outcome.undelivered, 0);
    assert_eq!(outcome.decisions.len(), trace.upload_count());
    // Decisions must respect causality.
    for d in &outcome.decisions {
        assert!(d.delay_s() >= 0.0);
    }
    // Deep batching: a large share rides heartbeats at Θ = 20.
    assert!(outcome.piggyback_ratio > 0.3, "{}", outcome.piggyback_ratio);
}
