use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a train app (an app that sends periodic heartbeats).
///
/// Train apps are indexed densely from 0 in the order they were registered
/// or specified, so the id doubles as a vector index.
///
/// # Examples
///
/// ```
/// use etrain_trace::TrainAppId;
///
/// let id = TrainAppId(0);
/// assert_eq!(id.to_string(), "train#0");
/// assert_eq!(id.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrainAppId(pub usize);

impl TrainAppId {
    /// The dense vector index of this train app.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TrainAppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "train#{}", self.0)
    }
}

impl From<usize> for TrainAppId {
    fn from(value: usize) -> Self {
        TrainAppId(value)
    }
}

/// Identifier of a cargo app (an app that generates delay-tolerant packets).
///
/// Cargo apps are indexed densely from 0, matching the subscript `i` of the
/// paper's waiting queues `Q_i`.
///
/// # Examples
///
/// ```
/// use etrain_trace::CargoAppId;
///
/// let id = CargoAppId(2);
/// assert_eq!(id.to_string(), "cargo#2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CargoAppId(pub usize);

impl CargoAppId {
    /// The dense vector index of this cargo app.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CargoAppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cargo#{}", self.0)
    }
}

impl From<usize> for CargoAppId {
    fn from(value: usize) -> Self {
        CargoAppId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CargoAppId(1));
        set.insert(CargoAppId(1));
        assert_eq!(set.len(), 1);
        assert!(TrainAppId(0) < TrainAppId(3));
    }

    #[test]
    fn from_usize() {
        assert_eq!(TrainAppId::from(5).index(), 5);
        assert_eq!(CargoAppId::from(7).index(), 7);
    }
}
