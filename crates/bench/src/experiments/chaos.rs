//! Robustness: the deterministic chaos campaign in experiment form.
//!
//! Three tiers, all seeded and reproducible:
//!
//! 1. **Campaign** — randomized scenario plans × fault plans × scheduler
//!    kinds swept through the grid runner under the strict oracle; every
//!    violation, panic, and health-ladder anomaly is a finding (the
//!    expected count is zero).
//! 2. **Oracle self-test** — deliberate post-run corruptions that the
//!    oracle must catch, each delta-debugged down to a minimal repro (the
//!    acceptance bar is ≤ 10 events).
//! 3. **Kill/resume** — runs killed at seed-derived points and resumed
//!    from the last durable engine snapshot must match the uninterrupted
//!    run bit-for-bit, report and merged journal alike.
//!
//! The standalone `chaos` binary runs the same machinery at nightly
//! scale with date-derived seeds and writes repro artifacts; this
//! experiment keeps a smoke-sized slice of it in the default suite.

use crate::ExperimentResult;
use etrain_chaos::{campaign_cases, run_campaign, run_kill_resume, shrink, ChaosCase, Corruption};
use etrain_sim::{CasePlan, EngineKind, SchedulerKind, Table};

/// Runs the chaos experiment.
pub fn run(quick: bool) -> ExperimentResult {
    // Tier 1: the campaign. Jobs = 1 because the repro suite already
    // parallelizes across experiments.
    let case_count = if quick { 16 } else { 80 };
    let cases = campaign_cases(0, case_count, quick);
    let campaign = run_campaign(&cases, 1);
    let mut campaign_table = Table::new(
        "Chaos campaign — seeded scenarios × faults × schedulers, strict oracle",
        &["cases", "findings"],
    );
    campaign_table.push_row_strings(vec![
        campaign.cases_run.to_string(),
        campaign.findings.len().to_string(),
    ]);

    // Tier 2: oracle self-test with shrinking.
    let mut plan = CasePlan::from_seed(6, false);
    plan.horizon_s = plan.horizon_s.min(if quick { 600 } else { 900 });
    let mut selftest_table = Table::new(
        "Oracle self-test — injected corruptions, shrunk to minimal repros",
        &["corruption", "caught", "repro_events", "signature"],
    );
    let mut max_repro_events = 0usize;
    let mut caught = 0usize;
    for corruption in Corruption::all() {
        let case = ChaosCase {
            plan: plan.clone(),
            kind: SchedulerKind::Baseline,
            engine: EngineKind::Slot,
            corruption: Some(corruption),
        };
        match shrink(&case) {
            Some(repro) => {
                caught += 1;
                max_repro_events = max_repro_events.max(repro.events);
                selftest_table.push_row_strings(vec![
                    format!("{corruption:?}"),
                    "yes".to_owned(),
                    repro.events.to_string(),
                    repro.signature,
                ]);
            }
            None => selftest_table.push_row_strings(vec![
                format!("{corruption:?}"),
                "NO".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ]),
        }
    }

    // Tier 3: kill/resume crash consistency.
    let seeds: Vec<u64> = (0..if quick { 4 } else { 12 }).collect();
    let killres = run_kill_resume(&seeds, 3);
    let mut killres_table = Table::new(
        "Kill/resume — mid-run snapshot, kill, resume; bit-for-bit comparison",
        &["trials", "identical", "divergent"],
    );
    killres_table.push_row_strings(vec![
        killres.trials.len().to_string(),
        killres.identical_count().to_string(),
        (killres.trials.len() - killres.identical_count()).to_string(),
    ]);

    ExperimentResult::from_tables(vec![campaign_table, selftest_table, killres_table])
        .headline(
            "chaos_campaign_findings",
            campaign.findings.len() as f64,
            "count",
        )
        .headline(
            "chaos_selftest_caught",
            caught as f64,
            format!("of {}", Corruption::all().len()),
        )
        .headline(
            "chaos_selftest_max_repro_events",
            max_repro_events as f64,
            "events",
        )
        .headline(
            "chaos_killres_divergent",
            (killres.trials.len() - killres.identical_count()) as f64,
            "trials",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_experiment_is_clean_in_quick_mode() {
        let result = run(true);
        let headline = |metric: &str| {
            result
                .headlines
                .iter()
                .find(|h| h.metric == metric)
                .unwrap_or_else(|| panic!("missing headline {metric}"))
                .value
        };
        assert_eq!(headline("chaos_campaign_findings"), 0.0);
        assert_eq!(
            headline("chaos_selftest_caught"),
            Corruption::all().len() as f64
        );
        assert!(headline("chaos_selftest_max_repro_events") <= 10.0);
        assert_eq!(headline("chaos_killres_divergent"), 0.0);
    }
}
