//! Criterion micro-benchmarks for the hot paths of the reproduction:
//! the tail-energy model, Algorithm 1's greedy selection, the cached vs
//! reference decision/timeline paths of the hot-path campaign, the cycle
//! detector, and a full end-to-end simulation slice.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use etrain_hb::CycleDetector;
use etrain_radio::{
    analytic_extra_energy_j, tail_energy_j, RadioParams, Timeline, TimelinePool, Transmission,
};
use etrain_sched::{AppProfile, ETrainConfig, ETrainScheduler, Scheduler, SlotContext};
use etrain_sim::{Scenario, SchedulerKind};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;

fn bench_tail_energy(c: &mut Criterion) {
    let params = RadioParams::galaxy_s4_3g();
    c.bench_function("radio/tail_energy_closed_form", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += tail_energy_j(&params, std::hint::black_box(i as f64 * 0.3));
            }
            acc
        })
    });

    let txs: Vec<Transmission> = (0..200)
        .map(|i| Transmission::new(i as f64 * 7.0, 0.5))
        .collect();
    c.bench_function("radio/analytic_schedule_200tx", |b| {
        b.iter(|| analytic_extra_energy_j(&params, std::hint::black_box(&txs), 2_000.0))
    });
}

fn loaded_scheduler(pending: usize) -> ETrainScheduler {
    let mut sched = ETrainScheduler::new(
        ETrainConfig {
            theta: 0.0,
            k: Some(pending), // bounded k forces the greedy path
            slot_s: 1.0,
        },
        AppProfile::paper_trio(60.0),
    );
    for i in 0..pending {
        let packet = Packet {
            id: i as u64,
            app: CargoAppId(i % 3),
            arrival_s: i as f64 * 0.1,
            size_bytes: 2_000,
        };
        sched
            .on_arrival(packet, packet.arrival_s)
            .expect("registered app");
    }
    sched
}

fn bench_greedy_selection(c: &mut Criterion) {
    let ctx = SlotContext {
        now_s: 100.0,
        heartbeat_departing: true,
        predicted_bandwidth_bps: 450_000.0,
        trains_alive: true,
    };
    for pending in [16usize, 64, 256] {
        c.bench_function(&format!("sched/algorithm1_greedy_{pending}pending"), |b| {
            b.iter_batched(
                || loaded_scheduler(pending),
                |mut sched| sched.on_slot(&ctx),
                BatchSize::SmallInput,
            )
        });
    }
}

/// The hot-path campaign's criterion coverage: steady-state slot
/// decisions on the cached path vs the retained from-scratch reference
/// (`set_reference_decisions`), and pooled/batched timeline
/// rebuild-and-sample cycles vs fresh construction with per-sample
/// binary-search lookups. The equivalence of the compared paths is
/// asserted elsewhere (`hotpath_speedup` experiment, equivalence suite);
/// here only the wall-clock trend is tracked.
fn bench_hot_paths(c: &mut Criterion) {
    let breach_ctx = SlotContext {
        now_s: 700.0,
        heartbeat_departing: false,
        predicted_bandwidth_bps: 450_000.0,
        trains_alive: true,
    };
    for reference in [false, true] {
        let label = if reference { "reference" } else { "cached" };
        c.bench_function(&format!("sched/steady_slot_256pending_{label}"), |b| {
            b.iter_batched(
                || {
                    let mut sched = loaded_scheduler(256);
                    sched.set_reference_decisions(reference);
                    // Size the scratch before timing: steady state, not
                    // first-call growth.
                    let released = sched.on_slot(&breach_ctx);
                    for p in released {
                        sched.on_tx_failure(p, 699.0).expect("re-admission");
                    }
                    sched
                },
                |mut sched| sched.on_slot(&breach_ctx),
                BatchSize::SmallInput,
            )
        });
    }

    let params = RadioParams::galaxy_s4_3g();
    let txs: Vec<Transmission> = (0..500)
        .map(|i| Transmission::new(i as f64 * 40.0, 0.5))
        .collect();
    let horizon_s = 500.0 * 40.0 + 60.0;
    let dt_s = 0.5;
    c.bench_function("radio/timeline_cycle_500tx_reference", |b| {
        b.iter(|| {
            let timeline =
                Timeline::from_transmissions(&params, std::hint::black_box(&txs), horizon_s);
            let n = (horizon_s / dt_s).ceil() as usize;
            let mut samples = Vec::with_capacity(n);
            for i in 0..n {
                let t = i as f64 * dt_s;
                samples.push(timeline.state_at(t).power_mw(timeline.params()));
            }
            samples.len()
        })
    });
    c.bench_function("radio/timeline_cycle_500tx_pooled", |b| {
        let mut pool = TimelinePool::new();
        let mut buf = Vec::new();
        b.iter(|| {
            let timeline = pool.build(&params, std::hint::black_box(&txs), horizon_s);
            timeline.sample_into(dt_s, &mut buf);
            let n = buf.len();
            pool.recycle(timeline);
            n
        })
    });
}

fn bench_cycle_detector(c: &mut Criterion) {
    let mut detector = CycleDetector::with_history(64);
    for i in 0..64 {
        detector.observe(i as f64 * 270.0 + (i % 3) as f64);
    }
    c.bench_function("hb/detect_fixed_cycle_64obs", |b| {
        b.iter(|| std::hint::black_box(&detector).detect())
    });
    c.bench_function("hb/predict_until_1h", |b| {
        b.iter(|| std::hint::black_box(&detector).predict_until(17_280.0, 20_880.0))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    group.bench_function("scenario_600s_etrain", |b| {
        b.iter(|| {
            Scenario::paper_default()
                .duration_secs(600)
                .scheduler(SchedulerKind::ETrain {
                    theta: 0.5,
                    k: None,
                })
                .seed(3)
                .run()
        })
    });
    group.bench_function("scenario_600s_baseline", |b| {
        b.iter(|| {
            Scenario::paper_default()
                .duration_secs(600)
                .scheduler(SchedulerKind::Baseline)
                .seed(3)
                .run()
        })
    });
    group.finish();
}

/// The same Θ sweep run point-by-point (each point re-synthesizes the
/// packet/heartbeat/bandwidth traces) vs through the [`RunGrid`] (one
/// shared synthesis in the trace cache, workers in parallel). The gap is
/// the runner's speedup; on a single core it isolates the cache's share.
fn bench_sweep_runner(c: &mut Criterion) {
    let base = Scenario::paper_default().duration_secs(600).seed(3);
    let thetas = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);
    group.bench_function("theta_sweep_serial_resynthesized", |b| {
        b.iter(|| {
            thetas
                .iter()
                .map(|&theta| {
                    base.clone()
                        .scheduler(SchedulerKind::ETrain { theta, k: None })
                        .run()
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("theta_sweep_grid_shared_traces", |b| {
        b.iter(|| etrain_sim::sweep::theta_sweep(std::hint::black_box(&base), &thetas, None))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tail_energy,
    bench_greedy_selection,
    bench_hot_paths,
    bench_cycle_detector,
    bench_sweep_runner,
    bench_end_to_end
);
criterion_main!(benches);
