//! # eTrain — heartbeat-piggybacked mobile data transmission
//!
//! Umbrella crate for the reproduction of *eTrain: Making Wasted Energy
//! Useful by Utilizing Heartbeats for Mobile Data Transmissions* (ICDCS
//! 2015). It re-exports every subsystem crate so downstream users can depend
//! on a single crate:
//!
//! - [`radio`] — the 3G UMTS RRC radio state machine and tail-energy model;
//! - [`trace`] — workload, bandwidth, heartbeat and user-trace generators;
//! - [`hb`] — the heartbeat monitor (cycle detection and prediction);
//! - [`sched`] — delay-cost profiles and the scheduling algorithms
//!   (eTrain Algorithm 1, Baseline, PerES, eTime);
//! - [`sim`] — the trace-driven device simulator and experiment sweeps;
//! - [`core`] — the eTrain system runtime (monitor + scheduler + broadcast);
//! - [`apps`] — the Mail / Weibo / Cloud cargo-app models and trace replay;
//! - [`svc`] — the durable daemon: write-ahead journal, crash recovery,
//!   and the `etrain-svcd` line-protocol server.
//!
//! # Quick start
//!
//! ```
//! use etrain::sim::{Scenario, SchedulerKind};
//!
//! // Three IM train apps, three cargo apps, a 2-hour simulated run.
//! let report = Scenario::paper_default()
//!     .duration_secs(7200)
//!     .scheduler(SchedulerKind::ETrain { theta: 0.2, k: None })
//!     .seed(7)
//!     .run();
//! assert!(report.total_energy_j > 0.0);
//! ```

pub use etrain_apps as apps;
pub use etrain_core as core;
pub use etrain_hb as hb;
pub use etrain_radio as radio;
pub use etrain_sched as sched;
pub use etrain_sim as sim;
pub use etrain_svc as svc;
pub use etrain_trace as trace;
