//! Epoch-folding period estimation — an independent second opinion on the
//! heartbeat cycle.
//!
//! The primary [`CycleDetector`](crate::CycleDetector) estimates the cycle
//! from the *median gap*, which is cheap and online but can be fooled by
//! missing observations (a dropped heartbeat doubles one gap). Epoch
//! folding scores candidate periods by how tightly the observations
//! cluster when folded modulo the candidate — dropped beats do not hurt
//! it, because the surviving beats still land on the same phase. The two
//! estimators cross-check each other in tests and in the Table 1
//! reproduction.

/// Scores one candidate period: the mean circular deviation (seconds) of
/// the folded observations from their circular mean phase. Lower = better.
fn fold_score(times_s: &[f64], period_s: f64) -> f64 {
    // Circular mean via unit vectors.
    let tau = std::f64::consts::TAU;
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for &t in times_s {
        let phase = (t / period_s).fract() * tau;
        sx += phase.cos();
        sy += phase.sin();
    }
    let mean_phase = sy.atan2(sx);
    let mut dev = 0.0;
    for &t in times_s {
        let phase = (t / period_s).fract() * tau;
        let mut d = (phase - mean_phase).abs() % tau;
        if d > tau / 2.0 {
            d = tau - d;
        }
        dev += d / tau * period_s;
    }
    dev / times_s.len() as f64
}

/// Estimates the dominant period of a point process by epoch folding.
///
/// Candidate periods are the observed inter-event gaps (and their halves,
/// to catch a missed beat making one gap look doubled); the candidate with
/// the lowest folded deviation wins, refined by a local golden-section
/// polish. Returns `None` for fewer than 3 observations or when even the
/// best candidate leaves more than 20 % of the period as scatter (no
/// periodicity).
///
/// # Examples
///
/// ```
/// use etrain_hb::estimate_period;
///
/// let times: Vec<f64> = (0..8).map(|i| 5.0 + i as f64 * 270.0).collect();
/// let period = estimate_period(&times).expect("clearly periodic");
/// assert!((period - 270.0).abs() < 1.0);
///
/// // A dropped beat does not fool the folding estimator:
/// let mut with_gap = times.clone();
/// with_gap.remove(3);
/// let period = estimate_period(&with_gap).expect("still periodic");
/// assert!((period - 270.0).abs() < 1.0);
/// ```
pub fn estimate_period(times_s: &[f64]) -> Option<f64> {
    if times_s.len() < 3 {
        return None;
    }
    let mut sorted = times_s.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let gaps: Vec<f64> = sorted
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 1e-6)
        .collect();
    if gaps.is_empty() {
        return None;
    }

    // Candidates: every distinct gap and its half (missed-beat recovery).
    let mut candidates: Vec<f64> = Vec::new();
    for &g in &gaps {
        candidates.push(g);
        candidates.push(g / 2.0);
    }
    candidates.retain(|&c| c > 1e-3);

    // Folding alone is ambiguous under subharmonics: if p is the true
    // period, every p/k also folds perfectly. Disambiguate with coverage:
    // a true period p implies about span/p + 1 events; a subharmonic p/k
    // implies k times as many, so its coverage collapses toward 1/k.
    // Among candidates that fold tightly, pick the one whose implied
    // event count best matches the observed count.
    let span = sorted.last().expect("non-empty") - sorted.first().expect("non-empty");
    let n = sorted.len() as f64;
    let coverage = |p: f64| n / (span / p + 1.0);
    let tight: Vec<f64> = candidates
        .iter()
        .copied()
        .filter(|&c| fold_score(&sorted, c) <= c * 0.05 && coverage(c) <= 1.1)
        .collect();
    let best = if tight.is_empty() {
        candidates
            .iter()
            .copied()
            .map(|c| (c, fold_score(&sorted, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))?
    } else {
        let chosen = tight
            .into_iter()
            .min_by(|&a, &b| {
                (coverage(a) - 1.0)
                    .abs()
                    .total_cmp(&(coverage(b) - 1.0).abs())
            })
            .expect("tight set checked non-empty");
        (chosen, fold_score(&sorted, chosen))
    };

    // Local refinement around the best candidate (golden-section search on
    // the fold score over ±5 %).
    let (mut lo, mut hi) = (best.0 * 0.95, best.0 * 1.05);
    const PHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..40 {
        let a = hi - (hi - lo) * PHI;
        let b = lo + (hi - lo) * PHI;
        if fold_score(&sorted, a) < fold_score(&sorted, b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    let refined = (lo + hi) / 2.0;
    let score = fold_score(&sorted, refined);
    if score > refined * 0.2 {
        return None; // too scattered to call periodic
    }
    Some(refined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(phase: f64, period: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| phase + i as f64 * period).collect()
    }

    #[test]
    fn exact_period_recovered() {
        for period in [60.0, 240.0, 300.0, 1800.0] {
            let estimated = estimate_period(&periodic(17.0, period, 10)).unwrap();
            assert!(
                (estimated - period).abs() / period < 0.01,
                "period {period}: estimated {estimated}"
            );
        }
    }

    #[test]
    fn survives_missing_beats() {
        let mut times = periodic(0.0, 300.0, 12);
        times.remove(5);
        times.remove(7);
        let estimated = estimate_period(&times).unwrap();
        assert!((estimated - 300.0).abs() < 3.0, "estimated {estimated}");
    }

    #[test]
    fn survives_jitter() {
        let mut rng = etrain_trace::rng::seeded(3);
        use rand::Rng;
        let times: Vec<f64> = (0..15)
            .map(|i| i as f64 * 270.0 + rng.gen_range(-4.0..4.0))
            .collect();
        let estimated = estimate_period(&times).unwrap();
        assert!((estimated - 270.0).abs() < 8.0, "estimated {estimated}");
    }

    #[test]
    fn too_few_observations_is_none() {
        assert_eq!(estimate_period(&[0.0, 300.0]), None);
        assert_eq!(estimate_period(&[]), None);
    }

    #[test]
    fn aperiodic_input_is_rejected() {
        // Strongly aperiodic times (exponentially growing gaps).
        let times: Vec<f64> = (0..10).map(|i| 1.7f64.powi(i) * 13.0).collect();
        // Either None, or whatever period is claimed must fold poorly
        // enough that we never assert exactness — accept None only.
        if let Some(p) = estimate_period(&times) {
            // If a period is claimed, it must at least fold tightly.
            assert!(fold_score(&times, p) <= p * 0.2);
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut times = periodic(0.0, 240.0, 10);
        times.reverse();
        let estimated = estimate_period(&times).unwrap();
        assert!((estimated - 240.0).abs() < 1.0);
    }
}
