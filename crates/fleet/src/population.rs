//! The fleet's population model: which behavior class each device belongs
//! to, how its private seed is derived, and the full [`FleetConfig`] that
//! pins one fleet run down to the bit.
//!
//! Everything here is a pure function of `(fleet seed, device index)` —
//! never of the shard a device lands in or the worker that runs it. That
//! is the whole determinism story: a device's class, seed, packets and
//! heartbeats are identical whether the fleet runs on 1 thread or 16,
//! sharded by 64 devices or 64k.

use etrain_sched::{AppProfile, CostProfile};
use etrain_sim::{BandwidthSource, EngineKind, OracleMode, Scenario, SchedulerKind};
use etrain_trace::packets::Packet;
use etrain_trace::user::{upload_packets_into, Activeness};
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

/// The display label of one behavior class (`active` / `moderate` /
/// `inactive`), used in fleet snapshots and tables.
pub fn class_label(class: Activeness) -> &'static str {
    match class {
        Activeness::Active => "active",
        Activeness::Moderate => "moderate",
        Activeness::Inactive => "inactive",
    }
}

/// Integer class weights assigning each device a behavior class by its
/// index, round-robin over a repeating cycle of length
/// `active + moderate + inactive`.
///
/// Device `d` gets the class at position `d mod cycle`: the first
/// `active` positions are [`Activeness::Active`], the next `moderate`
/// are [`Activeness::Moderate`], the rest [`Activeness::Inactive`]. A
/// pure function of the device index — shard- and worker-independent —
/// that realizes the weights exactly (not just in expectation) in every
/// aligned window of `cycle` devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Devices per cycle in the paper's *active* class (21–40 uploads
    /// per app use).
    pub active: u32,
    /// Devices per cycle in the *moderate* class (10–20 uploads).
    pub moderate: u32,
    /// Devices per cycle in the *inactive* class (2–9 uploads).
    pub inactive: u32,
}

impl ClassMix {
    /// The fleet default: an inactive-heavy population (1 active :
    /// 2 moderate : 7 inactive per 10 devices), matching the long-tailed
    /// activity distributions of the paper's user study — most users post
    /// rarely, a small minority posts constantly.
    pub fn paper_skew() -> ClassMix {
        ClassMix {
            active: 1,
            moderate: 2,
            inactive: 7,
        }
    }

    /// One device of each class per cycle of three.
    pub fn uniform() -> ClassMix {
        ClassMix {
            active: 1,
            moderate: 1,
            inactive: 1,
        }
    }

    /// The cycle length (`active + moderate + inactive`).
    pub fn cycle(&self) -> u64 {
        u64::from(self.active) + u64::from(self.moderate) + u64::from(self.inactive)
    }

    /// The behavior class of device `device` — a pure function of the
    /// index, independent of sharding.
    ///
    /// # Panics
    ///
    /// Panics if all three weights are zero (an empty cycle assigns no
    /// class to anyone); [`FleetConfig::validate`] rejects that earlier
    /// with a better message.
    pub fn class_of(&self, device: u64) -> Activeness {
        let cycle = self.cycle();
        assert!(cycle > 0, "class mix must have at least one nonzero weight");
        let r = device % cycle;
        if r < u64::from(self.active) {
            Activeness::Active
        } else if r < u64::from(self.active) + u64::from(self.moderate) {
            Activeness::Moderate
        } else {
            Activeness::Inactive
        }
    }
}

impl Default for ClassMix {
    fn default() -> Self {
        ClassMix::paper_skew()
    }
}

/// SplitMix64's output mix — the standard stateless bijection used to
/// spread consecutive integers into decorrelated 64-bit seeds.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private seed of device `device` under fleet seed `fleet_seed`.
///
/// Two SplitMix64 rounds over `(fleet_seed, device)` so that neighboring
/// device indices and neighboring fleet seeds both produce decorrelated
/// streams. Pure and shard-independent; the fleet-of-N ≡ N-independent-
/// runs equivalence rests on every consumer deriving per-device
/// randomness from this one value.
pub fn device_seed(fleet_seed: u64, device: u64) -> u64 {
    splitmix64(fleet_seed ^ splitmix64(device))
}

/// One device of the population, fully resolved: its index, behavior
/// class and private seed. Everything a worker needs to synthesize the
/// device's traces and run it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// The device's index in `0..devices`.
    pub device: u64,
    /// Its behavior class.
    pub class: Activeness,
    /// Its private seed (see [`device_seed`]).
    pub seed: u64,
}

/// A complete description of one fleet run.
///
/// [`FleetConfig::paper_default`] pins the paper's Fig. 11 operating
/// point: eTrain with Θ = 20, k = 20, a single Weibo cargo app with a
/// 30-second deadline, 600-second app-use sessions, and a constant
/// 450 kbit/s channel — the configuration the per-user energy-saving
/// figure was produced with, scaled from 100 users to 10⁵–10⁶ devices.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// How many devices to simulate.
    pub devices: u64,
    /// The fleet seed every per-device seed derives from.
    pub seed: u64,
    /// The scheduler every device runs.
    pub scheduler: SchedulerKind,
    /// The class weights of the population.
    pub mix: ClassMix,
    /// Each device's session (horizon) length, in seconds.
    pub session_secs: u64,
    /// The constant channel bandwidth, in bits per second.
    pub bandwidth_bps: f64,
    /// Which simulation kernel devices run on (fleet default:
    /// [`EngineKind::Event`], the faster of the two bit-identical
    /// kernels).
    pub engine: EngineKind,
    /// Devices per shard (the unit of work handed to a worker).
    pub shard_devices: usize,
    /// Worker-thread override; `None` defers to `ETRAIN_JOBS`, then to
    /// the machine's available parallelism.
    pub jobs: Option<usize>,
    /// Route scheduler decisions through the reference cost path instead
    /// of the cached hot path (the `ETRAIN_REFERENCE_COST` escape hatch;
    /// both paths are decision-identical).
    pub reference_cost: bool,
}

impl FleetConfig {
    /// The Fig. 11 operating point over `devices` devices (see the type
    /// docs). Honors the `ETRAIN_REFERENCE_COST` escape hatch like
    /// [`Scenario::paper_default`] does; the oracle and observability
    /// knobs are deliberately *not* read — fleet workers run with both
    /// off, and journaled fleet tiers opt in explicitly.
    pub fn paper_default(devices: u64) -> FleetConfig {
        FleetConfig {
            devices,
            seed: 0,
            scheduler: SchedulerKind::ETrain {
                theta: 20.0,
                k: Some(20),
            },
            mix: ClassMix::paper_skew(),
            session_secs: 600,
            bandwidth_bps: 450_000.0,
            engine: EngineKind::Event,
            shard_devices: 4096,
            jobs: None,
            reference_cost: etrain_sched::reference_cost_from_env(),
        }
    }

    /// Sets the fleet seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduler every device runs.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the class mix.
    pub fn mix(mut self, mix: ClassMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the shard size (devices per unit of work).
    pub fn shard_devices(mut self, shard_devices: usize) -> Self {
        self.shard_devices = shard_devices;
        self
    }

    /// Overrides the worker-thread count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// The cargo-app profiles every device schedules against: the single
    /// Weibo app with its 30-second deadline, as in Fig. 11.
    pub fn profiles(&self) -> Vec<AppProfile> {
        vec![AppProfile::new("Weibo", CostProfile::weibo(30.0))]
    }

    /// Resolves device `device` to its [`DeviceSpec`].
    pub fn device_spec(&self, device: u64) -> DeviceSpec {
        DeviceSpec {
            device,
            class: self.mix.class_of(device),
            seed: device_seed(self.seed, device),
        }
    }

    /// The device's upload packets, synthesized into `out` (cleared
    /// first) through the lazy per-class generator — bit-identical to
    /// materializing the device's full app-use trace and running it
    /// through `normalized_to` + `to_packets`.
    pub fn device_packets_into(&self, spec: &DeviceSpec, out: &mut Vec<Packet>) {
        upload_packets_into(
            spec.device as u32,
            spec.class,
            spec.seed,
            self.session_secs as f64,
            CargoAppId(0),
            out,
        );
    }

    /// The single-device [`Scenario`] that device `spec` is defined to be
    /// equivalent to — the conformance reference for the fleet runner's
    /// direct engine path. Oracle and observability are pinned off so the
    /// report is exactly what the fleet's allocation-lean path produces
    /// regardless of `ETRAIN_ORACLE` / `ETRAIN_OBS` in the environment.
    pub fn reference_scenario(&self, spec: &DeviceSpec) -> Scenario {
        let mut packets = Vec::new();
        self.device_packets_into(spec, &mut packets);
        Scenario::paper_default()
            .duration_secs(self.session_secs)
            .profiles(self.profiles())
            .packets(packets)
            .bandwidth(BandwidthSource::Constant(self.bandwidth_bps))
            .scheduler(self.scheduler)
            .seed(spec.seed)
            .engine(self.engine)
            .oracle(OracleMode::Off)
            .obs(etrain_obs::ObsMode::Off)
            .reference_cost(self.reference_cost)
    }

    /// Checks the config's invariants before any work starts.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the fleet is empty, the class
    /// mix has no nonzero weight, the shard size is zero, the session is
    /// empty, or the bandwidth is non-positive/non-finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("fleet must have at least one device".to_owned());
        }
        if self.mix.cycle() == 0 {
            return Err("class mix must have at least one nonzero weight".to_owned());
        }
        if self.shard_devices == 0 {
            return Err("shard size must be at least one device".to_owned());
        }
        if self.session_secs == 0 {
            return Err("session must be at least one second".to_owned());
        }
        if !(self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0) {
            return Err(format!(
                "bandwidth must be positive and finite, got {} bps",
                self.bandwidth_bps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mix_realizes_weights_exactly_per_cycle() {
        let mix = ClassMix::paper_skew();
        let cycle = mix.cycle();
        assert_eq!(cycle, 10);
        for window in 0..3u64 {
            let mut counts = [0u32; 3];
            for d in window * cycle..(window + 1) * cycle {
                match mix.class_of(d) {
                    Activeness::Active => counts[0] += 1,
                    Activeness::Moderate => counts[1] += 1,
                    Activeness::Inactive => counts[2] += 1,
                }
            }
            assert_eq!(counts, [1, 2, 7]);
        }
    }

    #[test]
    fn device_seeds_are_decorrelated_and_stable() {
        let a = device_seed(0, 0);
        let b = device_seed(0, 1);
        let c = device_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls (pure function).
        assert_eq!(a, device_seed(0, 0));
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(FleetConfig::paper_default(0).validate().is_err());
        assert!(FleetConfig::paper_default(1).validate().is_ok());
        let mut c = FleetConfig::paper_default(1);
        c.mix = ClassMix {
            active: 0,
            moderate: 0,
            inactive: 0,
        };
        assert!(c.validate().is_err());
        let mut c = FleetConfig::paper_default(1);
        c.shard_devices = 0;
        assert!(c.validate().is_err());
        let mut c = FleetConfig::paper_default(1);
        c.bandwidth_bps = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reference_scenario_is_reproducible_per_device() {
        let config = FleetConfig::paper_default(4);
        let spec = config.device_spec(3);
        let a = config.reference_scenario(&spec).run();
        let b = config.reference_scenario(&spec).run();
        assert_eq!(a, b);
    }
}
