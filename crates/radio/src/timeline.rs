use serde::{Deserialize, Serialize};

use crate::error::RadioError;
use crate::params::RadioParams;
use crate::power::PowerTrace;
use crate::tail::merge_busy_periods;

/// RRC power state of the cellular interface (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrcState {
    /// Low-power idle state (no channel allocated).
    Idle,
    /// Moderate-power Forward Access Channel state.
    Fach,
    /// High-power Dedicated Channel state (transmitting, or DCH tail).
    Dch,
}

impl RrcState {
    /// Absolute device power of this state in milliwatts.
    pub fn power_mw(self, params: &RadioParams) -> f64 {
        match self {
            RrcState::Idle => params.idle_mw(),
            RrcState::Fach => params.fach_mw(),
            RrcState::Dch => params.dch_mw(),
        }
    }

    /// Power above idle in milliwatts (0 for [`RrcState::Idle`]).
    pub fn extra_power_mw(self, params: &RadioParams) -> f64 {
        self.power_mw(params) - params.idle_mw()
    }
}

impl std::fmt::Display for RrcState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RrcState::Idle => "IDLE",
            RrcState::Fach => "FACH",
            RrcState::Dch => "DCH",
        };
        f.write_str(name)
    }
}

/// One data or heartbeat transmission occupying the radio.
///
/// `start_s` is when the transmission begins (seconds since the start of the
/// scenario) and `duration_s` how long it keeps the radio busy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmission {
    /// Start time in seconds.
    pub start_s: f64,
    /// Busy duration in seconds.
    pub duration_s: f64,
}

impl Transmission {
    /// Creates a transmission starting at `start_s` lasting `duration_s`.
    pub fn new(start_s: f64, duration_s: f64) -> Self {
        Transmission {
            start_s,
            duration_s,
        }
    }

    /// End time of the transmission in seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Validates that the transmission has finite, non-negative timing.
    ///
    /// # Errors
    ///
    /// Returns [`RadioError::InvalidTransmission`] on negative or non-finite
    /// start/duration.
    pub fn validate(&self) -> Result<(), RadioError> {
        if !self.start_s.is_finite()
            || !self.duration_s.is_finite()
            || self.start_s < 0.0
            || self.duration_s < 0.0
        {
            return Err(RadioError::InvalidTransmission {
                start_s: self.start_s,
                duration_s: self.duration_s,
            });
        }
        Ok(())
    }
}

/// A maximal interval during which the radio stays in one state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSegment {
    /// Segment start time in seconds.
    pub start_s: f64,
    /// Segment end time in seconds.
    pub end_s: f64,
    /// The state held throughout the segment.
    pub state: RrcState,
}

impl StateSegment {
    /// Length of the segment in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Offline RRC state timeline over `[0, horizon_s]` derived from a set of
/// transmissions.
///
/// The timeline applies the demotion rules of the paper's Fig. 4: the radio
/// is in DCH while busy and for δ_D afterwards, in FACH for the following
/// δ_F, then IDLE — unless another transmission re-promotes it. It is the
/// reproduction's stand-in for the Monsoon power-monitor capture: exact
/// piecewise energy integration plus sampled [`PowerTrace`] export.
///
/// # Examples
///
/// ```
/// use etrain_radio::{RadioParams, RrcState, Timeline, Transmission};
///
/// let p = RadioParams::galaxy_s4_3g();
/// let tl = Timeline::from_transmissions(&p, &[Transmission::new(10.0, 2.0)], 60.0);
/// assert_eq!(tl.state_at(5.0), RrcState::Idle);
/// assert_eq!(tl.state_at(11.0), RrcState::Dch);
/// assert_eq!(tl.state_at(25.0), RrcState::Fach); // 13 s after tx end
/// assert_eq!(tl.state_at(40.0), RrcState::Idle);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    params: RadioParams,
    horizon_s: f64,
    segments: Vec<StateSegment>,
}

impl Timeline {
    /// Builds the timeline for `transmissions` over `[0, horizon_s]`.
    ///
    /// Transmissions may be unsorted and overlapping; they are merged into
    /// busy periods first. Transmissions at or beyond the horizon are
    /// ignored; one straddling the horizon is clipped.
    pub fn from_transmissions(
        params: &RadioParams,
        transmissions: &[Transmission],
        horizon_s: f64,
    ) -> Self {
        let busy = merge_busy_periods(transmissions, horizon_s);
        let mut segments = Vec::new();
        let mut cursor = 0.0;
        let dd = params.delta_dch_s();
        let df = params.delta_fach_s();

        let push = |segments: &mut Vec<StateSegment>, start: f64, end: f64, state| {
            if end > start {
                segments.push(StateSegment {
                    start_s: start,
                    end_s: end,
                    state,
                });
            }
        };

        for (idx, &(start, end)) in busy.iter().enumerate() {
            push(&mut segments, cursor, start, RrcState::Idle);
            // Busy period itself is DCH.
            push(&mut segments, start, end, RrcState::Dch);
            let next_start = busy
                .get(idx + 1)
                .map_or(horizon_s, |&(next_start, _)| next_start);
            let dch_tail_end = (end + dd).min(next_start).min(horizon_s);
            push(&mut segments, end, dch_tail_end, RrcState::Dch);
            let fach_end = (end + dd + df).min(next_start).min(horizon_s);
            push(&mut segments, dch_tail_end, fach_end, RrcState::Fach);
            push(
                &mut segments,
                fach_end,
                next_start.min(horizon_s),
                RrcState::Idle,
            );
            cursor = next_start;
        }
        push(&mut segments, cursor, horizon_s, RrcState::Idle);

        // Merge adjacent segments with the same state (busy + DCH tail).
        let mut merged: Vec<StateSegment> = Vec::with_capacity(segments.len());
        for seg in segments {
            match merged.last_mut() {
                Some(last)
                    if last.state == seg.state && (last.end_s - seg.start_s).abs() < 1e-12 =>
                {
                    last.end_s = seg.end_s;
                }
                _ => merged.push(seg),
            }
        }

        Timeline {
            params: params.clone(),
            horizon_s,
            segments: merged,
        }
    }

    /// The parameter set the timeline was built with.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// The horizon (scenario length) in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The state segments in chronological order, covering `[0, horizon_s]`
    /// without gaps.
    pub fn segments(&self) -> &[StateSegment] {
        &self.segments
    }

    /// State held at time `t` (the state of the segment containing `t`;
    /// boundaries resolve to the later segment).
    pub fn state_at(&self, t_s: f64) -> RrcState {
        let idx = self
            .segments
            .partition_point(|seg| seg.end_s <= t_s)
            .min(self.segments.len().saturating_sub(1));
        self.segments.get(idx).map_or(RrcState::Idle, |s| s.state)
    }

    /// Exact extra energy above idle over the whole horizon, in joules.
    pub fn extra_energy_j(&self) -> f64 {
        self.segments
            .iter()
            .map(|seg| seg.state.extra_power_mw(&self.params) / 1000.0 * seg.duration_s())
            .sum()
    }

    /// Exact total energy including the idle baseline, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.extra_energy_j() + self.params.idle_mw() / 1000.0 * self.horizon_s
    }

    /// Total time spent in `state`, in seconds.
    pub fn time_in_state_s(&self, state: RrcState) -> f64 {
        self.segments
            .iter()
            .filter(|seg| seg.state == state)
            .map(StateSegment::duration_s)
            .sum()
    }

    /// Samples the absolute device power every `dt_s` seconds, producing the
    /// software analogue of a power-monitor capture.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn sample(&self, dt_s: f64) -> PowerTrace {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        let n = (self.horizon_s / dt_s).ceil() as usize;
        let samples = (0..n)
            .map(|i| self.state_at(i as f64 * dt_s).power_mw(&self.params))
            .collect();
        PowerTrace::new(dt_s, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tail::analytic_extra_energy_j;

    fn params() -> RadioParams {
        RadioParams::galaxy_s4_3g()
    }

    #[test]
    fn empty_schedule_is_all_idle() {
        let tl = Timeline::from_transmissions(&params(), &[], 100.0);
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.state_at(50.0), RrcState::Idle);
        assert_eq!(tl.extra_energy_j(), 0.0);
        assert!((tl.total_energy_j() - 2.0).abs() < 1e-9); // 20 mW * 100 s
    }

    #[test]
    fn lone_transmission_walks_through_all_states() {
        let tl = Timeline::from_transmissions(&params(), &[Transmission::new(10.0, 2.0)], 100.0);
        assert_eq!(tl.state_at(0.0), RrcState::Idle);
        assert_eq!(tl.state_at(10.5), RrcState::Dch); // busy
        assert_eq!(tl.state_at(15.0), RrcState::Dch); // DCH tail (ends 22.0)
        assert_eq!(tl.state_at(23.0), RrcState::Fach); // FACH tail (ends 29.5)
        assert_eq!(tl.state_at(30.0), RrcState::Idle);
    }

    #[test]
    fn segments_cover_horizon_without_gaps() {
        let tl = Timeline::from_transmissions(
            &params(),
            &[Transmission::new(5.0, 1.0), Transmission::new(30.0, 0.5)],
            120.0,
        );
        let segs = tl.segments();
        assert_eq!(segs.first().unwrap().start_s, 0.0);
        assert_eq!(segs.last().unwrap().end_s, 120.0);
        for w in segs.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
        }
    }

    #[test]
    fn timeline_energy_matches_analytic_model() {
        let p = params();
        let txs = [
            Transmission::new(3.0, 0.4),
            Transmission::new(9.0, 1.0), // reuses tail of first
            Transmission::new(100.0, 2.0),
            Transmission::new(114.0, 0.1), // lands in FACH phase
        ];
        let tl = Timeline::from_transmissions(&p, &txs, 500.0);
        let analytic = analytic_extra_energy_j(&p, &txs, 500.0);
        assert!(
            (tl.extra_energy_j() - analytic).abs() < 1e-9,
            "timeline {} vs analytic {}",
            tl.extra_energy_j(),
            analytic
        );
    }

    #[test]
    fn reused_tail_costs_less_than_two_full_tails() {
        let p = params();
        let shared = Timeline::from_transmissions(
            &p,
            &[Transmission::new(0.0, 0.2), Transmission::new(3.0, 0.2)],
            100.0,
        );
        let separate = Timeline::from_transmissions(
            &p,
            &[Transmission::new(0.0, 0.2), Transmission::new(50.0, 0.2)],
            100.0,
        );
        assert!(shared.extra_energy_j() < separate.extra_energy_j());
    }

    #[test]
    fn time_in_state_accounts_for_everything() {
        let tl = Timeline::from_transmissions(&params(), &[Transmission::new(10.0, 2.0)], 100.0);
        let total = tl.time_in_state_s(RrcState::Idle)
            + tl.time_in_state_s(RrcState::Fach)
            + tl.time_in_state_s(RrcState::Dch);
        assert!((total - 100.0).abs() < 1e-9);
        // 2 s busy + 10 s DCH tail.
        assert!((tl.time_in_state_s(RrcState::Dch) - 12.0).abs() < 1e-9);
        assert!((tl.time_in_state_s(RrcState::Fach) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn sampled_trace_energy_approximates_exact() {
        let p = params();
        let tl = Timeline::from_transmissions(
            &p,
            &[Transmission::new(7.0, 1.3), Transmission::new(40.0, 0.7)],
            200.0,
        );
        let trace = tl.sample(0.1);
        let exact = tl.total_energy_j();
        assert!(
            (trace.energy_j() - exact).abs() / exact < 0.01,
            "sampled {} vs exact {}",
            trace.energy_j(),
            exact
        );
    }

    #[test]
    fn transmission_validation() {
        assert!(Transmission::new(0.0, 1.0).validate().is_ok());
        assert!(Transmission::new(-1.0, 1.0).validate().is_err());
        assert!(Transmission::new(0.0, f64::INFINITY).validate().is_err());
    }

    #[test]
    fn state_display_names() {
        assert_eq!(RrcState::Idle.to_string(), "IDLE");
        assert_eq!(RrcState::Fach.to_string(), "FACH");
        assert_eq!(RrcState::Dch.to_string(), "DCH");
    }
}
