//! Durable, checksummed on-disk framing for journal records.
//!
//! The live service (`etrain-svc`) persists its write-ahead log through
//! this module. A *segment* is a byte stream beginning with
//! [`WAL_MAGIC`] followed by zero or more *frames*; each frame is
//!
//! ```text
//! [payload length: u32 LE][CRC-32 of payload: u32 LE][payload bytes]
//! ```
//!
//! The format is deliberately dumb: no compression, no index, no
//! self-describing schema — the payload is whatever the caller framed
//! (for [`DurableRecorder`], one [`EventRecord`] as JSON; for the
//! service WAL, one serialized command). What the framing *does* buy is
//! crash safety: a reader can always classify the tail of a segment as
//! clean, torn (an append that died partway), or corrupt (bit rot or a
//! misdirected write), and truncate to the last frame whose checksum
//! verifies. Recovery never trusts bytes past that point.
//!
//! Fault injection is built in rather than bolted on:
//! [`FrameWriter::append_faulty`] produces exactly the damaged tails the
//! chaos harness needs (short header, torn payload, flipped checksum),
//! so the detection path is exercised by the same code that writes real
//! segments.

use crate::recorder::Recorder;
use crate::EventRecord;
use std::io::Write;

/// Magic bytes opening every WAL segment (8 bytes, versioned).
pub const WAL_MAGIC: [u8; 8] = *b"ETWAL01\n";

/// Size of one frame header: payload length + CRC-32, both `u32` LE.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on a single frame's payload. A length field above this is
/// treated as corruption rather than an allocation request: no legitimate
/// record (a JSON-serialized command or event) comes anywhere close.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes` — the checksum every frame
/// carries. Table-driven, no dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

/// A deliberately damaged append, for crash and corruption testing.
///
/// Each variant models one real failure the recovery path must survive:
/// a process killed mid-`write` (torn), a header that never finished
/// (short), and a payload whose stored checksum no longer matches (bit
/// rot, misdirected write). [`FrameWriter::append_faulty`] realizes them
/// byte-exactly so tests can assert the reader's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AppendFault {
    /// Write the header and only the first `keep_bytes` payload bytes —
    /// the classic torn append of a SIGKILL mid-`write`. `keep_bytes` is
    /// clamped to the payload length (a full-length "torn" write is
    /// indistinguishable from a clean one, so callers wanting damage
    /// should pass less).
    TornPayload {
        /// How many payload bytes survive.
        keep_bytes: usize,
    },
    /// Write only the first 4 header bytes (the length field) and stop:
    /// the crash landed inside the header itself.
    ShortHeader,
    /// Write the full frame but with the checksum bitwise-inverted:
    /// the payload is present yet provably untrustworthy.
    FlipChecksum,
}

/// Appends checksummed frames to a byte sink.
///
/// The writer tracks how many frames and bytes it has emitted so callers
/// can rotate segments at a size threshold and record durable offsets in
/// checkpoints.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    writer: W,
    frames: u64,
    bytes: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Starts a fresh segment: writes [`WAL_MAGIC`] immediately.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn create(mut writer: W) -> std::io::Result<Self> {
        writer.write_all(&WAL_MAGIC)?;
        Ok(FrameWriter {
            writer,
            frames: 0,
            bytes: WAL_MAGIC.len() as u64,
        })
    }

    /// Resumes appending to an existing segment that already holds
    /// `frames` valid frames over `bytes` total bytes (as reported by
    /// [`scan_segment`]); writes no magic.
    pub fn resume(writer: W, frames: u64, bytes: u64) -> Self {
        FrameWriter {
            writer,
            frames,
            bytes,
        }
    }

    /// Appends one frame. Header and payload go through a single
    /// `write_all` each; durability (fsync) is the caller's policy.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error; on error the segment tail
    /// must be considered torn.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let header = Self::header(payload);
        self.writer.write_all(&header)?;
        self.writer.write_all(payload)?;
        self.frames += 1;
        self.bytes += (FRAME_HEADER_BYTES + payload.len()) as u64;
        Ok(())
    }

    /// Appends a deliberately damaged frame (see [`AppendFault`]). The
    /// writer's counters advance by the bytes *actually* written and the
    /// frame is **not** counted as valid — after a faulty append the
    /// segment tail is damaged by construction and the writer should be
    /// discarded, exactly like a crashed process.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn append_faulty(&mut self, payload: &[u8], fault: AppendFault) -> std::io::Result<()> {
        let mut header = Self::header(payload);
        match fault {
            AppendFault::TornPayload { keep_bytes } => {
                let keep = keep_bytes.min(payload.len());
                self.writer.write_all(&header)?;
                self.writer.write_all(&payload[..keep])?;
                self.bytes += (FRAME_HEADER_BYTES + keep) as u64;
            }
            AppendFault::ShortHeader => {
                self.writer.write_all(&header[..4])?;
                self.bytes += 4;
            }
            AppendFault::FlipChecksum => {
                for b in &mut header[4..8] {
                    *b = !*b;
                }
                self.writer.write_all(&header)?;
                self.writer.write_all(payload)?;
                self.bytes += (FRAME_HEADER_BYTES + payload.len()) as u64;
            }
        }
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Valid frames appended (faulty appends excluded).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total bytes emitted, magic and damaged tails included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Borrows the underlying writer (e.g. to `sync_data` a file).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.writer
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn header(payload: &[u8]) -> [u8; FRAME_HEADER_BYTES] {
        let len = payload.len() as u32;
        let crc = crc32(payload);
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[..4].copy_from_slice(&len.to_le_bytes());
        header[4..].copy_from_slice(&crc.to_le_bytes());
        header
    }
}

/// Verdict on the tail of a scanned segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TailStatus {
    /// Every byte belongs to a verified frame.
    Clean,
    /// The segment does not start with [`WAL_MAGIC`]; nothing was read.
    BadMagic,
    /// The final frame is incomplete — a header or payload cut short by
    /// a crash. Everything before `valid_bytes` verified.
    Torn {
        /// Prefix length (bytes) covering all verified frames.
        valid_bytes: u64,
    },
    /// The final frame is complete but fails its checksum (or declares
    /// an impossible length). Everything before `valid_bytes` verified.
    Corrupt {
        /// Prefix length (bytes) covering all verified frames.
        valid_bytes: u64,
    },
}

impl TailStatus {
    /// Whether the whole segment verified.
    pub fn is_clean(&self) -> bool {
        matches!(self, TailStatus::Clean)
    }

    /// The verified prefix length in bytes: the truncation point
    /// recovery keeps. `None` for [`TailStatus::BadMagic`], where not
    /// even the magic can be trusted.
    pub fn valid_bytes(&self, total: u64) -> Option<u64> {
        match self {
            TailStatus::Clean => Some(total),
            TailStatus::BadMagic => None,
            TailStatus::Torn { valid_bytes } | TailStatus::Corrupt { valid_bytes } => {
                Some(*valid_bytes)
            }
        }
    }
}

/// Result of scanning one segment: the verified payloads in append
/// order, and the verdict on the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Payloads of every frame whose checksum verified, oldest first.
    pub payloads: Vec<Vec<u8>>,
    /// What the scan found at the end of the segment.
    pub tail: TailStatus,
}

impl SegmentScan {
    /// Byte length of the verified prefix (magic + verified frames).
    pub fn valid_bytes(&self) -> u64 {
        let frames: u64 = self
            .payloads
            .iter()
            .map(|p| (FRAME_HEADER_BYTES + p.len()) as u64)
            .sum();
        match self.tail {
            TailStatus::BadMagic => 0,
            _ => WAL_MAGIC.len() as u64 + frames,
        }
    }
}

/// Scans a segment's bytes, verifying every frame checksum.
///
/// Never fails: damage is reported through [`TailStatus`], and the
/// verified prefix is always usable. A frame with a length field above
/// [`MAX_FRAME_BYTES`] is classified as corrupt (an absurd length is
/// indistinguishable from bit rot in the header).
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return SegmentScan {
            payloads: Vec::new(),
            tail: TailStatus::BadMagic,
        };
    }
    let mut payloads = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if pos == bytes.len() {
            return SegmentScan {
                payloads,
                tail: TailStatus::Clean,
            };
        }
        let valid_bytes = pos as u64;
        if bytes.len() - pos < FRAME_HEADER_BYTES {
            return SegmentScan {
                payloads,
                tail: TailStatus::Torn { valid_bytes },
            };
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_FRAME_BYTES {
            return SegmentScan {
                payloads,
                tail: TailStatus::Corrupt { valid_bytes },
            };
        }
        let body_start = pos + FRAME_HEADER_BYTES;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            return SegmentScan {
                payloads,
                tail: TailStatus::Torn { valid_bytes },
            };
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            return SegmentScan {
                payloads,
                tail: TailStatus::Corrupt { valid_bytes },
            };
        }
        payloads.push(payload.to_vec());
        pos = body_end;
    }
}

/// Streams each [`EventRecord`] as one checksummed frame (JSON payload)
/// into a byte sink — the durable sibling of
/// [`JsonLinesRecorder`](crate::JsonLinesRecorder).
///
/// Like every recorder, I/O errors are counted rather than propagated:
/// observability must never abort a run. Callers that need the journal
/// durably (the service WAL does) check [`DurableRecorder::write_errors`]
/// after flushing.
#[derive(Debug)]
pub struct DurableRecorder<W: Write + Send> {
    writer: FrameWriter<W>,
    write_errors: usize,
}

impl<W: Write + Send> DurableRecorder<W> {
    /// Starts a fresh framed segment on `writer` (writes the magic).
    ///
    /// # Errors
    ///
    /// Propagates the magic-write error.
    pub fn create(writer: W) -> std::io::Result<Self> {
        Ok(DurableRecorder {
            writer: FrameWriter::create(writer)?,
            write_errors: 0,
        })
    }

    /// Records (or flushes) dropped due to I/O errors.
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// Frames successfully appended.
    pub fn frames(&self) -> u64 {
        self.writer.frames()
    }

    /// Consumes the recorder, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write + Send> Recorder for DurableRecorder<W> {
    fn record(&mut self, record: &EventRecord) {
        let payload = serde_json::to_string(record).expect("event records serialize infallibly");
        if self.writer.append(payload.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

/// Decodes a scanned segment's payloads back into [`EventRecord`]s,
/// skipping (and counting) any payload that verified its checksum but is
/// not valid record JSON — possible only if the segment was written by
/// something other than [`DurableRecorder`].
pub fn decode_event_records(scan: &SegmentScan) -> (Vec<EventRecord>, usize) {
    let mut records = Vec::with_capacity(scan.payloads.len());
    let mut undecodable = 0;
    for payload in &scan.payloads {
        match std::str::from_utf8(payload)
            .ok()
            .and_then(|s| serde_json::from_str::<EventRecord>(s).ok())
        {
            Some(record) => records.push(record),
            None => undecodable += 1,
        }
    }
    (records, undecodable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Journal};

    fn frame_up(payloads: &[&[u8]]) -> Vec<u8> {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        for p in payloads {
            writer.append(p).unwrap();
        }
        writer.into_inner()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn clean_segment_round_trips() {
        let bytes = frame_up(&[b"alpha", b"", b"gamma-longer-payload"]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(
            scan.payloads,
            vec![
                b"alpha".to_vec(),
                Vec::new(),
                b"gamma-longer-payload".to_vec()
            ]
        );
        assert_eq!(scan.valid_bytes(), bytes.len() as u64);
        assert_eq!(
            scan.tail.valid_bytes(bytes.len() as u64),
            Some(bytes.len() as u64)
        );
    }

    #[test]
    fn empty_segment_is_clean() {
        let bytes = frame_up(&[]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert!(scan.payloads.is_empty());
    }

    #[test]
    fn bad_magic_is_detected() {
        let scan = scan_segment(b"NOTAWAL!rest");
        assert_eq!(scan.tail, TailStatus::BadMagic);
        assert!(scan.payloads.is_empty());
        assert_eq!(scan.tail.valid_bytes(12), None);
    }

    #[test]
    fn torn_payload_truncates_at_last_valid_frame() {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        writer.append(b"first").unwrap();
        let valid = writer.bytes();
        writer
            .append_faulty(
                b"second-payload",
                AppendFault::TornPayload { keep_bytes: 3 },
            )
            .unwrap();
        let bytes = writer.into_inner();
        let scan = scan_segment(&bytes);
        assert_eq!(scan.tail, TailStatus::Torn { valid_bytes: valid });
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
        assert_eq!(scan.valid_bytes(), valid);
    }

    #[test]
    fn short_header_is_torn() {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        writer.append(b"first").unwrap();
        let valid = writer.bytes();
        writer
            .append_faulty(b"second", AppendFault::ShortHeader)
            .unwrap();
        let scan = scan_segment(&writer.into_inner());
        assert_eq!(scan.tail, TailStatus::Torn { valid_bytes: valid });
        assert_eq!(scan.payloads.len(), 1);
    }

    #[test]
    fn flipped_checksum_is_corrupt() {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        writer.append(b"first").unwrap();
        let valid = writer.bytes();
        writer
            .append_faulty(b"second", AppendFault::FlipChecksum)
            .unwrap();
        let scan = scan_segment(&writer.into_inner());
        assert_eq!(scan.tail, TailStatus::Corrupt { valid_bytes: valid });
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
    }

    #[test]
    fn absurd_length_is_corrupt_not_an_allocation() {
        let mut bytes = frame_up(&[b"ok"]);
        let valid = bytes.len() as u64;
        bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan_segment(&bytes);
        assert_eq!(scan.tail, TailStatus::Corrupt { valid_bytes: valid });
        assert_eq!(scan.payloads.len(), 1);
    }

    #[test]
    fn flipped_payload_bit_is_corrupt() {
        let mut bytes = frame_up(&[b"first", b"second"]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let scan = scan_segment(&bytes);
        assert!(matches!(scan.tail, TailStatus::Corrupt { .. }));
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
    }

    #[test]
    fn resume_continues_counters() {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        writer.append(b"one").unwrap();
        let (frames, bytes) = (writer.frames(), writer.bytes());
        let mut buf = writer.into_inner();
        let mut resumed = FrameWriter::resume(&mut buf, frames, bytes);
        resumed.append(b"two").unwrap();
        assert_eq!(resumed.frames(), 2);
        let scan = scan_segment(&buf);
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.payloads.len(), 2);
    }

    #[test]
    fn durable_recorder_round_trips_event_records() {
        let mut journal = Journal::new();
        journal.push(1.0, Event::HeartbeatFired { size_bytes: 120 });
        journal.push(2.5, Event::HeartbeatFired { size_bytes: 64 });
        let mut recorder = DurableRecorder::create(Vec::new()).unwrap();
        journal.replay(&mut recorder);
        assert_eq!(recorder.write_errors(), 0);
        assert_eq!(recorder.frames(), 2);
        let bytes = recorder.into_inner();
        let scan = scan_segment(&bytes);
        assert!(scan.tail.is_clean());
        let (records, undecodable) = decode_event_records(&scan);
        assert_eq!(undecodable, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].time_s, 1.0);
        assert_eq!(records[1].time_s, 2.5);
    }

    #[test]
    fn torn_keep_bytes_clamps_to_payload() {
        let mut writer = FrameWriter::create(Vec::new()).unwrap();
        writer
            .append_faulty(b"ab", AppendFault::TornPayload { keep_bytes: 99 })
            .unwrap();
        // Full payload kept: frame actually verifies (a "torn" write that
        // lost nothing is a clean write).
        let scan = scan_segment(&writer.into_inner());
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.payloads, vec![b"ab".to_vec()]);
    }
}
