//! Property-based tests for the radio substrate: the analytic tail-energy
//! model, the offline timeline integrator, and the online state machine are
//! three independent implementations of the same physics and must agree.

use etrain_radio::{
    analytic_extra_energy_j, merge_busy_periods, merge_busy_periods_into, tail_energy_j, Radio,
    RadioParams, RrcState, Timeline, TimelinePool, Transmission,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = RadioParams> {
    (
        0.0f64..100.0, // idle
        0.0f64..800.0, // fach extra
        0.0f64..800.0, // dch extra over fach
        0.1f64..30.0,  // delta dch
        0.1f64..30.0,  // delta fach
    )
        .prop_map(|(idle, fach_extra, dch_extra, dd, df)| {
            RadioParams::builder()
                .idle_mw(idle)
                .fach_mw(idle + fach_extra)
                .dch_mw(idle + fach_extra + dch_extra)
                .delta_dch_s(dd)
                .delta_fach_s(df)
                .build()
                .expect("generated parameters are ordered and finite")
        })
}

fn arb_transmissions() -> impl Strategy<Value = Vec<Transmission>> {
    prop::collection::vec((0.0f64..3000.0, 0.01f64..20.0), 0..40).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(start, dur)| Transmission::new(start, dur))
            .collect()
    })
}

proptest! {
    /// E_tail is non-negative, monotone non-decreasing in the gap, and
    /// bounded by the full-tail energy.
    #[test]
    fn tail_energy_monotone_and_bounded(
        params in arb_params(),
        a in -10.0f64..100.0,
        b in -10.0f64..100.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let e_lo = tail_energy_j(&params, lo);
        let e_hi = tail_energy_j(&params, hi);
        prop_assert!(e_lo >= 0.0);
        prop_assert!(e_lo <= e_hi + 1e-9);
        prop_assert!(e_hi <= params.full_tail_energy_j() + 1e-9);
    }

    /// E_tail is Lipschitz-continuous with constant p̃_D (no jumps at the
    /// piecewise breakpoints).
    #[test]
    fn tail_energy_lipschitz(
        params in arb_params(),
        x in -5.0f64..100.0,
        dx in 0.0f64..5.0,
    ) {
        let e0 = tail_energy_j(&params, x);
        let e1 = tail_energy_j(&params, x + dx);
        let max_slope = params.dch_extra_mw() / 1000.0;
        prop_assert!((e1 - e0).abs() <= max_slope * dx + 1e-9);
    }

    /// The timeline integrator and the analytic gap model agree on every
    /// schedule, including overlapping transmissions.
    #[test]
    fn timeline_matches_analytic(
        params in arb_params(),
        txs in arb_transmissions(),
    ) {
        let horizon = 4000.0;
        let timeline = Timeline::from_transmissions(&params, &txs, horizon);
        let analytic = analytic_extra_energy_j(&params, &txs, horizon);
        prop_assert!(
            (timeline.extra_energy_j() - analytic).abs() < 1e-6,
            "timeline {} vs analytic {}", timeline.extra_energy_j(), analytic
        );
    }

    /// The online state machine agrees with the offline timeline when driven
    /// with a disjoint schedule.
    #[test]
    fn online_matches_timeline(
        params in arb_params(),
        raw in prop::collection::vec((0.1f64..60.0, 0.01f64..5.0), 0..30),
    ) {
        // Build a strictly ordered, disjoint schedule from (gap, duration)
        // pairs so the online API's monotone-time contract holds.
        let mut txs = Vec::with_capacity(raw.len());
        let mut t = 0.0;
        for (gap, dur) in raw {
            t += gap;
            txs.push(Transmission::new(t, dur));
            t += dur;
        }
        let horizon = t + 200.0;
        let mut radio = Radio::new(params.clone());
        for tx in &txs {
            radio.start_transmission(tx.start_s);
            radio.end_transmission(tx.end_s());
        }
        radio.advance_to(horizon);
        let timeline = Timeline::from_transmissions(&params, &txs, horizon);
        prop_assert!(
            (radio.extra_energy_j() - timeline.extra_energy_j()).abs() < 1e-6,
            "online {} vs timeline {}", radio.extra_energy_j(), timeline.extra_energy_j()
        );
    }

    /// Timeline segments always partition [0, horizon].
    #[test]
    fn timeline_partitions_horizon(
        params in arb_params(),
        txs in arb_transmissions(),
    ) {
        let horizon = 4000.0;
        let timeline = Timeline::from_transmissions(&params, &txs, horizon);
        let segs = timeline.segments();
        prop_assert!(!segs.is_empty());
        prop_assert!((segs[0].start_s - 0.0).abs() < 1e-9);
        prop_assert!((segs[segs.len() - 1].end_s - horizon).abs() < 1e-9);
        for w in segs.windows(2) {
            prop_assert!((w[0].end_s - w[1].start_s).abs() < 1e-9);
            prop_assert!(w[0].duration_s() > 0.0);
        }
    }

    /// Deferring-and-aggregating a set of *disjoint* transmissions onto one
    /// back-to-back burst never costs more energy than the spread-out
    /// schedule — the core premise of eTrain. (Disjointness matters: two
    /// overlapping intervals merge into less busy time than their serial
    /// aggregation, so the property is stated for non-overlapping
    /// schedules, which is what a single radio produces anyway.)
    #[test]
    fn aggregation_never_increases_tail_energy(
        params in arb_params(),
        gaps in prop::collection::vec(0.0f64..120.0, 1..15),
        dur in 0.01f64..2.0,
    ) {
        let horizon = 4000.0;
        // Build a disjoint scattered schedule: consecutive starts separated
        // by at least one duration.
        let mut scattered = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for gap in &gaps {
            scattered.push(Transmission::new(t, dur));
            t += dur + gap;
        }
        // Aggregate all packets back-to-back at the last start time.
        let anchor = scattered.last().expect("non-empty").start_s;
        let aggregated: Vec<Transmission> = (0..scattered.len())
            .map(|i| Transmission::new(anchor + i as f64 * dur, dur))
            .collect();
        let e_scattered = analytic_extra_energy_j(&params, &scattered, horizon);
        let e_aggregated = analytic_extra_energy_j(&params, &aggregated, horizon);
        prop_assert!(e_aggregated <= e_scattered + 1e-6,
            "aggregated {e_aggregated} > scattered {e_scattered}");
    }

    /// Time spent across the three states always sums to the horizon.
    #[test]
    fn time_in_state_sums_to_horizon(
        params in arb_params(),
        txs in arb_transmissions(),
    ) {
        let horizon = 4000.0;
        let timeline = Timeline::from_transmissions(&params, &txs, horizon);
        let total = timeline.time_in_state_s(RrcState::Idle)
            + timeline.time_in_state_s(RrcState::Fach)
            + timeline.time_in_state_s(RrcState::Dch);
        prop_assert!(
            (total - horizon).abs() < 1e-6,
            "state times sum to {total}, horizon {horizon}"
        );
    }

    /// Transmission::validate accepts exactly the finite, non-negative
    /// timings and rejects every negative or non-finite corruption.
    #[test]
    fn transmission_validate_rejects_bad_inputs(
        start in 0.0f64..3000.0,
        dur in 0.0f64..20.0,
        which in 0usize..5,
    ) {
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1e-9, -5.0][which];
        prop_assert!(Transmission::new(start, dur).validate().is_ok());
        prop_assert!(Transmission::new(bad, dur).validate().is_err());
        prop_assert!(Transmission::new(start, bad).validate().is_err());
        prop_assert!(Transmission::new(bad, bad).validate().is_err());
    }

    /// The independent audit accepts every timeline the constructor builds,
    /// for arbitrary (unsorted, overlapping) valid transmission sets.
    #[test]
    fn audit_accepts_constructed_timelines(
        params in arb_params(),
        txs in arb_transmissions(),
    ) {
        let timeline = Timeline::from_transmissions(&params, &txs, 4000.0);
        let audit = timeline.audit(&txs);
        prop_assert!(audit.is_ok(), "audit rejected a valid timeline: {:?}", audit);
    }

    /// Building into a reused pool is indistinguishable from fresh
    /// construction: segments, state times, audit verdicts, energy
    /// integrals and merged busy periods all match bit-for-bit across a
    /// sequence of schedules sharing one pool — including schedules that
    /// exercise the zero-length-segment (horizon-clipped, zero-gap) and
    /// adjacent-merge (back-to-back busy periods) edge cases.
    #[test]
    fn pooled_timeline_equals_fresh_construction(
        params in arb_params(),
        schedules in prop::collection::vec(arb_transmissions(), 1..5),
        horizon in 1.0f64..4000.0,
    ) {
        let mut pool = TimelinePool::new();
        let mut busy_buf = Vec::new();
        for mut txs in schedules {
            // Force the edge cases into every schedule: a transmission
            // clipped to zero length at the horizon, one entirely past it,
            // and a back-to-back pair whose tail segments must merge.
            txs.push(Transmission::new(horizon, 5.0));
            txs.push(Transmission::new(horizon + 1.0, 1.0));
            txs.push(Transmission::new(0.25, 0.25));
            txs.push(Transmission::new(0.5, 0.25));

            let fresh = Timeline::from_transmissions(&params, &txs, horizon);
            let pooled = pool.build(&params, &txs, horizon);
            prop_assert_eq!(&pooled, &fresh);
            prop_assert_eq!(pooled.segments(), fresh.segments());
            for state in [RrcState::Idle, RrcState::Fach, RrcState::Dch] {
                prop_assert_eq!(
                    pooled.time_in_state_s(state).to_bits(),
                    fresh.time_in_state_s(state).to_bits()
                );
            }
            prop_assert_eq!(pooled.time_in_states_s(), fresh.time_in_states_s());
            prop_assert_eq!(
                pooled.extra_energy_j().to_bits(),
                fresh.extra_energy_j().to_bits()
            );
            prop_assert_eq!(pooled.audit(&txs), fresh.audit(&txs));

            merge_busy_periods_into(&txs, horizon, &mut busy_buf);
            prop_assert_eq!(&busy_buf, &merge_busy_periods(&txs, horizon));

            pool.recycle(pooled);
        }
    }

    /// The linear-walk batch sampler agrees bit-for-bit with per-sample
    /// state lookups.
    #[test]
    fn sample_into_matches_per_sample_lookup(
        params in arb_params(),
        txs in arb_transmissions(),
        dt in 0.05f64..10.0,
    ) {
        let timeline = Timeline::from_transmissions(&params, &txs, 500.0);
        let mut buf = Vec::new();
        timeline.sample_into(dt, &mut buf);
        let trace = timeline.sample(dt);
        prop_assert_eq!(&buf, trace.samples_mw());
        for (i, &got) in buf.iter().enumerate() {
            let want = timeline.state_at(i as f64 * dt).power_mw(timeline.params());
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// state_at is consistent with the segment list.
    #[test]
    fn state_at_matches_segments(
        params in arb_params(),
        txs in arb_transmissions(),
        probe in 0.0f64..3999.0,
    ) {
        let timeline = Timeline::from_transmissions(&params, &txs, 4000.0);
        let by_lookup = timeline.state_at(probe);
        let by_scan = timeline
            .segments()
            .iter()
            .find(|seg| probe >= seg.start_s && probe < seg.end_s)
            .map(|seg| seg.state)
            .unwrap_or(RrcState::Idle);
        prop_assert_eq!(by_lookup, by_scan);
    }
}
