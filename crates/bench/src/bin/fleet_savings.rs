//! Fleet savings: paired baseline/eTrain population energy comparison.
//! See `experiments::fleet_savings`.

fn main() {
    etrain_bench::run_binary("fleet_savings");
}
