//! Offline capture analysis: find the heartbeat flows in a raw packet
//! capture — the paper's Wireshark methodology (Sec. II-B), automated.
//!
//! The analyzer groups packets by flow, keeps the phone-originated
//! ("outbound") packets of each flow, and classifies a flow as a heartbeat
//! flow when
//!
//! 1. it is **long-lived** (spans most of the capture),
//! 2. its outbound packets are **small** (keep-alives, not data), and
//! 3. its outbound timestamps are **periodic** — judged by the same
//!    [`CycleDetector`] the live monitor uses, cross-checked by epoch
//!    folding ([`estimate_period`]).

use etrain_trace::capture::{Capture, CapturedPacket, FlowKey, PacketDirection};

use crate::detect::{CycleDetector, DetectedPattern};
use crate::fold::estimate_period;

/// One flow the analyzer classified as carrying heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatFlow {
    /// The flow.
    pub flow: FlowKey,
    /// Detected cycle in seconds (median-gap estimate).
    pub cycle_s: f64,
    /// Independent epoch-folding estimate, if the folding analysis also
    /// found periodicity.
    pub folded_cycle_s: Option<f64>,
    /// Outbound keep-alives observed.
    pub beats: usize,
    /// Mean keep-alive size in bytes.
    pub mean_size_bytes: f64,
}

/// Analyzer thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentifyConfig {
    /// Minimum fraction of the capture a flow must span to count as
    /// long-lived.
    pub min_span_fraction: f64,
    /// Maximum mean outbound packet size for a keep-alive flow, in bytes.
    pub max_mean_size_bytes: f64,
    /// Minimum outbound packets needed to attempt detection.
    pub min_beats: usize,
}

impl Default for IdentifyConfig {
    /// `min_beats` defaults to 5: two gaps (three packets) can look even
    /// by pure chance, and sparse background traffic (periodic-ish DNS or
    /// NTP retries) produces exactly such flows; four consistent gaps is
    /// the minimum credible evidence of a keep-alive timer.
    fn default() -> Self {
        IdentifyConfig {
            min_span_fraction: 0.5,
            max_mean_size_bytes: 600.0,
            min_beats: 5,
        }
    }
}

/// Scans a capture and returns the flows classified as heartbeat flows,
/// sorted by flow key.
///
/// # Examples
///
/// ```
/// use etrain_hb::identify_heartbeat_flows;
/// use etrain_trace::capture::{synthesize_capture, CaptureConfig};
///
/// let capture = synthesize_capture(&CaptureConfig::default(), 7);
/// let flows = identify_heartbeat_flows(&capture, &Default::default());
/// // The paper trio: three heartbeat flows, cycles 300/270/240 s.
/// assert_eq!(flows.len(), 3);
/// let mut cycles: Vec<f64> = flows.iter().map(|f| f.cycle_s.round()).collect();
/// cycles.sort_by(f64::total_cmp);
/// assert_eq!(cycles, vec![240.0, 270.0, 300.0]);
/// ```
pub fn identify_heartbeat_flows(capture: &Capture, config: &IdentifyConfig) -> Vec<HeartbeatFlow> {
    let mut flows: std::collections::BTreeMap<FlowKey, Vec<&CapturedPacket>> =
        std::collections::BTreeMap::new();
    for packet in &capture.packets {
        if packet.direction == PacketDirection::Outbound {
            flows.entry(packet.flow).or_default().push(packet);
        }
    }

    let mut result = Vec::new();
    for (flow, packets) in flows {
        if packets.len() < config.min_beats {
            continue;
        }
        let first = packets.first().expect("non-empty").time_s;
        let last = packets.last().expect("non-empty").time_s;
        if (last - first) < config.min_span_fraction * capture.duration_s {
            continue;
        }
        let mean_size = packets.iter().map(|p| p.length as f64).sum::<f64>() / packets.len() as f64;
        if mean_size > config.max_mean_size_bytes {
            continue;
        }
        let mut detector = CycleDetector::new();
        for p in &packets {
            detector.observe(p.time_s);
        }
        let times: Vec<f64> = packets.iter().map(|p| p.time_s).collect();
        let folded = estimate_period(&times);
        let cycle_s = match detector.detect() {
            // Fixed-cycle claims need a second opinion: with only a few
            // observations, random background flows (DNS, NTP retries) can
            // produce coincidentally even gaps. Epoch folding must
            // corroborate the median-gap estimate within 10 %.
            DetectedPattern::Fixed { cycle_s, .. } => match folded {
                Some(f) if (f - cycle_s).abs() <= 0.1 * cycle_s => cycle_s,
                _ => continue,
            },
            // Adaptive cycles require monotone increasing plateaus, a
            // structure random traffic essentially never produces; folding
            // (a single-period method) cannot corroborate these.
            DetectedPattern::Adaptive {
                current_level_s, ..
            } => current_level_s,
            DetectedPattern::Unknown => continue,
        };
        result.push(HeartbeatFlow {
            flow,
            cycle_s,
            folded_cycle_s: folded,
            beats: packets.len(),
            mean_size_bytes: mean_size,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::capture::{synthesize_capture, synthesize_ios_capture, CaptureConfig};

    #[test]
    fn finds_exactly_the_ground_truth_flows() {
        let capture = synthesize_capture(&CaptureConfig::default(), 11);
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        let mut found: Vec<FlowKey> = flows.iter().map(|f| f.flow).collect();
        found.sort();
        let mut truth: Vec<FlowKey> = capture.truth.iter().map(|(f, _)| *f).collect();
        truth.sort();
        assert_eq!(found, truth, "precision and recall must both be 1");
    }

    #[test]
    fn cycles_match_ground_truth() {
        let capture = synthesize_capture(&CaptureConfig::default(), 12);
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        let mut cycles: Vec<f64> = flows.iter().map(|f| f.cycle_s.round()).collect();
        cycles.sort_by(f64::total_cmp);
        assert_eq!(cycles, vec![240.0, 270.0, 300.0]);
        // Both estimators agree per flow.
        for f in &flows {
            let folded = f.folded_cycle_s.expect("strictly periodic flow");
            assert!((folded - f.cycle_s).abs() < 3.0, "{f:?}");
        }
    }

    #[test]
    fn data_bursts_are_not_misclassified() {
        // A capture with aggressive foreground traffic and no trains.
        let capture = synthesize_capture(
            &CaptureConfig {
                trains: Vec::new(),
                burst_interarrival_s: 30.0,
                burst_len_max: 60,
                noise_rate: 0.1,
                duration_s: 3600.0,
            },
            13,
        );
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        assert!(flows.is_empty(), "false positives: {flows:?}");
    }

    #[test]
    fn ios_capture_yields_single_1800s_flow() {
        let capture = synthesize_ios_capture(8.0 * 3600.0, 14);
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        assert_eq!(flows.len(), 1);
        assert!((flows[0].cycle_s - 1800.0).abs() < 5.0);
    }

    #[test]
    fn short_lived_flows_are_skipped() {
        let mut capture = synthesize_capture(&CaptureConfig::default(), 15);
        // Truncate the capture's metadata so every flow looks short-lived.
        capture.duration_s *= 10.0;
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        assert!(flows.is_empty());
    }
}
