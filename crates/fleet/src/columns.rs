//! Struct-of-arrays storage for per-device fleet results.
//!
//! A million-device fleet cannot keep a million `RunReport`s — each one
//! owns strings, per-app vectors and health-event vectors, ~hundreds of
//! bytes plus several heap blocks. [`FleetColumns`] keeps only the six
//! per-device quantities fleet analysis actually consumes, one dense
//! `Vec` per column: ~37 bytes/device, zero per-device heap blocks, and
//! percentile selection can run directly over a column without gathering.
//!
//! Rows are always in **device order**. Shard workers fill one
//! `FleetColumns` each; the coordinator concatenates them in shard index
//! order, which (because shards partition the device range contiguously)
//! restores global device order — the canonical order every aggregate
//! fold runs in.

use etrain_obs::FleetTally;
use etrain_sim::RunReport;
use etrain_trace::user::Activeness;

/// Per-device results of a fleet run, stored column-wise in device order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetColumns {
    /// Each device's behavior class.
    pub class: Vec<Activeness>,
    /// Each device's radio energy above idle (transmission + tail), J.
    pub extra_energy_j: Vec<f64>,
    /// Each device's total energy (extra + idle baseline), J.
    pub total_energy_j: Vec<f64>,
    /// Each device's normalized delay, s.
    pub normalized_delay_s: Vec<f64>,
    /// Each device's completed cargo packets.
    pub packets_completed: Vec<u32>,
    /// Each device's unfinished cargo packets at the horizon.
    pub packets_unfinished: Vec<u32>,
    /// Each device's transmitted heartbeats.
    pub heartbeats_sent: Vec<u32>,
}

impl FleetColumns {
    /// An empty column store with room for `devices` rows per column.
    pub fn with_capacity(devices: usize) -> FleetColumns {
        FleetColumns {
            class: Vec::with_capacity(devices),
            extra_energy_j: Vec::with_capacity(devices),
            total_energy_j: Vec::with_capacity(devices),
            normalized_delay_s: Vec::with_capacity(devices),
            packets_completed: Vec::with_capacity(devices),
            packets_unfinished: Vec::with_capacity(devices),
            heartbeats_sent: Vec::with_capacity(devices),
        }
    }

    /// Number of device rows.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// True when no device has been pushed.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// Appends one device's row from its [`RunReport`].
    pub fn push_report(&mut self, class: Activeness, report: &RunReport) {
        self.class.push(class);
        self.extra_energy_j.push(report.extra_energy_j);
        self.total_energy_j.push(report.total_energy_j);
        self.normalized_delay_s.push(report.normalized_delay_s);
        self.packets_completed
            .push(u32::try_from(report.packets_completed).unwrap_or(u32::MAX));
        self.packets_unfinished
            .push(u32::try_from(report.packets_unfinished).unwrap_or(u32::MAX));
        self.heartbeats_sent
            .push(u32::try_from(report.heartbeats_sent).unwrap_or(u32::MAX));
    }

    /// Moves every row of `other` onto the end of `self`, preserving row
    /// order — the shard-reassembly primitive. `other` is left empty.
    pub fn append(&mut self, other: &mut FleetColumns) {
        self.class.append(&mut other.class);
        self.extra_energy_j.append(&mut other.extra_energy_j);
        self.total_energy_j.append(&mut other.total_energy_j);
        self.normalized_delay_s
            .append(&mut other.normalized_delay_s);
        self.packets_completed.append(&mut other.packets_completed);
        self.packets_unfinished
            .append(&mut other.packets_unfinished);
        self.heartbeats_sent.append(&mut other.heartbeats_sent);
    }

    /// Folds every row into one [`FleetTally`], in device order. This is
    /// the canonical fleet aggregate: run over the reassembled columns it
    /// is bit-identical for any worker count, because the fold order is
    /// the row order and the row order is device order.
    pub fn tally(&self) -> FleetTally {
        self.tally_where(|_| true)
    }

    /// Device-order fold over the rows of one behavior class.
    pub fn class_tally(&self, class: Activeness) -> FleetTally {
        self.tally_where(|c| c == class)
    }

    fn tally_where(&self, keep: impl Fn(Activeness) -> bool) -> FleetTally {
        let mut tally = FleetTally::empty();
        for i in 0..self.len() {
            if keep(self.class[i]) {
                tally.absorb_device(
                    self.extra_energy_j[i],
                    self.total_energy_j[i],
                    self.normalized_delay_s[i],
                    u64::from(self.packets_completed[i]),
                    u64::from(self.packets_unfinished[i]),
                    u64::from(self.heartbeats_sent[i]),
                );
            }
        }
        tally
    }

    /// The extra-energy samples of one class, gathered in device order —
    /// the input to percentile selection.
    pub fn class_extra_energies(&self, class: Activeness) -> Vec<f64> {
        (0..self.len())
            .filter(|&i| self.class[i] == class)
            .map(|i| self.extra_energy_j[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(extra: f64) -> RunReport {
        // A real (tiny, empty-workload) run as the template; the fields
        // under test are then pinned to known values.
        let mut report = etrain_sim::Scenario::paper_default()
            .duration_secs(60)
            .packets(Vec::new())
            .scheduler(etrain_sim::SchedulerKind::Baseline)
            .oracle(etrain_sim::OracleMode::Off)
            .obs(etrain_obs::ObsMode::Off)
            .seed(1)
            .run();
        report.extra_energy_j = extra;
        report.total_energy_j = extra + 10.0;
        report.normalized_delay_s = extra / 100.0;
        report.packets_completed = 5;
        report.packets_unfinished = 1;
        report.heartbeats_sent = 9;
        report
    }

    #[test]
    fn append_preserves_row_order() {
        let mut a = FleetColumns::with_capacity(2);
        a.push_report(Activeness::Active, &row(1.0));
        a.push_report(Activeness::Moderate, &row(2.0));
        let mut b = FleetColumns::with_capacity(1);
        b.push_report(Activeness::Inactive, &row(3.0));
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert_eq!(a.extra_energy_j, vec![1.0, 2.0, 3.0]);
        assert_eq!(
            a.class,
            vec![
                Activeness::Active,
                Activeness::Moderate,
                Activeness::Inactive
            ]
        );
    }

    #[test]
    fn class_tallies_partition_the_fleet_tally() {
        let mut c = FleetColumns::with_capacity(4);
        c.push_report(Activeness::Active, &row(1.0));
        c.push_report(Activeness::Inactive, &row(2.0));
        c.push_report(Activeness::Active, &row(4.0));
        c.push_report(Activeness::Moderate, &row(8.0));
        let fleet = c.tally();
        assert_eq!(fleet.devices, 4);
        let by_class: u64 = Activeness::all()
            .iter()
            .map(|&cl| c.class_tally(cl).devices)
            .sum();
        assert_eq!(by_class, fleet.devices);
        assert_eq!(c.class_tally(Activeness::Active).extra_energy_j, 5.0);
        assert_eq!(c.class_extra_energies(Activeness::Active), vec![1.0, 4.0]);
    }
}
