//! Reimplementation of **PerES** [15], one of the paper's two comparison
//! algorithms (Sec. VI-A "Benchmark").
//!
//! The eTrain paper characterizes PerES as: Lyapunov-optimization based,
//! deadline-aware, operating on 1-second slots, with a *dynamic* tradeoff
//! parameter `V` that converges according to a user performance cost bound
//! `Ω` — and critically, relying on accurate estimation of instantaneous
//! wireless bandwidth to time transmissions when the channel is good.
//!
//! The reimplementation follows that characterization with a per-app
//! queue-backlog threshold weighted by the predicted channel quality: app
//! `i` flushes its pending request queue when
//!
//! ```text
//! Q_i(t) bytes  ≥  V(t) · B_ref / B̂(t)
//! ```
//!
//! (`B_ref` = running mean of the bandwidth estimates, so a
//! better-than-average predicted channel lowers the threshold), plus a hard
//! deadline guard: packets about to violate their profile deadline are
//! released unconditionally — this is what makes PerES deadline-aware where
//! eTime is not. `V(t)` adapts multiplicatively toward the cost bound `Ω`:
//! if the time-averaged queue delay-cost exceeds `Ω`, `V` decreases
//! (favoring performance); otherwise it increases (favoring energy).
//!
//! Because each app maintains and flushes its own queue on 1-second slots,
//! PerES batches less aggressively than eTime's global 60-second decision —
//! reproducing the paper's finding that eTime outperforms PerES on energy —
//! while its deadline guard keeps its violation ratio near zero.
//! `B̂(t)` is the previous slot's bandwidth, so PerES mistimes transmissions
//! whenever the channel decorrelates quickly — the weakness the eTrain
//! paper exploits in its comparison.

use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

use crate::api::{Scheduler, SchedulerError, SlotContext};
use crate::queue::{AppProfile, WaitingQueues};

/// Configuration of [`PerEsScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerEsConfig {
    /// The user performance cost bound Ω the dynamic `V` converges to.
    pub omega: f64,
    /// Initial value of the tradeoff parameter `V`, in bytes of per-app
    /// backlog required to flush on an average channel.
    pub v_init_bytes: f64,
    /// Lower clamp for `V`, in bytes.
    pub v_min_bytes: f64,
    /// Upper clamp for `V`, in bytes.
    pub v_max_bytes: f64,
    /// Seconds between `V` adaptation steps.
    pub adapt_period_s: f64,
    /// Slot length in seconds (the paper drives PerES at 1 s).
    pub slot_s: f64,
}

impl Default for PerEsConfig {
    fn default() -> Self {
        PerEsConfig {
            omega: 0.5,
            v_init_bytes: 20_000.0,
            v_min_bytes: 500.0,
            v_max_bytes: 2_000_000.0,
            adapt_period_s: 60.0,
            slot_s: 1.0,
        }
    }
}

/// The PerES scheduler (see the module-level documentation above).
#[derive(Debug)]
pub struct PerEsScheduler {
    config: PerEsConfig,
    queues: WaitingQueues,
    v_bytes: f64,
    cost_accum: f64,
    cost_slots: u64,
    last_adapt_s: f64,
    bw_sum: f64,
    bw_count: u64,
}

impl PerEsScheduler {
    /// Creates a PerES scheduler for the registered app profiles.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (non-positive `v_init_bytes`,
    /// `slot_s` or `adapt_period_s`, or `v_min_bytes > v_max_bytes`).
    pub fn new(config: PerEsConfig, profiles: Vec<AppProfile>) -> Self {
        assert!(config.v_init_bytes > 0.0, "v_init_bytes must be positive");
        assert!(config.slot_s > 0.0, "slot length must be positive");
        assert!(config.adapt_period_s > 0.0, "adapt period must be positive");
        assert!(
            config.v_min_bytes <= config.v_max_bytes,
            "v_min_bytes must not exceed v_max_bytes"
        );
        PerEsScheduler {
            v_bytes: config
                .v_init_bytes
                .clamp(config.v_min_bytes, config.v_max_bytes),
            config,
            queues: WaitingQueues::new(profiles),
            cost_accum: 0.0,
            cost_slots: 0,
            last_adapt_s: 0.0,
            bw_sum: 0.0,
            bw_count: 0,
        }
    }

    /// The current value of the dynamic tradeoff parameter `V`, in bytes.
    pub fn v_bytes(&self) -> f64 {
        self.v_bytes
    }

    fn adapt_v(&mut self, now_s: f64) {
        if now_s - self.last_adapt_s < self.config.adapt_period_s || self.cost_slots == 0 {
            return;
        }
        let avg_cost = self.cost_accum / self.cost_slots as f64;
        if avg_cost > self.config.omega {
            self.v_bytes *= 0.8; // above the bound: transmit more eagerly
        } else {
            self.v_bytes *= 1.25; // under the bound: spend the slack on energy
        }
        self.v_bytes = self
            .v_bytes
            .clamp(self.config.v_min_bytes, self.config.v_max_bytes);
        self.cost_accum = 0.0;
        self.cost_slots = 0;
        self.last_adapt_s = now_s;
    }
}

impl Scheduler for PerEsScheduler {
    fn name(&self) -> &'static str {
        "PerES"
    }

    fn on_arrival(&mut self, packet: Packet, _now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        self.queues.push(packet)?;
        Ok(Vec::new())
    }

    fn on_slot(&mut self, ctx: &SlotContext) -> Vec<Packet> {
        let now = ctx.now_s;
        self.cost_accum += self.queues.total_cost(now);
        self.cost_slots += 1;
        self.adapt_v(now);

        let bw = ctx.predicted_bandwidth_bps.max(1.0);
        self.bw_sum += bw;
        self.bw_count += 1;
        let b_ref = self.bw_sum / self.bw_count as f64;

        // Deadline guard first: PerES is deadline-aware.
        let mut released = self.queues.drain_deadline_critical(now, self.config.slot_s);

        let threshold_bytes = self.v_bytes * b_ref / bw;
        let app_count = self.queues.app_count();
        for i in 0..app_count {
            let app = CargoAppId(i);
            let backlog: u64 = self
                .queues
                .app_queue(app)
                .iter()
                .map(|p| p.size_bytes)
                .sum();
            if backlog as f64 >= threshold_bytes && backlog > 0 {
                let ids: Vec<u64> = self.queues.app_queue(app).iter().map(|p| p.id).collect();
                for id in ids {
                    released.push(self.queues.remove(app, id).expect("flushed packet pending"));
                }
            }
        }
        released
    }

    fn slot_s(&self) -> f64 {
        self.config.slot_s
    }

    fn pending(&self) -> usize {
        self.queues.len()
    }

    fn pending_bytes(&self) -> u64 {
        self.queues.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(id: u64, app: usize, arrival_s: f64, size: u64) -> Packet {
        Packet {
            id,
            app: CargoAppId(app),
            arrival_s,
            size_bytes: size,
        }
    }

    fn ctx(now_s: f64, bw: f64) -> SlotContext {
        SlotContext {
            now_s,
            heartbeat_departing: false,
            predicted_bandwidth_bps: bw,
            trains_alive: true,
        }
    }

    fn scheduler(omega: f64, v_init_bytes: f64) -> PerEsScheduler {
        PerEsScheduler::new(
            PerEsConfig {
                omega,
                v_init_bytes,
                ..PerEsConfig::default()
            },
            AppProfile::paper_trio(30.0),
        )
    }

    #[test]
    fn small_backlog_is_deferred() {
        let mut s = scheduler(0.5, 100_000.0);
        s.on_arrival(packet(0, 1, 0.0, 2_000), 0.0).unwrap();
        assert!(s.on_slot(&ctx(1.0, 500_000.0)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn app_backlog_above_v_flushes_that_app_only() {
        let mut s = scheduler(0.5, 10_000.0);
        for i in 0..6 {
            s.on_arrival(packet(i, 1, 0.0, 2_000), 0.0).unwrap(); // 12 kB Weibo
        }
        s.on_arrival(packet(10, 0, 0.0, 2_000), 0.0).unwrap(); // 2 kB Mail
        let released = s.on_slot(&ctx(1.0, 500_000.0));
        assert_eq!(released.len(), 6);
        assert!(released.iter().all(|p| p.app == CargoAppId(1)));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn deadline_violations_release_unconditionally() {
        let mut s = scheduler(0.5, f64::MAX / 1e9);
        s.on_arrival(packet(0, 1, 0.0, 100), 0.0).unwrap();
        // Just before the 30 s Weibo deadline.
        let released = s.on_slot(&ctx(29.5, 1_000.0));
        assert_eq!(released.len(), 1, "deadline guard must fire");
    }

    #[test]
    fn better_predicted_bandwidth_lowers_threshold() {
        let mk = || {
            let mut s = scheduler(0.5, 10_000.0);
            s.on_arrival(packet(0, 2, 0.0, 6_000), 0.0).unwrap();
            // Seed the reference bandwidth with average slots.
            s.bw_sum = 500_000.0 * 5.0;
            s.bw_count = 5;
            s
        };
        // 6 kB < 10 kB on an average channel: wait.
        assert!(mk().on_slot(&ctx(1.0, 500_000.0)).is_empty());
        // On a 2× channel the threshold halves to 5 kB: flush.
        assert_eq!(mk().on_slot(&ctx(1.0, 1_000_000.0)).len(), 1);
    }

    #[test]
    fn v_adapts_down_under_cost_pressure() {
        let mut s = scheduler(0.01, 100_000.0);
        for i in 0..5 {
            s.on_arrival(packet(i, 1, 0.0, 100), 0.0).unwrap();
        }
        let v0 = s.v_bytes();
        for slot in 0..200 {
            let _ = s.on_slot(&ctx(slot as f64, 1_000.0));
            if s.pending() == 0 {
                s.on_arrival(packet(1000 + slot, 1, slot as f64, 100), slot as f64)
                    .unwrap();
            }
        }
        assert!(s.v_bytes() < v0, "V should fall: {} -> {}", v0, s.v_bytes());
    }

    #[test]
    fn v_rises_when_under_bound() {
        let mut s = scheduler(1_000.0, 10_000.0);
        let v0 = s.v_bytes();
        for slot in 0..200 {
            let _ = s.on_slot(&ctx(slot as f64, 500_000.0));
        }
        assert!(s.v_bytes() > v0, "V should rise: {} -> {}", v0, s.v_bytes());
    }

    #[test]
    fn conservation_no_loss_no_duplication() {
        let mut s = scheduler(0.5, 20_000.0);
        for i in 0..30 {
            s.on_arrival(packet(i, (i % 3) as usize, i as f64, 2_000), i as f64)
                .unwrap();
        }
        let mut out = Vec::new();
        for slot in 30..400 {
            out.extend(s.on_slot(&ctx(slot as f64, 500_000.0)));
        }
        let mut ids: Vec<u64> = out.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len(), "no duplicates");
        assert_eq!(out.len() + s.pending(), 30, "no losses");
    }

    #[test]
    fn flushes_preserve_fifo_order_within_app() {
        let mut s = scheduler(0.5, 3_000.0);
        s.on_arrival(packet(0, 1, 0.0, 2_000), 0.0).unwrap();
        s.on_arrival(packet(1, 1, 1.0, 2_000), 1.0).unwrap();
        let released = s.on_slot(&ctx(2.0, 500_000.0));
        let ids: Vec<u64> = released.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
