//! Reimplementation of **eTime** [16], the paper's second comparison
//! algorithm (Sec. VI-A "Benchmark").
//!
//! The eTrain paper characterizes eTime as: Lyapunov-based, *not*
//! deadline-aware, driven on 60-second slots with a static tradeoff
//! parameter `V`, and timing transmissions to moments when the (predicted)
//! channel is good. Multi-interface selection from the original paper is
//! restricted to the cellular interface, as the eTrain paper does.
//!
//! The reimplementation makes one all-or-nothing decision per slot: the
//! whole backlog is flushed when the queue pressure outweighs the V-weighted
//! relative energy price of the current channel,
//!
//! ```text
//! transmit  ⇔  Q_bytes(t) ≥ V · B_ref / B̂(t)
//! ```
//!
//! where `B_ref` is a running mean of the observed bandwidth estimates
//! (so the threshold is `V` bytes on an average channel, smaller on a good
//! channel, larger on a bad one). Sweeping `V` traces the energy–delay
//! curve of Fig. 8(a).

use etrain_trace::packets::Packet;
use serde::{Deserialize, Serialize};

use crate::api::{Scheduler, SchedulerError, SlotContext};
use crate::queue::{AppProfile, WaitingQueues};

/// Configuration of [`ETimeScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ETimeConfig {
    /// The static tradeoff parameter `V` in bytes: the backlog needed to
    /// trigger a flush on an average channel.
    pub v_bytes: f64,
    /// Slot length in seconds (the paper drives eTime at 60 s).
    pub slot_s: f64,
}

impl Default for ETimeConfig {
    fn default() -> Self {
        ETimeConfig {
            v_bytes: 50_000.0,
            slot_s: 60.0,
        }
    }
}

/// The eTime scheduler (see the module-level documentation above).
#[derive(Debug)]
pub struct ETimeScheduler {
    config: ETimeConfig,
    queues: WaitingQueues,
    bw_sum: f64,
    bw_count: u64,
}

impl ETimeScheduler {
    /// Creates an eTime scheduler for the registered app profiles.
    ///
    /// # Panics
    ///
    /// Panics if `v_bytes` is negative or `slot_s` is not strictly
    /// positive.
    pub fn new(config: ETimeConfig, profiles: Vec<AppProfile>) -> Self {
        assert!(config.v_bytes >= 0.0, "v_bytes must be non-negative");
        assert!(config.slot_s > 0.0, "slot length must be positive");
        ETimeScheduler {
            config,
            queues: WaitingQueues::new(profiles),
            bw_sum: 0.0,
            bw_count: 0,
        }
    }

    /// The running mean of observed bandwidth estimates, in bits per second
    /// (`None` before the first slot).
    pub fn reference_bandwidth_bps(&self) -> Option<f64> {
        if self.bw_count == 0 {
            None
        } else {
            Some(self.bw_sum / self.bw_count as f64)
        }
    }
}

impl Scheduler for ETimeScheduler {
    fn name(&self) -> &'static str {
        "eTime"
    }

    fn on_arrival(&mut self, packet: Packet, _now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        self.queues.push(packet)?;
        Ok(Vec::new())
    }

    fn on_slot(&mut self, ctx: &SlotContext) -> Vec<Packet> {
        let bw = ctx.predicted_bandwidth_bps.max(1.0);
        self.bw_sum += bw;
        self.bw_count += 1;
        let b_ref = self.bw_sum / self.bw_count as f64;

        let backlog = self.queues.total_bytes() as f64;
        if backlog <= 0.0 {
            return Vec::new();
        }
        let threshold = self.config.v_bytes * b_ref / bw;
        if backlog >= threshold {
            self.queues.drain_all()
        } else {
            Vec::new()
        }
    }

    fn slot_s(&self) -> f64 {
        self.config.slot_s
    }

    fn pending(&self) -> usize {
        self.queues.len()
    }

    fn pending_bytes(&self) -> u64 {
        self.queues.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::CargoAppId;

    fn packet(id: u64, size: u64) -> Packet {
        Packet {
            id,
            app: CargoAppId(1),
            arrival_s: 0.0,
            size_bytes: size,
        }
    }

    fn ctx(now_s: f64, bw: f64) -> SlotContext {
        SlotContext {
            now_s,
            heartbeat_departing: false,
            predicted_bandwidth_bps: bw,
            trains_alive: true,
        }
    }

    fn scheduler(v_bytes: f64) -> ETimeScheduler {
        ETimeScheduler::new(
            ETimeConfig {
                v_bytes,
                slot_s: 60.0,
            },
            AppProfile::paper_trio(30.0),
        )
    }

    #[test]
    fn small_backlog_waits() {
        let mut s = scheduler(100_000.0);
        s.on_arrival(packet(0, 2_000), 0.0).unwrap();
        assert!(s.on_slot(&ctx(60.0, 500_000.0)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn large_backlog_flushes_all() {
        let mut s = scheduler(100_000.0);
        for i in 0..3 {
            s.on_arrival(packet(i, 50_000), 0.0).unwrap();
        }
        let released = s.on_slot(&ctx(60.0, 500_000.0));
        assert_eq!(released.len(), 3);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn good_channel_lowers_the_threshold() {
        // 40 kB backlog, V = 100 kB. On an average channel it waits; when
        // the predicted channel is 4× the average, the threshold drops to
        // 25 kB and it flushes.
        let mut s = scheduler(100_000.0);
        s.on_arrival(packet(0, 40_000), 0.0).unwrap();
        // Build the reference mean with a few average slots.
        for slot in 1..=5 {
            assert!(s.on_slot(&ctx(slot as f64 * 60.0, 500_000.0)).is_empty());
        }
        let released = s.on_slot(&ctx(360.0, 2_000_000.0));
        assert_eq!(released.len(), 1);
    }

    #[test]
    fn bad_channel_raises_the_threshold() {
        let mut s = scheduler(50_000.0);
        s.on_arrival(packet(0, 60_000), 0.0).unwrap();
        for slot in 1..=5 {
            let _ = s.on_slot(&ctx(slot as f64 * 60.0, 500_000.0));
        }
        assert_eq!(s.pending(), 0, "60 kB ≥ 50 kB threshold on average channel");

        let mut s = scheduler(50_000.0);
        s.on_arrival(packet(0, 60_000), 0.0).unwrap();
        // Seed the reference with average slots but packet still queued?
        // Threshold on a 10× worse channel becomes 500 kB — it waits.
        s.bw_sum = 500_000.0 * 5.0;
        s.bw_count = 5;
        assert!(s.on_slot(&ctx(60.0, 50_000.0)).is_empty());
    }

    #[test]
    fn not_deadline_aware() {
        // A packet far past its deadline still waits if the backlog is
        // small — the behaviour the paper criticizes.
        let mut s = scheduler(1_000_000.0);
        s.on_arrival(packet(0, 500), 0.0).unwrap();
        assert!(s.on_slot(&ctx(6_000.0, 500_000.0)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn zero_v_transmits_everything_each_slot() {
        let mut s = scheduler(0.0);
        s.on_arrival(packet(0, 10), 0.0).unwrap();
        assert_eq!(s.on_slot(&ctx(60.0, 500_000.0)).len(), 1);
    }

    #[test]
    fn reference_bandwidth_tracks_mean() {
        let mut s = scheduler(1e12);
        assert_eq!(s.reference_bandwidth_bps(), None);
        let _ = s.on_slot(&ctx(60.0, 100.0));
        let _ = s.on_slot(&ctx(120.0, 300.0));
        assert_eq!(s.reference_bandwidth_bps(), Some(200.0));
    }

    #[test]
    fn slot_length_is_sixty_seconds() {
        assert_eq!(scheduler(1.0).slot_s(), 60.0);
    }
}
