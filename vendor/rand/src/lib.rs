//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! `rngs::StdRng` is a xoshiro256++ generator seeded through splitmix64.
//! The workspace only relies on *deterministic reproducibility for a given
//! seed within this codebase*, never on byte-compatibility with upstream
//! `rand` streams, so a small self-contained generator is sufficient.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (f64 samples uniformly over `[0, 1)`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `u64` in `[0, bound)` via rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// The largest float strictly below `x` (for half-open range clamping).
fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// Range types `Rng::gen_range` accepts. The parameter `T` is the output
/// type, so the sampled type is inferred from the call site exactly as
/// with real rand (`let x: u64 = rng.gen_range(4..14);`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range: empty range {}..{}",
            self.start,
            self.end
        );
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            next_down(self.end)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range {start}..={end}");
        let u = f64::sample_standard(rng);
        (start + u * (end - start)).clamp(start, end)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range {start}..={end}");
                let width = end.wrapping_sub(start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, width + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's standard domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{uniform_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
            let w = rng.gen_range(10u16..=12);
            assert!((10..=12).contains(&w));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
        assert!(seen.iter().all(|&b| b), "uniform draw missed a bucket");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice sorted");
    }
}
