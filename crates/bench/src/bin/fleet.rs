//! Fleet driver: runs the throughput fleet and the paired savings fleets
//! in one invocation and writes the machine-readable `BENCH_fleet.json`.
//!
//! ```text
//! cargo run -p etrain-bench --release --bin fleet            # full: 10⁶ devices
//! cargo run -p etrain-bench --release --bin fleet -- --quick # CI tier: 10⁵
//! cargo run -p etrain-bench --release --bin fleet -- --out other.json
//! ```
//!
//! `ETRAIN_FLEET_SIZE` overrides both tiers' device counts (the savings
//! fleets run at 1/100 of the throughput fleet, min 100 devices, so the
//! paired comparison stays cheap next to the scale headline).

use etrain_bench::experiments::fleet_savings::APP_USES_PER_DAY;
use etrain_fleet::{run_fleet, FleetConfig, FleetSnapshot};
use etrain_sim::SchedulerKind;
use serde::Serialize;

/// The paired-savings block of `BENCH_fleet.json`.
#[derive(Serialize)]
struct SavingsSummary {
    saving_pct: f64,
    mean_saved_j_per_use: f64,
    app_uses_per_day: f64,
    saved_mj_per_million_user_day: f64,
    baseline: FleetSnapshot,
    etrain: FleetSnapshot,
}

/// The whole `BENCH_fleet.json` document.
#[derive(Serialize)]
struct FleetBench {
    quick: bool,
    /// The headline: devices simulated per wall-clock second.
    devices_per_s: f64,
    throughput: FleetSnapshot,
    savings: SavingsSummary,
}

fn main() {
    etrain_bench::validate_env_knobs();
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone())
        .unwrap_or_else(|| "BENCH_fleet.json".to_owned());

    let override_devices = etrain_fleet::try_fleet_size_from_env(
        std::env::var(etrain_fleet::FLEET_SIZE_ENV).ok().as_deref(),
    )
    .expect("validated above");
    let devices = override_devices.unwrap_or(if quick { 100_000 } else { 1_000_000 });

    eprintln!("# fleet throughput: {devices} devices ...");
    let throughput = run_fleet(&FleetConfig::paper_default(devices).seed(1));
    eprintln!(
        "# {} devices in {:.2} s -> {:.0} devices/s ({} shards x {} workers)",
        throughput.fleet.devices,
        throughput.wall_s,
        throughput.devices_per_s,
        throughput.shards,
        throughput.workers
    );

    let savings_devices = (devices / 100).max(100);
    eprintln!("# fleet savings: paired baseline/eTrain over {savings_devices} devices ...");
    let base_config = FleetConfig::paper_default(savings_devices).seed(42);
    let baseline = run_fleet(&base_config.clone().scheduler(SchedulerKind::Baseline));
    let etrain = run_fleet(&base_config);
    let saved = baseline.fleet.mean_extra_j() - etrain.fleet.mean_extra_j();
    let saving_pct = if baseline.fleet.mean_extra_j() > 0.0 {
        saved / baseline.fleet.mean_extra_j() * 100.0
    } else {
        0.0
    };
    eprintln!(
        "# saving {saving_pct:.1}% ({saved:.1} J/use; {:.1} MJ per million user-days)",
        saved * APP_USES_PER_DAY
    );

    let bench = FleetBench {
        quick,
        devices_per_s: throughput.devices_per_s,
        throughput: throughput.snapshot(),
        savings: SavingsSummary {
            saving_pct,
            mean_saved_j_per_use: saved,
            app_uses_per_day: APP_USES_PER_DAY,
            saved_mj_per_million_user_day: saved * APP_USES_PER_DAY,
            baseline: baseline.snapshot(),
            etrain: etrain.snapshot(),
        },
    };
    let json = serde_json::to_string_pretty(&bench).expect("fleet bench serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
