//! Fleet throughput: devices simulated per wall-clock second.
//! See `experiments::fleet_throughput`.

fn main() {
    etrain_bench::run_binary("fleet_throughput");
}
