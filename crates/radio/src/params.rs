use serde::{Deserialize, Serialize};

use crate::error::RadioError;

/// Validated parameter set describing a cellular radio's power states.
///
/// All powers are absolute device powers in milliwatts; the paper works with
/// powers *relative* to idle (p̃ = p − p_idle), which are exposed through
/// [`RadioParams::dch_extra_mw`] and [`RadioParams::fach_extra_mw`].
///
/// The default parameter sets reproduce the paper's measurements:
///
/// - [`RadioParams::galaxy_s4_3g`] — Fig. 4 / Sec. VI-A: p̃_D = 700 mW,
///   p̃_F = 450 mW, δ_D = 10 s, δ_F = 7.5 s;
/// - [`RadioParams::wifi_like`] — a short-tail profile used for contrast in
///   ablations (WiFi tails are an order of magnitude shorter).
///
/// # Examples
///
/// ```
/// use etrain_radio::RadioParams;
///
/// let p = RadioParams::galaxy_s4_3g();
/// assert_eq!(p.tail_time_s(), 17.5);
/// // One full tail wastes about 10.4 J, matching the paper's ~10.91 J.
/// assert!((p.full_tail_energy_j() - 10.375).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioParams {
    idle_mw: f64,
    dch_mw: f64,
    fach_mw: f64,
    delta_dch_s: f64,
    delta_fach_s: f64,
    promotion_idle_to_dch_s: f64,
    promotion_fach_to_dch_s: f64,
}

impl RadioParams {
    /// The paper's Samsung Galaxy S4 / TD-SCDMA 3G parameters (Fig. 4 and
    /// the "other simulation settings" of Sec. VI-A).
    ///
    /// Idle power is set to 20 mW, consistent with the paper's Fig. 1(a)
    /// where heartbeats account for ≈ 87 % of a 4-hour standby budget.
    pub fn galaxy_s4_3g() -> Self {
        RadioParams {
            idle_mw: 20.0,
            dch_mw: 720.0,
            fach_mw: 470.0,
            delta_dch_s: 10.0,
            delta_fach_s: 7.5,
            promotion_idle_to_dch_s: 0.0,
            promotion_fach_to_dch_s: 0.0,
        }
    }

    /// A short-tail profile (WiFi-like) used by ablation experiments to show
    /// how eTrain's benefit shrinks when tails are cheap.
    pub fn wifi_like() -> Self {
        RadioParams {
            idle_mw: 20.0,
            dch_mw: 420.0,
            fach_mw: 120.0,
            delta_dch_s: 0.5,
            delta_fach_s: 0.5,
            promotion_idle_to_dch_s: 0.0,
            promotion_fach_to_dch_s: 0.0,
        }
    }

    /// An LTE-style profile approximating DRX (Discontinuous Reception)
    /// with the model's two tail phases: ≈ 1 s of continuous reception at
    /// high power after a transfer, then ≈ 10 s of short/long DRX cycling
    /// at a low duty-cycled average before RRC-idle. LTE was the paper's
    /// stated future platform; this preset lets the experiments ask
    /// whether heartbeat piggybacking still pays off there.
    pub fn lte_drx() -> Self {
        RadioParams {
            idle_mw: 15.0,
            dch_mw: 1_015.0,    // ≈ 1 W while active/continuous reception
            fach_mw: 135.0,     // DRX duty-cycled average
            delta_dch_s: 1.0,   // continuous-reception inactivity timer
            delta_fach_s: 10.0, // DRX phase before RRC-idle
            promotion_idle_to_dch_s: 0.0,
            promotion_fach_to_dch_s: 0.0,
        }
    }

    /// Starts building a custom parameter set from the Galaxy S4 defaults.
    pub fn builder() -> RadioParamsBuilder {
        RadioParamsBuilder::new()
    }

    /// Absolute idle (baseline) power in milliwatts.
    pub fn idle_mw(&self) -> f64 {
        self.idle_mw
    }

    /// Absolute DCH power in milliwatts.
    pub fn dch_mw(&self) -> f64 {
        self.dch_mw
    }

    /// Absolute FACH power in milliwatts.
    pub fn fach_mw(&self) -> f64 {
        self.fach_mw
    }

    /// DCH power above idle (the paper's p̃_D) in milliwatts.
    pub fn dch_extra_mw(&self) -> f64 {
        self.dch_mw - self.idle_mw
    }

    /// FACH power above idle (the paper's p̃_F) in milliwatts.
    pub fn fach_extra_mw(&self) -> f64 {
        self.fach_mw - self.idle_mw
    }

    /// Time the radio lingers in DCH after a transmission ends (δ_D), in
    /// seconds.
    pub fn delta_dch_s(&self) -> f64 {
        self.delta_dch_s
    }

    /// Time the radio lingers in FACH before demoting to IDLE (δ_F), in
    /// seconds.
    pub fn delta_fach_s(&self) -> f64 {
        self.delta_fach_s
    }

    /// Total tail time `T_tail = δ_D + δ_F` in seconds.
    pub fn tail_time_s(&self) -> f64 {
        self.delta_dch_s + self.delta_fach_s
    }

    /// Extra energy (above idle) of one complete, un-reused tail, in joules.
    pub fn full_tail_energy_j(&self) -> f64 {
        (self.dch_extra_mw() * self.delta_dch_s + self.fach_extra_mw() * self.delta_fach_s) / 1000.0
    }

    /// Promotion latency from IDLE to DCH in seconds (0 in the paper's
    /// energy model; configurable for ablations).
    pub fn promotion_idle_to_dch_s(&self) -> f64 {
        self.promotion_idle_to_dch_s
    }

    /// Promotion latency from FACH to DCH in seconds.
    pub fn promotion_fach_to_dch_s(&self) -> f64 {
        self.promotion_fach_to_dch_s
    }
}

impl Default for RadioParams {
    fn default() -> Self {
        RadioParams::galaxy_s4_3g()
    }
}

/// Builder for [`RadioParams`], seeded with the Galaxy S4 3G defaults.
///
/// # Examples
///
/// ```
/// use etrain_radio::RadioParams;
///
/// let p = RadioParams::builder()
///     .dch_mw(800.0)
///     .delta_dch_s(6.0)
///     .build()?;
/// assert_eq!(p.delta_dch_s(), 6.0);
/// # Ok::<(), etrain_radio::RadioError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RadioParamsBuilder {
    params: RadioParams,
}

impl RadioParamsBuilder {
    /// Creates a builder seeded with [`RadioParams::galaxy_s4_3g`].
    pub fn new() -> Self {
        RadioParamsBuilder {
            params: RadioParams::galaxy_s4_3g(),
        }
    }

    /// Sets the absolute idle power in milliwatts.
    pub fn idle_mw(&mut self, value: f64) -> &mut Self {
        self.params.idle_mw = value;
        self
    }

    /// Sets the absolute DCH power in milliwatts.
    pub fn dch_mw(&mut self, value: f64) -> &mut Self {
        self.params.dch_mw = value;
        self
    }

    /// Sets the absolute FACH power in milliwatts.
    pub fn fach_mw(&mut self, value: f64) -> &mut Self {
        self.params.fach_mw = value;
        self
    }

    /// Sets the DCH lingering time δ_D in seconds.
    pub fn delta_dch_s(&mut self, value: f64) -> &mut Self {
        self.params.delta_dch_s = value;
        self
    }

    /// Sets the FACH lingering time δ_F in seconds.
    pub fn delta_fach_s(&mut self, value: f64) -> &mut Self {
        self.params.delta_fach_s = value;
        self
    }

    /// Sets the IDLE→DCH promotion latency in seconds.
    pub fn promotion_idle_to_dch_s(&mut self, value: f64) -> &mut Self {
        self.params.promotion_idle_to_dch_s = value;
        self
    }

    /// Sets the FACH→DCH promotion latency in seconds.
    pub fn promotion_fach_to_dch_s(&mut self, value: f64) -> &mut Self {
        self.params.promotion_fach_to_dch_s = value;
        self
    }

    /// Validates and produces the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`RadioError`] if any power or duration is negative or not
    /// finite, or if the ordering `idle <= fach <= dch` does not hold.
    pub fn build(&self) -> Result<RadioParams, RadioError> {
        let p = &self.params;
        for (name, value) in [
            ("idle_mw", p.idle_mw),
            ("dch_mw", p.dch_mw),
            ("fach_mw", p.fach_mw),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(RadioError::InvalidPower {
                    name,
                    value_mw: value,
                });
            }
        }
        for (name, value) in [
            ("delta_dch_s", p.delta_dch_s),
            ("delta_fach_s", p.delta_fach_s),
            ("promotion_idle_to_dch_s", p.promotion_idle_to_dch_s),
            ("promotion_fach_to_dch_s", p.promotion_fach_to_dch_s),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(RadioError::InvalidDuration {
                    name,
                    value_s: value,
                });
            }
        }
        if !(p.idle_mw <= p.fach_mw && p.fach_mw <= p.dch_mw) {
            return Err(RadioError::PowerOrdering {
                idle_mw: p.idle_mw,
                fach_mw: p.fach_mw,
                dch_mw: p.dch_mw,
            });
        }
        Ok(self.params.clone())
    }
}

impl Default for RadioParamsBuilder {
    fn default() -> Self {
        RadioParamsBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galaxy_s4_matches_paper_constants() {
        let p = RadioParams::galaxy_s4_3g();
        assert_eq!(p.dch_extra_mw(), 700.0);
        assert_eq!(p.fach_extra_mw(), 450.0);
        assert_eq!(p.delta_dch_s(), 10.0);
        assert_eq!(p.delta_fach_s(), 7.5);
        assert_eq!(p.tail_time_s(), 17.5);
    }

    #[test]
    fn full_tail_energy_close_to_measured() {
        // Paper Sec. II-D: a tail costs about 10.91 J in 3G; the model's
        // piecewise-constant version is 10.375 J.
        let p = RadioParams::galaxy_s4_3g();
        assert!((p.full_tail_energy_j() - 10.375).abs() < 1e-12);
        assert!((p.full_tail_energy_j() - 10.91).abs() < 1.0);
    }

    #[test]
    fn builder_roundtrip_and_defaults() {
        let p = RadioParams::builder().build().unwrap();
        assert_eq!(p, RadioParams::galaxy_s4_3g());
        assert_eq!(RadioParams::default(), RadioParams::galaxy_s4_3g());
    }

    #[test]
    fn builder_rejects_negative_power() {
        let err = RadioParams::builder().dch_mw(-1.0).build().unwrap_err();
        assert!(matches!(
            err,
            RadioError::InvalidPower { name: "dch_mw", .. }
        ));
    }

    #[test]
    fn builder_rejects_nan_duration() {
        let err = RadioParams::builder()
            .delta_fach_s(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RadioError::InvalidDuration {
                name: "delta_fach_s",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_bad_ordering() {
        let err = RadioParams::builder()
            .fach_mw(900.0) // above DCH's 720 mW
            .build()
            .unwrap_err();
        assert!(matches!(err, RadioError::PowerOrdering { .. }));
        let display = err.to_string();
        assert!(display.contains("power ordering violated"));
    }

    #[test]
    fn wifi_like_has_short_tail() {
        let p = RadioParams::wifi_like();
        assert!(p.tail_time_s() < 2.0);
        assert!(p.full_tail_energy_j() < 1.0);
    }

    #[test]
    fn lte_tail_is_cheaper_than_3g_but_not_free() {
        let lte = RadioParams::lte_drx();
        let umts = RadioParams::galaxy_s4_3g();
        assert!(lte.full_tail_energy_j() < umts.full_tail_energy_j() / 3.0);
        assert!(lte.full_tail_energy_j() > 1.0);
        // Ordering constraint still holds (builder-level invariant).
        assert!(lte.idle_mw() <= lte.fach_mw() && lte.fach_mw() <= lte.dch_mw());
    }

    #[test]
    fn serde_roundtrip() {
        let p = RadioParams::galaxy_s4_3g();
        let json = serde_json::to_string(&p).unwrap();
        let back: RadioParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
