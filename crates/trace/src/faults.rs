//! Fault injection: seeded, serializable descriptions of channel and
//! train-app misbehaviour.
//!
//! The paper's evaluation assumes a cooperative world — every scheduled
//! transmission lands, every heartbeat departs, the train apps never die.
//! Real IM infrastructure is lossier: uploads fail mid-transfer, keepalives
//! get eaten by NAT boxes, and the user force-stops WeChat. A [`FaultPlan`]
//! captures that misbehaviour as data so any experiment can be re-run under
//! identical faults:
//!
//! - **bandwidth outages** — windows where the channel carries nothing, on
//!   top of whatever the [`BandwidthTrace`] says;
//! - **per-transmission loss** — each transfer attempt independently fails
//!   with probability `loss_probability`, *after* burning its energy;
//! - **heartbeat drops** — individual train departures that never happen;
//! - **train deaths** — windows in which every train app is down, the
//!   condition of paper Sec. V-3 ("when no train app is running, eTrain
//!   will stop its scheduler to avoid cargo apps' indefinite waiting").
//!
//! All stochastic decisions are pure functions of `(plan.seed, identity)`,
//! so a plan is deterministic, composable with any bandwidth source, and
//! round-trips through serde.

use crate::bandwidth::BandwidthTrace;
use crate::heartbeats::Heartbeat;
use serde::{Deserialize, Serialize};

/// A half-open time window `[start_s, end_s)` during which a fault holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start, seconds (inclusive).
    pub start_s: f64,
    /// Window end, seconds (exclusive).
    pub end_s: f64,
}

impl FaultWindow {
    /// A validated window; panics on `start_s < 0`, `end_s <= start_s`, or
    /// non-finite endpoints.
    pub fn new(start_s: f64, end_s: f64) -> Self {
        assert!(
            start_s.is_finite() && end_s.is_finite(),
            "fault window endpoints must be finite"
        );
        assert!(start_s >= 0.0, "fault window must start at t >= 0");
        assert!(end_s > start_s, "fault window must have positive length");
        FaultWindow { start_s, end_s }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }
}

/// A seeded, serializable fault schedule, composable with any bandwidth
/// source. `FaultPlan::none()` is the identity: injecting it reproduces a
/// fault-free run bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all stochastic fault decisions (loss, drops).
    pub seed: u64,
    /// Probability in `[0, 1]` that any single transfer attempt fails.
    pub loss_probability: f64,
    /// Probability in `[0, 1]` that any single heartbeat never departs.
    pub heartbeat_drop_probability: f64,
    /// Windows during which the channel carries no data at all.
    pub outages: Vec<FaultWindow>,
    /// Windows during which every train app is dead (no heartbeats, and
    /// liveness monitors see silence); each window's end is a restart.
    pub train_deaths: Vec<FaultWindow>,
    /// Times at which an oracle-violation alarm is injected: the engine
    /// delivers each to [`Scheduler::on_oracle_violation`] at the first
    /// slot boundary at or after the alarm time, exercising the
    /// degradation ladder without corrupting the run itself.
    ///
    /// [`Scheduler::on_oracle_violation`]: https://docs.rs/etrain-sched
    pub oracle_alarms: Vec<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan. Guaranteed to be a strict no-op: every query
    /// short-circuits before touching floating point, so a run with
    /// `FaultPlan::none()` is bit-for-bit identical to one with no fault
    /// layer at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            loss_probability: 0.0,
            heartbeat_drop_probability: 0.0,
            outages: Vec::new(),
            train_deaths: Vec::new(),
            oracle_alarms: Vec::new(),
        }
    }

    /// A plan with the given seed and no faults; use the builder methods to
    /// add them.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Sets the per-attempt transmission loss probability (`[0, 1]`).
    pub fn with_loss(mut self, probability: f64) -> Self {
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "loss probability must be in [0, 1]"
        );
        self.loss_probability = probability;
        self
    }

    /// Sets the per-heartbeat drop probability (`[0, 1]`).
    pub fn with_heartbeat_drops(mut self, probability: f64) -> Self {
        assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "heartbeat drop probability must be in [0, 1]"
        );
        self.heartbeat_drop_probability = probability;
        self
    }

    /// Adds a bandwidth outage window.
    pub fn with_outage(mut self, start_s: f64, end_s: f64) -> Self {
        self.outages.push(FaultWindow::new(start_s, end_s));
        self
    }

    /// Adds a train-death window: all train apps die at `start_s` and
    /// restart at `end_s`.
    pub fn with_train_death(mut self, start_s: f64, end_s: f64) -> Self {
        self.train_deaths.push(FaultWindow::new(start_s, end_s));
        self
    }

    /// Injects an oracle-violation alarm at `at_s`; the engine delivers it
    /// to the scheduler at the first slot boundary at or after that time.
    pub fn with_oracle_alarm(mut self, at_s: f64) -> Self {
        assert!(
            at_s.is_finite() && at_s >= 0.0,
            "oracle alarm time must be finite and non-negative"
        );
        self.oracle_alarms.push(at_s);
        self
    }

    /// Adds periodic outages: every `period_s` seconds starting at
    /// `first_start_s`, the channel goes dark for `duration_s` seconds,
    /// until `horizon_s`. Handy for duty-cycle sweeps.
    pub fn with_periodic_outages(
        mut self,
        first_start_s: f64,
        duration_s: f64,
        period_s: f64,
        horizon_s: f64,
    ) -> Self {
        assert!(period_s > duration_s, "outage period must exceed duration");
        assert!(duration_s > 0.0, "outage duration must be positive");
        let mut start = first_start_s;
        while start < horizon_s {
            self.outages
                .push(FaultWindow::new(start, (start + duration_s).min(horizon_s)));
            start += period_s;
        }
        self
    }

    /// Checks a plan's invariants — useful for plans deserialized from
    /// JSON, which bypass the builder's asserts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("loss_probability", self.loss_probability),
            (
                "heartbeat_drop_probability",
                self.heartbeat_drop_probability,
            ),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        for (name, windows) in [
            ("outages", &self.outages),
            ("train_deaths", &self.train_deaths),
        ] {
            for w in windows.iter() {
                if !(w.start_s.is_finite() && w.end_s.is_finite() && w.start_s >= 0.0) {
                    return Err(format!("{name} window {w:?} has invalid endpoints"));
                }
                if w.end_s <= w.start_s {
                    return Err(format!("{name} window {w:?} has non-positive length"));
                }
            }
        }
        for &t in &self.oracle_alarms {
            if !(t.is_finite() && t >= 0.0) {
                return Err(format!(
                    "oracle alarm time must be finite and non-negative, got {t}"
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan injects nothing — the fast path the simulator uses
    /// to keep fault-free runs bit-for-bit identical to the seed engine.
    pub fn is_noop(&self) -> bool {
        self.loss_probability <= 0.0
            && self.heartbeat_drop_probability <= 0.0
            && self.outages.is_empty()
            && self.train_deaths.is_empty()
            && self.oracle_alarms.is_empty()
    }

    /// Whether the transfer attempt `attempt` (1-based) of packet
    /// `packet_id` is lost. Deterministic in `(seed, packet_id, attempt)`.
    pub fn loses_transmission(&self, packet_id: u64, attempt: u32) -> bool {
        if self.loss_probability <= 0.0 {
            return false;
        }
        hash_unit(self.seed, packet_id, u64::from(attempt)) < self.loss_probability
    }

    /// Whether the `index`-th heartbeat of the run is dropped (never
    /// departs). Deterministic in `(seed, index)`.
    pub fn drops_heartbeat(&self, index: u64) -> bool {
        if self.heartbeat_drop_probability <= 0.0 {
            return false;
        }
        hash_unit(self.seed, 0x4845_4152_5442_4541, index) < self.heartbeat_drop_probability
    }

    /// Whether all train apps are dead at time `t`.
    pub fn trains_dead_at(&self, t: f64) -> bool {
        self.train_deaths.iter().any(|w| w.contains(t))
    }

    /// The next time strictly after `t` at which
    /// [`FaultPlan::trains_dead_at`] can change value: the earliest
    /// death-window start or end past `t` (windows are half-open, so
    /// those are the only candidates). `None` means liveness is constant
    /// from `t` onward. Lets callers that poll liveness on a fine grid —
    /// the event kernel's quiescent-slot batching — hoist the per-sample
    /// window scan out of their hot loop.
    pub fn next_train_death_boundary(&self, t: f64) -> Option<f64> {
        self.train_deaths
            .iter()
            .flat_map(|w| [w.start_s, w.end_s])
            .filter(|&b| b > t)
            .reduce(f64::min)
    }

    /// Whether the channel is in an outage at time `t`.
    pub fn in_outage(&self, t: f64) -> bool {
        self.outages.iter().any(|w| w.contains(t))
    }

    /// Applies heartbeat drops and train-death windows to a departure
    /// schedule: beats inside a death window or selected by the drop coin
    /// vanish. Drop decisions are indexed by position in `heartbeats`, so
    /// the same plan over the same schedule removes the same beats.
    pub fn apply_to_heartbeats(&self, heartbeats: &[Heartbeat]) -> Vec<Heartbeat> {
        heartbeats
            .iter()
            .enumerate()
            .filter(|(i, hb)| !self.trains_dead_at(hb.time_s) && !self.drops_heartbeat(*i as u64))
            .map(|(_, hb)| *hb)
            .collect()
    }

    /// Transfer time for `size_bytes` starting at `start_s` over `trace`,
    /// with outage windows carrying zero bits. Without outages this is
    /// exactly `trace.transfer_time_s` (same arithmetic, bit-for-bit).
    pub fn transfer_time_s(&self, trace: &BandwidthTrace, start_s: f64, size_bytes: u64) -> f64 {
        if self.outages.is_empty() {
            return trace.transfer_time_s(start_s, size_bytes);
        }
        let mut remaining_bits = size_bytes as f64 * 8.0;
        if remaining_bits <= 0.0 {
            return 0.0;
        }
        let mut t = start_s.max(0.0);
        // Walk the outage windows in time order, transferring over the gaps.
        let mut windows: Vec<FaultWindow> = self.outages.clone();
        windows.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        for w in &windows {
            if w.end_s <= t {
                continue;
            }
            if w.start_s > t {
                // Clear air until the window opens: does the transfer finish?
                let capacity = trace.bits_transferred(t, w.start_s);
                if remaining_bits <= capacity {
                    return t - start_s.max(0.0) + trace.transfer_time_for_bits(t, remaining_bits);
                }
                remaining_bits -= capacity;
            }
            // Stalled until the outage lifts.
            t = w.end_s;
        }
        t - start_s.max(0.0) + trace.transfer_time_for_bits(t, remaining_bits)
    }
}

/// A deterministic hash of `(seed, a, b)` mapped to a uniform `f64` in
/// `[0, 1)`. This is the single source of randomness for fault decisions
/// (and for retry jitter in `etrain-core`), so identical plans make
/// identical choices regardless of evaluation order.
pub fn hash_unit(seed: u64, a: u64, b: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(b);
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    // Top 53 bits → uniform in [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heartbeats::{synthesize, TrainAppSpec};
    use crate::TrainAppId;

    fn flat_trace(bps: f64) -> BandwidthTrace {
        BandwidthTrace::new(1.0, vec![bps; 100])
    }

    #[test]
    fn none_is_noop_and_loses_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_noop());
        for id in 0..100 {
            assert!(!plan.loses_transmission(id, 1));
            assert!(!plan.drops_heartbeat(id));
        }
        assert!(!plan.trains_dead_at(12.5));
        assert!(!plan.in_outage(12.5));
    }

    #[test]
    fn next_train_death_boundary_walks_every_liveness_edge() {
        let plan = FaultPlan::none()
            .with_train_death(100.0, 200.0)
            .with_train_death(150.0, 400.0);
        // Boundaries are window starts and ends, strictly after `t`.
        assert_eq!(plan.next_train_death_boundary(0.0), Some(100.0));
        assert_eq!(plan.next_train_death_boundary(100.0), Some(150.0));
        assert_eq!(plan.next_train_death_boundary(150.0), Some(200.0));
        assert_eq!(plan.next_train_death_boundary(200.0), Some(400.0));
        assert_eq!(plan.next_train_death_boundary(400.0), None);
        assert_eq!(FaultPlan::none().next_train_death_boundary(0.0), None);
        // Liveness is constant on every open interval between
        // consecutive boundaries — the property the event kernel's
        // batching leans on.
        let mut t = 0.0;
        while let Some(next) = plan.next_train_death_boundary(t) {
            let mid = (t + next) / 2.0;
            assert_eq!(
                plan.trains_dead_at(t),
                plan.trains_dead_at(mid),
                "liveness changed inside ({t}, {next})"
            );
            t = next;
        }
    }

    #[test]
    fn noop_transfer_time_matches_trace_exactly() {
        let plan = FaultPlan::seeded(7);
        let trace = crate::bandwidth::wuhan_drive_synthetic(3);
        for &(start, size) in &[(0.0, 1_000u64), (13.7, 250_000), (7199.0, 4_096)] {
            let a = plan.transfer_time_s(&trace, start, size);
            let b = trace.transfer_time_s(start, size);
            assert_eq!(a.to_bits(), b.to_bits(), "bit-for-bit at ({start}, {size})");
        }
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let plan = FaultPlan::seeded(42).with_loss(0.3);
        let lost = (0..10_000)
            .filter(|&id| plan.loses_transmission(id, 1))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "empirical loss rate {rate}");
    }

    #[test]
    fn loss_is_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::seeded(9).with_loss(0.5);
        for id in 0..50 {
            for attempt in 1..4 {
                assert_eq!(
                    plan.loses_transmission(id, attempt),
                    plan.loses_transmission(id, attempt)
                );
            }
        }
        // Different attempts of the same packet flip independent coins.
        let flips: Vec<bool> = (1..20).map(|a| plan.loses_transmission(3, a)).collect();
        assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
    }

    #[test]
    fn outage_stalls_transfer() {
        let plan = FaultPlan::seeded(1).with_outage(5.0, 15.0);
        let trace = flat_trace(8_000.0); // 1 KB/s
                                         // 2 KB starting at t=4: 1 s clear air (1 KB), 10 s outage, 1 s more.
        let t = plan.transfer_time_s(&trace, 4.0, 2_000);
        assert!((t - 12.0).abs() < 1e-9, "got {t}");
        // Entirely before the outage: unaffected.
        let t2 = plan.transfer_time_s(&trace, 0.0, 2_000);
        assert!((t2 - 2.0).abs() < 1e-9, "got {t2}");
        // Starting inside the outage: waits for it to lift.
        let t3 = plan.transfer_time_s(&trace, 10.0, 1_000);
        assert!((t3 - 6.0).abs() < 1e-9, "got {t3}");
    }

    #[test]
    fn overlapping_and_unsorted_outages_compose() {
        let plan = FaultPlan::seeded(1)
            .with_outage(20.0, 30.0)
            .with_outage(5.0, 12.0)
            .with_outage(10.0, 15.0);
        let trace = flat_trace(8_000.0);
        // 8 KB from t=0: 5 s air (5 KB), merged stall to 15, 3 KB in 3 s.
        let t = plan.transfer_time_s(&trace, 0.0, 8_000);
        assert!((t - 18.0).abs() < 1e-9, "got {t}");
        // 12 KB from t=0: 5 s air, stall to 15, 5 s air, stall to 30, 2 s.
        let t2 = plan.transfer_time_s(&trace, 0.0, 12_000);
        assert!((t2 - 32.0).abs() < 1e-9, "got {t2}");
    }

    #[test]
    fn bits_transferred_inverts_transfer_time() {
        let trace = crate::bandwidth::wuhan_drive_synthetic(11);
        for &(start, size) in &[(3.2, 40_000u64), (100.0, 1_000_000)] {
            let dt = trace.transfer_time_s(start, size);
            let bits = trace.bits_transferred(start, start + dt);
            assert!(
                (bits - size as f64 * 8.0).abs() < 1.0,
                "expected {} bits, got {bits}",
                size as f64 * 8.0
            );
        }
        assert_eq!(trace.bits_transferred(5.0, 5.0), 0.0);
        assert_eq!(trace.bits_transferred(9.0, 3.0), 0.0);
    }

    #[test]
    fn heartbeat_filtering_respects_death_windows_and_drops() {
        let specs = vec![TrainAppSpec {
            name: "t".into(),
            pattern: crate::heartbeats::CyclePattern::Fixed { cycle_s: 10.0 },
            heartbeat_size_bytes: 100,
            phase_s: 0.0,
            jitter_s: 0.0,
        }];
        let beats = synthesize(&specs, 100.0, 5);
        let n = beats.len();
        assert!(n >= 9);

        let death = FaultPlan::seeded(0).with_train_death(25.0, 55.0);
        let kept = death.apply_to_heartbeats(&beats);
        assert!(kept.len() < n);
        assert!(kept.iter().all(|hb| !death.trains_dead_at(hb.time_s)));

        let drops = FaultPlan::seeded(3).with_heartbeat_drops(1.0);
        assert!(drops.apply_to_heartbeats(&beats).is_empty());

        let none = FaultPlan::none();
        assert_eq!(none.apply_to_heartbeats(&beats), beats);
        let _ = TrainAppId(0);
    }

    #[test]
    fn periodic_outages_cover_the_horizon() {
        let plan = FaultPlan::seeded(0).with_periodic_outages(10.0, 5.0, 60.0, 200.0);
        assert_eq!(plan.outages.len(), 4);
        assert!(plan.in_outage(12.0));
        assert!(!plan.in_outage(16.0));
        assert!(plan.in_outage(131.0));
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::seeded(99)
            .with_loss(0.25)
            .with_heartbeat_drops(0.05)
            .with_outage(10.0, 20.0)
            .with_train_death(500.0, 900.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Decisions survive the round trip too.
        for id in 0..32 {
            assert_eq!(
                plan.loses_transmission(id, 2),
                back.loses_transmission(id, 2)
            );
        }
    }

    #[test]
    fn oracle_alarms_break_noop_and_round_trip() {
        let plan = FaultPlan::seeded(1).with_oracle_alarm(30.0);
        assert!(!plan.is_noop());
        assert!(plan.validate().is_ok());
        // The alarm schedule survives a serde round trip.
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Invalid alarm times are caught by validate.
        let mut bad = FaultPlan::none();
        bad.oracle_alarms.push(f64::NAN);
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "alarm time")]
    fn negative_alarm_time_panics() {
        let _ = FaultPlan::none().with_oracle_alarm(-1.0);
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let mean = (0..10_000).map(|i| hash_unit(1, i, 0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..100).all(|i| {
            let u = hash_unit(2, i, i);
            (0.0..1.0).contains(&u)
        }));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = FaultPlan::none().with_loss(1.5);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn inverted_window_panics() {
        let _ = FaultWindow::new(10.0, 10.0);
    }
}
