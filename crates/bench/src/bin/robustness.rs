//! Robustness: a quick chaos campaign, oracle self-test with shrinking,
//! and kill/resume crash-consistency trials. See `experiments::chaos`;
//! the standalone `chaos` binary scales the same machinery up.

fn main() {
    etrain_bench::run_binary("robustness");
}
