//! Synthetic packet captures — the raw material of the paper's
//! measurement study.
//!
//! Paper Sec. II-B: "We capture raw packets using Wireshark ... and
//! analyze the captured traffic file offline to determine the heartbeat
//! cycle." This module generates statistically equivalent captures: per
//! device, a set of long-lived TCP flows (one per heartbeat-keeping app,
//! or a single shared APNS flow on iOS), each carrying periodic keep-alive
//! packets, interleaved with bursty foreground data flows and background
//! noise. The offline analysis lives in `etrain-hb`
//! ([`identify_heartbeat_flows`](../../etrain_hb/fn.identify_heartbeat_flows.html));
//! together they reproduce Table 1 from raw captures instead of from
//! ground-truth specs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::heartbeats::TrainAppSpec;
use crate::rng::{exponential, seeded};
use crate::TrainAppId;

/// Direction of a captured packet relative to the phone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketDirection {
    /// Phone → server.
    Outbound,
    /// Server → phone.
    Inbound,
}

/// A 5-tuple-ish flow key (the capture is phone-side, so the phone's
/// address is implicit; the remote endpoint + local port identify a flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Local (phone) TCP port.
    pub local_port: u16,
    /// Remote server port (443/80/5223...).
    pub remote_port: u16,
}

/// One captured packet record (what a `.pcap` row boils down to for this
/// analysis: timestamp, flow, direction, length).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapturedPacket {
    /// Capture timestamp in seconds.
    pub time_s: f64,
    /// The flow the packet belongs to.
    pub flow: FlowKey,
    /// Packet direction.
    pub direction: PacketDirection,
    /// Payload length in bytes.
    pub length: u64,
}

/// A whole capture session with its (hidden) ground truth, for validating
/// analyzers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Time-sorted packets.
    pub packets: Vec<CapturedPacket>,
    /// Capture length in seconds.
    pub duration_s: f64,
    /// Ground truth: which flow carries which train app's heartbeats.
    pub truth: Vec<(FlowKey, String)>,
}

/// Configuration of the synthetic capture generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureConfig {
    /// The heartbeat-keeping apps present on the device.
    pub trains: Vec<TrainAppSpec>,
    /// Mean inter-arrival of foreground data bursts, in seconds.
    pub burst_interarrival_s: f64,
    /// Packets per foreground burst (upper bound, uniform from 1).
    pub burst_len_max: usize,
    /// Mean rate of unrelated background packets (DNS, NTP, ...), per
    /// second.
    pub noise_rate: f64,
    /// Capture duration in seconds.
    pub duration_s: f64,
}

impl Default for CaptureConfig {
    /// A WiFi capture like the paper's: the three IM apps, light
    /// foreground use, one hour.
    fn default() -> Self {
        CaptureConfig {
            trains: TrainAppSpec::paper_trio(),
            burst_interarrival_s: 120.0,
            burst_len_max: 30,
            noise_rate: 0.02,
            duration_s: 3600.0,
        }
    }
}

/// Generates a synthetic capture.
///
/// Each train app gets a dedicated long-lived flow carrying its heartbeats
/// (an outbound keep-alive followed ~200 ms later by the server's ACK-ish
/// response, as the paper's Fig. 1(b) shows request/response pairs).
/// Foreground bursts use ephemeral flows with larger packets; background
/// noise is scattered over random flows.
///
/// # Examples
///
/// ```
/// use etrain_trace::capture::{synthesize_capture, CaptureConfig};
///
/// let capture = synthesize_capture(&CaptureConfig::default(), 7);
/// assert!(capture.packets.len() > 100);
/// assert_eq!(capture.truth.len(), 3);
/// ```
pub fn synthesize_capture(config: &CaptureConfig, seed: u64) -> Capture {
    let mut rng = seeded(seed);
    let mut packets = Vec::new();
    let mut truth = Vec::new();

    // Heartbeat flows: stable local ports starting at 40000.
    for (i, spec) in config.trains.iter().enumerate() {
        let flow = FlowKey {
            local_port: 40_000 + i as u16,
            remote_port: 5_223, // push-service style port
        };
        truth.push((flow, spec.name.clone()));
        for hb in spec.generate(TrainAppId(i), config.duration_s, &mut rng) {
            packets.push(CapturedPacket {
                time_s: hb.time_s,
                flow,
                direction: PacketDirection::Outbound,
                length: hb.size_bytes,
            });
            // Server response shortly after.
            packets.push(CapturedPacket {
                time_s: hb.time_s + 0.2,
                flow,
                direction: PacketDirection::Inbound,
                length: hb.size_bytes / 2 + 20,
            });
        }
    }

    // Foreground data bursts on ephemeral flows.
    let mut t = exponential(&mut rng, config.burst_interarrival_s);
    let mut ephemeral_port = 50_000u16;
    while t < config.duration_s {
        let flow = FlowKey {
            local_port: ephemeral_port,
            remote_port: 443,
        };
        ephemeral_port = ephemeral_port.wrapping_add(1).max(50_000);
        let burst_len = rng.gen_range(1..=config.burst_len_max.max(1));
        let mut bt = t;
        for _ in 0..burst_len {
            packets.push(CapturedPacket {
                time_s: bt,
                flow,
                direction: if rng.gen_bool(0.3) {
                    PacketDirection::Outbound
                } else {
                    PacketDirection::Inbound
                },
                length: rng.gen_range(400..1460),
            });
            bt += rng.gen_range(0.01..0.3);
        }
        t += exponential(&mut rng, config.burst_interarrival_s);
    }

    // Background noise.
    if config.noise_rate > 0.0 {
        let mut nt = exponential(&mut rng, 1.0 / config.noise_rate);
        while nt < config.duration_s {
            packets.push(CapturedPacket {
                time_s: nt,
                flow: FlowKey {
                    local_port: rng.gen_range(60_000..61_000),
                    remote_port: if rng.gen_bool(0.5) { 53 } else { 123 },
                },
                direction: PacketDirection::Outbound,
                length: rng.gen_range(40..120),
            });
            nt += exponential(&mut rng, 1.0 / config.noise_rate);
        }
    }

    packets.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    Capture {
        packets,
        duration_s: config.duration_s,
        truth,
    }
}

/// An iOS-style capture: every app's notifications ride one shared APNS
/// connection with an 1800 s keep-alive (paper Table 1, iPhone rows).
pub fn synthesize_ios_capture(duration_s: f64, seed: u64) -> Capture {
    synthesize_capture(
        &CaptureConfig {
            trains: vec![TrainAppSpec::ios_apns()],
            burst_interarrival_s: 300.0,
            burst_len_max: 20,
            noise_rate: 0.01,
            duration_s,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_sorted_and_nonempty() {
        let capture = synthesize_capture(&CaptureConfig::default(), 1);
        assert!(capture.packets.len() > 200);
        assert!(capture
            .packets
            .windows(2)
            .all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn heartbeat_flows_carry_periodic_outbound_packets() {
        let capture = synthesize_capture(&CaptureConfig::default(), 2);
        let (qq_flow, _) = capture.truth[0];
        let outbound: Vec<f64> = capture
            .packets
            .iter()
            .filter(|p| p.flow == qq_flow && p.direction == PacketDirection::Outbound)
            .map(|p| p.time_s)
            .collect();
        assert_eq!(outbound.len(), 12); // QQ, 1 h at 300 s
        for w in outbound.windows(2) {
            assert!((w[1] - w[0] - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    fn every_heartbeat_has_a_server_response() {
        let capture = synthesize_capture(&CaptureConfig::default(), 3);
        for (flow, _) in &capture.truth {
            let (outbound, inbound): (Vec<&CapturedPacket>, Vec<&CapturedPacket>) = capture
                .packets
                .iter()
                .filter(|p| p.flow == *flow)
                .partition(|p| p.direction == PacketDirection::Outbound);
            assert_eq!(outbound.len(), inbound.len());
        }
    }

    #[test]
    fn ios_capture_has_single_truth_flow() {
        let capture = synthesize_ios_capture(6.0 * 3600.0, 4);
        assert_eq!(capture.truth.len(), 1);
        let (flow, name) = &capture.truth[0];
        assert_eq!(name, "APNS");
        let beats = capture
            .packets
            .iter()
            .filter(|p| p.flow == *flow && p.direction == PacketDirection::Outbound)
            .count();
        assert_eq!(beats, 12); // 6 h / 1800 s
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize_capture(&CaptureConfig::default(), 9);
        let b = synthesize_capture(&CaptureConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip() {
        let capture = synthesize_capture(
            &CaptureConfig {
                duration_s: 600.0,
                ..CaptureConfig::default()
            },
            5,
        );
        let json = serde_json::to_string(&capture).unwrap();
        let back: Capture = serde_json::from_str(&json).unwrap();
        assert_eq!(capture, back);
    }
}
