//! The fleet runner: shards the device range across worker threads,
//! runs every device through the allocation-lean direct engine path, and
//! reassembles per-shard columns into one device-ordered result.
//!
//! Determinism contract: the columns (and therefore every aggregate
//! derived from them) are bit-for-bit identical for any worker count and
//! any shard size, because
//!
//! 1. every device's traces derive from `(fleet seed, device index)`
//!    alone (see [`crate::population`]);
//! 2. shards partition the device range contiguously, so concatenating
//!    shard outputs by shard index restores global device order;
//! 3. all aggregates are folded over the reassembled columns in row
//!    order — never from per-shard partial sums, whose floating-point
//!    association would depend on the partition.
//!
//! Only `wall_s` / `devices_per_s` vary between runs; they are
//! measurements, not simulation outputs, and are excluded from every
//! equivalence check.

use std::ops::Range;
use std::time::Instant;

use crossbeam::channel;
use etrain_obs::{ClassSnapshot, FleetSnapshot, FleetTally, Journal, ObsMode};
use etrain_radio::RadioParams;
use etrain_sched::RetryPolicy;
use etrain_sim::{try_jobs_from_env, Engine, Percentiles, RunReport, JOBS_ENV};
use etrain_trace::bandwidth::BandwidthTrace;
use etrain_trace::faults::FaultPlan;
use etrain_trace::heartbeats::{synthesize_into, Heartbeat, TrainAppSpec};
use etrain_trace::packets::Packet;
use etrain_trace::user::Activeness;

use crate::columns::FleetColumns;
use crate::population::{class_label, FleetConfig};

/// The outcome of one fleet run: the device-ordered column store, the
/// canonical fleet tally, and the run's throughput measurements.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// The scheduler's display form (with knob values).
    pub scheduler: String,
    /// Per-device results in device order.
    pub columns: FleetColumns,
    /// Device-order fold over all columns (see [`FleetColumns::tally`]).
    pub fleet: FleetTally,
    /// How many shards the device range was split into.
    pub shards: usize,
    /// How many worker threads executed them.
    pub workers: usize,
    /// Wall-clock duration of the run, seconds (measurement — varies
    /// between runs; never part of an equivalence check).
    pub wall_s: f64,
    /// Devices simulated per wall-clock second (the throughput headline).
    pub devices_per_s: f64,
}

impl FleetResult {
    /// Builds the serializable population snapshot: the fleet tally plus
    /// a per-class breakdown with nearest-rank extra-energy percentiles.
    /// Classes with zero devices keep empty tallies and zero percentiles
    /// so the snapshot shape is fixed.
    pub fn snapshot(&self) -> FleetSnapshot {
        let classes = Activeness::all()
            .iter()
            .map(|&class| {
                let tally = self.columns.class_tally(class);
                let mut samples = self.columns.class_extra_energies(class);
                let percentiles = if samples.is_empty() {
                    Percentiles {
                        p50: 0.0,
                        p95: 0.0,
                        p99: 0.0,
                    }
                } else {
                    Percentiles::from_samples_mut(&mut samples)
                };
                ClassSnapshot {
                    class: class_label(class).to_owned(),
                    mean_extra_j: tally.mean_extra_j(),
                    p50_extra_j: percentiles.p50,
                    p95_extra_j: percentiles.p95,
                    p99_extra_j: percentiles.p99,
                    tally,
                }
            })
            .collect();
        FleetSnapshot {
            scheduler: self.scheduler.clone(),
            devices: self.fleet.devices,
            shards: self.shards as u64,
            workers: self.workers as u64,
            wall_s: self.wall_s,
            devices_per_s: self.devices_per_s,
            fleet: self.fleet,
            classes,
        }
    }
}

/// Runs one shard of the device range through the direct engine path.
///
/// The per-shard arena: one packet buffer, one heartbeat buffer, one
/// bandwidth trace, one radio parameter set — reused across every device
/// in the shard. Trace synthesis lands in the reused buffers through the
/// `*_into` generators, so steady-state per-device cost is the engine run
/// plus the scheduler box, not a fresh trace materialization.
fn run_shard(config: &FleetConfig, devices: Range<u64>) -> FleetColumns {
    let trains = TrainAppSpec::paper_trio();
    let radio = RadioParams::galaxy_s4_3g();
    let bandwidth = BandwidthTrace::constant(config.bandwidth_bps);
    let faults = FaultPlan::none();
    let retry = RetryPolicy::default();
    let profiles = config.profiles();
    let horizon_s = config.session_secs as f64;
    let mut packets: Vec<Packet> = Vec::new();
    let mut heartbeats: Vec<Heartbeat> = Vec::new();
    let mut columns =
        FleetColumns::with_capacity(devices.end.saturating_sub(devices.start) as usize);
    for device in devices {
        let spec = config.device_spec(device);
        config.device_packets_into(&spec, &mut packets);
        synthesize_into(
            &trains,
            horizon_s,
            spec.seed.wrapping_add(1),
            &mut heartbeats,
        );
        let mut scheduler = config.scheduler.build(profiles.clone());
        scheduler.set_reference_decisions(config.reference_cost);
        let output = Engine::new(
            scheduler.as_mut(),
            &packets,
            &heartbeats,
            &bandwidth,
            &radio,
            horizon_s,
            &faults,
            &retry,
            None,
        )
        .with_kind(config.engine)
        .run();
        let report = RunReport::from_engine(scheduler.name(), &output, &profiles);
        columns.push_report(spec.class, &report);
    }
    columns
}

/// Splits `0..devices` into contiguous shards of at most `shard_devices`.
fn shard_ranges(devices: u64, shard_devices: usize) -> Vec<Range<u64>> {
    let step = shard_devices.max(1) as u64;
    let mut ranges = Vec::with_capacity(devices.div_ceil(step) as usize);
    let mut start = 0;
    while start < devices {
        let end = (start + step).min(devices);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Resolves the worker count: explicit config override, then a lenient
/// `ETRAIN_JOBS` read, then the machine's available parallelism — clamped
/// to the shard count.
fn effective_workers(config: &FleetConfig, shards: usize) -> usize {
    let from_env = || match try_jobs_from_env(std::env::var(JOBS_ENV).ok().as_deref()) {
        Ok(jobs) => jobs,
        Err(_) => None,
    };
    config
        .jobs
        .or_else(from_env)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, shards.max(1))
}

/// Runs the whole fleet: shards the device range, executes shards across
/// worker threads, reassembles columns in shard-index order, and folds
/// the canonical tally in device order.
///
/// # Panics
///
/// Panics if [`FleetConfig::validate`] rejects the config.
pub fn run_fleet(config: &FleetConfig) -> FleetResult {
    if let Err(reason) = config.validate() {
        panic!("invalid fleet config: {reason}");
    }
    let start = Instant::now();
    let shards = shard_ranges(config.devices, config.shard_devices);
    let workers = effective_workers(config, shards.len());
    let mut parts: Vec<Option<FleetColumns>> = shards.iter().map(|_| None).collect();
    if workers <= 1 || shards.len() <= 1 {
        for (index, range) in shards.iter().enumerate() {
            parts[index] = Some(run_shard(config, range.clone()));
        }
    } else {
        let (job_tx, job_rx) = channel::unbounded::<(usize, Range<u64>)>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, FleetColumns)>();
        for (index, range) in shards.iter().enumerate() {
            job_tx
                .send((index, range.clone()))
                .expect("job receiver alive");
        }
        drop(job_tx);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((index, range)) = job_rx.recv() {
                        if result_tx.send((index, run_shard(config, range))).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(result_tx);
            for (index, columns) in result_rx.iter() {
                parts[index] = Some(columns);
            }
        });
    }
    let mut columns = FleetColumns::with_capacity(config.devices as usize);
    for part in &mut parts {
        columns.append(part.as_mut().expect("every shard returns columns"));
    }
    let fleet = columns.tally();
    let wall_s = start.elapsed().as_secs_f64();
    let devices_per_s = if wall_s > 0.0 {
        config.devices as f64 / wall_s
    } else {
        0.0
    };
    FleetResult {
        scheduler: config.scheduler.to_string(),
        columns,
        fleet,
        shards: shards.len(),
        workers,
        wall_s,
        devices_per_s,
    }
}

/// Runs every device through its full single-device
/// [`reference_scenario`](FleetConfig::reference_scenario), serially, in
/// device order — the conformance tier proving a fleet of N is exactly N
/// independent runs. O(devices) `RunReport`s; use small tiers.
pub fn run_fleet_reports(config: &FleetConfig) -> Vec<RunReport> {
    if let Err(reason) = config.validate() {
        panic!("invalid fleet config: {reason}");
    }
    (0..config.devices)
        .map(|device| config.reference_scenario(&config.device_spec(device)).run())
        .collect()
}

/// Like [`run_fleet_reports`] but with per-device journaling on: each
/// device's scenario records a JSON Lines journal, and the per-device
/// journals merge deterministically in device order (run `r` in the
/// merged journal is device `r`). Small tiers only.
pub fn run_fleet_journaled(config: &FleetConfig) -> (Vec<RunReport>, Journal) {
    if let Err(reason) = config.validate() {
        panic!("invalid fleet config: {reason}");
    }
    let mut reports = Vec::with_capacity(config.devices as usize);
    let mut parts = Vec::with_capacity(config.devices as usize);
    for device in 0..config.devices {
        let scenario = config
            .reference_scenario(&config.device_spec(device))
            .obs(ObsMode::Jsonl);
        let traces = scenario.generate_traces();
        let (report, _output, journal) = scenario
            .try_run_journaled_on(&traces)
            .expect("validated fleet scenario runs");
        reports.push(report);
        parts.push(journal.expect("journal recorded with obs on"));
    }
    (reports, Journal::merge(parts))
}
