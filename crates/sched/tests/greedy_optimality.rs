//! Validates Algorithm 1's greedy subgradient heuristic against exhaustive
//! maximization of the paper's drift objective (Eq. 7):
//!
//! ```text
//! F(Q*) = Σ_i [ P̄_i · S_i − S_i²/2 ],   S_i = Σ_{u ∈ Q*_i} ϕ_u
//! ```
//!
//! For K = 1 the greedy step *is* exact; for larger K the greedy is a
//! heuristic (the paper calls it "near-optimal") — these tests quantify
//! that claim on small instances.

use etrain_sched::{
    AppProfile, CostProfile, ETrainConfig, ETrainScheduler, Scheduler, SlotContext,
};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use proptest::prelude::*;

const APPS: usize = 3;

/// One pending packet described by (app, speculative cost φ).
type Pending = Vec<(usize, f64)>;

/// Evaluates the drift objective for a subset selection.
fn objective(p_bar: &[f64; APPS], selected: &[(usize, f64)]) -> f64 {
    let mut s = [0.0f64; APPS];
    for &(app, phi) in selected {
        s[app] += phi;
    }
    (0..APPS).map(|i| p_bar[i] * s[i] - s[i] * s[i] / 2.0).sum()
}

/// Exhaustive maximum of the objective over subsets of size ≤ k.
fn exhaustive_best(p_bar: &[f64; APPS], pending: &Pending, k: usize) -> f64 {
    let n = pending.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize > k {
            continue;
        }
        let subset: Vec<(usize, f64)> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| pending[i])
            .collect();
        best = best.max(objective(p_bar, &subset));
    }
    best
}

/// Runs the real scheduler on the same instance and recovers its achieved
/// objective. All packets arrive at time 0; the slot fires at `now` so
/// that each packet's φ equals the requested value (we pick arrival times
/// that realize the φs through the Weibo profile).
fn greedy_objective(phis: &Pending, k: usize) -> (f64, [f64; APPS]) {
    // Weibo profile with deadline D: φ(d) = d/D for d ≤ D (cap 2). We
    // realize φ by arrival time: arrival = now − φ·D (for φ ≤ 1).
    let deadline = 100.0;
    let now = 200.0;
    let profiles: Vec<AppProfile> = (0..APPS)
        .map(|i| AppProfile::new(format!("app{i}"), CostProfile::weibo(deadline)))
        .collect();
    let mut sched = ETrainScheduler::new(
        ETrainConfig {
            theta: 0.0,
            k: Some(k),
            slot_s: 1.0,
        },
        profiles.clone(),
    );
    // φ at slot `now` uses speculative cost at now+1.
    let mut p_bar = [0.0f64; APPS];
    for (id, &(app, phi)) in phis.iter().enumerate() {
        let arrival = now + 1.0 - phi * deadline;
        let packet = Packet {
            id: id as u64,
            app: CargoAppId(app),
            arrival_s: arrival,
            size_bytes: 1_000,
        };
        p_bar[app] += phi;
        // Arrivals may be "in the future" relative to each other; the
        // scheduler does not care (queues only hold packets).
        sched
            .on_arrival(packet, arrival.min(now))
            .expect("registered");
    }
    let released = sched.on_slot(&SlotContext {
        now_s: now,
        heartbeat_departing: true,
        predicted_bandwidth_bps: 1e6,
        trains_alive: true,
    });
    let selected: Vec<(usize, f64)> = released
        .iter()
        .map(|p| {
            let phi = (now + 1.0 - p.arrival_s) / deadline;
            (p.app.index(), phi)
        })
        .collect();
    (objective(&p_bar, &selected), p_bar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For K = 1 the greedy step achieves the exhaustive optimum exactly.
    #[test]
    fn k1_greedy_is_exact(
        phis in prop::collection::vec((0usize..APPS, 0.05f64..1.0), 1..8),
    ) {
        let (achieved, p_bar) = greedy_objective(&phis, 1);
        let optimal = exhaustive_best(&p_bar, &phis, 1);
        prop_assert!((achieved - optimal).abs() < 1e-9,
            "K=1 greedy {achieved} vs optimal {optimal}");
    }

    /// For K > 1 the greedy achieves at least 60 % of the exhaustive
    /// optimum on every instance (empirically it is usually exact).
    #[test]
    fn bounded_k_greedy_is_near_optimal(
        phis in prop::collection::vec((0usize..APPS, 0.05f64..1.0), 1..10),
        k in 2usize..6,
    ) {
        let (achieved, p_bar) = greedy_objective(&phis, k);
        let optimal = exhaustive_best(&p_bar, &phis, k);
        prop_assert!(achieved >= 0.6 * optimal - 1e-9,
            "greedy {achieved} below 60% of optimal {optimal} (k={k})");
        prop_assert!(achieved <= optimal + 1e-9, "greedy above optimal?!");
    }
}
