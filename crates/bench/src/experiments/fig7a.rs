//! Fig. 7(a): impact of the cost bound Θ on energy and delay.
//!
//! Paper setup: k = 20, λ = 0.08 pkt/s, 2-hour simulation, Θ swept from 0
//! to 3 in steps of 0.2. Paper result: energy falls from >1000 J to
//! ≈ 600 J (≈ 40 % reduction) while average delay grows from 18 s to 70 s
//! — larger delay buys more energy saving.

use crate::ExperimentResult;
use etrain_sim::sweep::{lin_space, theta_sweep};
use etrain_sim::Table;

use super::{j, paper_base, pct, s};

/// Runs the Fig. 7(a) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let thetas = if quick {
        lin_space(0.0, 3.0, 4)
    } else {
        lin_space(0.0, 3.0, 16) // step 0.2
    };
    let sweep = theta_sweep(&base, &thetas, Some(20));

    let baseline_energy = sweep
        .first()
        .map(|(_, r)| r.extra_energy_j)
        .unwrap_or(f64::NAN);
    let mut table = Table::new(
        "Fig. 7(a) — Θ sweep (k = 20, λ = 0.08)",
        &["theta", "energy_j", "delay_s", "violation", "vs_theta0"],
    );
    for (theta, report) in &sweep {
        table.push_row_strings(vec![
            format!("{theta:.1}"),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            pct(report.deadline_violation_ratio),
            pct(1.0 - report.extra_energy_j / baseline_energy),
        ]);
    }
    ExperimentResult::from_tables(vec![table])
        .headline_cell("energy_at_max_theta", 0, -1, "energy_j", "J")
        .headline_cell("saving_at_max_theta", 0, -1, "vs_theta0", "%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_trades_delay_for_energy() {
        let tables = run(true).tables;
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let first_e: f64 = rows[0][1].parse().unwrap();
        let last_e: f64 = rows.last().unwrap()[1].parse().unwrap();
        let first_d: f64 = rows[0][2].parse().unwrap();
        let last_d: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(last_e < first_e, "energy must fall with Θ");
        assert!(last_d > first_d, "delay must rise with Θ");
    }
}
