//! Property tests for the fault-injection and retry layer: packet
//! conservation under arbitrary fault plans, bounded/monotone backoff,
//! and determinism of faulted runs.

use etrain_sim::{FaultPlan, RetryPolicy, Scenario, SchedulerKind};
use etrain_trace::packets::CargoWorkload;
use proptest::prelude::*;

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1_000_000,
        0.0f64..0.9,
        0.0f64..0.4,
        (prop::bool::weighted(0.5), 50.0f64..400.0, 10.0f64..200.0),
        (prop::bool::weighted(0.5), 100.0f64..500.0, 20.0f64..300.0),
    )
        .prop_map(|(seed, loss, hb_drop, outage, death)| {
            let mut plan = FaultPlan::seeded(seed)
                .with_loss(loss)
                .with_heartbeat_drops(hb_drop);
            if outage.0 {
                plan = plan.with_outage(outage.1, outage.1 + outage.2);
            }
            if death.0 {
                plan = plan.with_train_death(death.1, death.1 + death.2);
            }
            plan
        })
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Baseline),
        (0.0f64..8.0).prop_map(|theta| SchedulerKind::ETrain { theta, k: None }),
    ]
}

fn arb_retry() -> impl Strategy<Value = RetryPolicy> {
    (
        0.5f64..10.0,
        1.1f64..3.0,
        0.0f64..0.5,
        1u32..8,
        60.0f64..1200.0,
    )
        .prop_map(|(base, factor, jitter, attempts, give_up)| RetryPolicy {
            base_backoff_s: base,
            backoff_factor: factor,
            max_backoff_s: 120.0,
            jitter_frac: jitter,
            max_attempts: attempts,
            give_up_age_s: give_up,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: under any fault plan, every generated packet ends in
    /// exactly one terminal state and no packet is duplicated.
    #[test]
    fn packets_conserved_under_arbitrary_faults(
        plan in arb_fault_plan(),
        kind in arb_scheduler(),
        retry in arb_retry(),
        seed in 1u64..1000,
    ) {
        let (report, output) = Scenario::paper_default()
            .duration_secs(900)
            .seed(seed)
            .scheduler(kind)
            .faults(plan)
            .retry_policy(retry)
            .run_with_output();

        let generated = CargoWorkload::paper_default(0.08).generate(900.0, seed).len();
        prop_assert_eq!(
            report.packets_completed + report.packets_abandoned + report.packets_unfinished,
            generated,
            "terminal states must partition the workload"
        );

        let mut ids: Vec<u64> = output
            .completed
            .iter()
            .map(|c| c.packet.id)
            .chain(output.abandoned.iter().map(|a| a.packet.id))
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "a packet reached two terminal states");
    }

    /// Backoff delays are bounded by `max_backoff_s` and monotone in the
    /// attempt count; jitter perturbs by at most `jitter_frac / 2`.
    #[test]
    fn backoff_bounded_and_monotone(
        retry in arb_retry(),
        attempt in 1u32..20,
        unit in 0.0f64..1.0,
    ) {
        let d = retry.backoff_s(attempt);
        prop_assert!(d <= retry.max_backoff_s + 1e-9);
        prop_assert!(d >= retry.base_backoff_s - 1e-9);
        prop_assert!(retry.backoff_s(attempt + 1) >= d - 1e-9, "backoff must not shrink");

        let jittered = retry.jittered_backoff_s(attempt, unit);
        let half = retry.jitter_frac / 2.0;
        prop_assert!(jittered >= d * (1.0 - half) - 1e-9);
        prop_assert!(jittered <= d * (1.0 + half) + 1e-9);
    }

    /// Determinism: the same scenario seed and fault plan produce the same
    /// report, field for field.
    #[test]
    fn identical_seeds_give_identical_reports(
        plan in arb_fault_plan(),
        kind in arb_scheduler(),
        seed in 1u64..1000,
    ) {
        let scenario = Scenario::paper_default()
            .duration_secs(600)
            .seed(seed)
            .scheduler(kind)
            .faults(plan);
        prop_assert_eq!(scenario.run(), scenario.run());
    }
}
