//! Per-phase wall-clock profiling spans.
//!
//! Profiling answers "where does the harness spend its time", not "what
//! did the simulation decide" — so, unlike the journal and metrics
//! (which are deterministic simulated-time quantities), these spans read
//! the wall clock. To keep determinism intact, wall-clock readings
//! **never** flow into a `RunReport`, journal, or headline: they
//! accumulate in a process-wide atomics registry that is only ever
//! rendered as a flame-style text summary by `repro_all`.
//!
//! When profiling is disabled (the default), [`Span::enter`] is a single
//! relaxed atomic load and no clock is read.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A profiled phase of the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One full engine run (`run_engine_with_faults` and variants).
    EngineRun,
    /// `Scheduler::on_slot` calls (the per-slot piggyback decision).
    SchedulerSlot,
    /// `Scheduler::on_arrival` calls.
    SchedulerArrival,
    /// `Scheduler::on_tx_failure` calls (retry re-queueing).
    SchedulerRetry,
    /// Event-kernel batch skips over quiescent slot boundaries.
    EngineSkip,
}

const PHASE_COUNT: usize = 5;

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::EngineRun => 0,
            Phase::SchedulerSlot => 1,
            Phase::SchedulerArrival => 2,
            Phase::SchedulerRetry => 3,
            Phase::EngineSkip => 4,
        }
    }

    /// Stable display name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::EngineRun => "engine.run",
            Phase::SchedulerSlot => "scheduler.on_slot",
            Phase::SchedulerArrival => "scheduler.on_arrival",
            Phase::SchedulerRetry => "scheduler.on_tx_failure",
            Phase::EngineSkip => "engine.batch_skip",
        }
    }
}

const ALL_PHASES: [Phase; PHASE_COUNT] = [
    Phase::EngineRun,
    Phase::SchedulerSlot,
    Phase::SchedulerArrival,
    Phase::SchedulerRetry,
    Phase::EngineSkip,
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static CALLS: [AtomicU64; PHASE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static NANOS: [AtomicU64; PHASE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turns span collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being collected.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all accumulated calls and durations.
pub fn reset() {
    for i in 0..PHASE_COUNT {
        CALLS[i].store(0, Ordering::Relaxed);
        NANOS[i].store(0, Ordering::Relaxed);
    }
}

/// An RAII span: construct with [`Span::enter`] at the top of a phase;
/// the elapsed wall time is accumulated when it drops. A no-op (no clock
/// read) when profiling is disabled.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    active: Option<(Phase, Instant)>,
}

impl Span {
    /// Starts timing `phase` if profiling is enabled.
    pub fn enter(phase: Phase) -> Self {
        let active = if enabled() {
            Some((phase, Instant::now()))
        } else {
            None
        };
        Span { active }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((phase, started)) = self.active.take() {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let i = phase.index();
            CALLS[i].fetch_add(1, Ordering::Relaxed);
            NANOS[i].fetch_add(nanos, Ordering::Relaxed);
        }
    }
}

/// Accumulated totals for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase these totals belong to.
    pub phase: Phase,
    /// Completed spans.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub nanos: u64,
}

/// Reads the accumulated totals for every phase, in fixed order.
pub fn stats() -> Vec<PhaseStat> {
    ALL_PHASES
        .iter()
        .map(|&phase| PhaseStat {
            phase,
            calls: CALLS[phase.index()].load(Ordering::Relaxed),
            nanos: NANOS[phase.index()].load(Ordering::Relaxed),
        })
        .collect()
}

/// Renders a flame-style text summary: scheduler phases indented under
/// the engine phase, each with call count, total time, and share of the
/// engine total.
pub fn flame_summary() -> String {
    let stats = stats();
    let engine = stats[Phase::EngineRun.index()];
    let engine_nanos = engine.nanos.max(1);
    let mut out = String::from("phase profile (wall clock; never feeds results)\n");
    let line = |out: &mut String, indent: &str, s: PhaseStat| {
        let ms = s.nanos as f64 / 1e6;
        let pct = 100.0 * s.nanos as f64 / engine_nanos as f64;
        out.push_str(&format!(
            "{indent}{:<28} {:>10} calls {:>12.3} ms {:>6.1}%\n",
            s.phase.name(),
            s.calls,
            ms,
            pct
        ));
    };
    line(&mut out, "", engine);
    for &phase in &[
        Phase::SchedulerSlot,
        Phase::SchedulerArrival,
        Phase::SchedulerRetry,
        Phase::EngineSkip,
    ] {
        line(&mut out, "  ", stats[phase.index()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Profiling state is process-wide; keep everything in one test so
    // parallel test threads cannot interleave enable/reset.
    #[test]
    fn spans_accumulate_only_when_enabled() {
        reset();
        set_enabled(false);
        drop(Span::enter(Phase::EngineRun));
        assert_eq!(stats()[0].calls, 0);

        set_enabled(true);
        {
            let _engine = Span::enter(Phase::EngineRun);
            let _slot = Span::enter(Phase::SchedulerSlot);
        }
        set_enabled(false);

        let collected = stats();
        assert_eq!(collected[Phase::EngineRun.index()].calls, 1);
        assert_eq!(collected[Phase::SchedulerSlot.index()].calls, 1);

        let summary = flame_summary();
        assert!(summary.contains("engine.run"));
        assert!(summary.contains("scheduler.on_slot"));

        reset();
        assert_eq!(stats()[0].calls, 0);
    }
}
