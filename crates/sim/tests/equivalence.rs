//! Decision-path equivalence suite: the cached hot path of the hot-path
//! campaign (`ETrainScheduler::select` scratch reuse, O(1) counters,
//! Θ-gate early exit, pooled timelines, batched integration) must be
//! *bit-for-bit* invisible in every output the simulator can produce.
//!
//! Every seeded scenario runs twice — once on the cached decision path
//! and once with the retained from-scratch reference recompute
//! (`Scenario::reference_cost`, the builder form of
//! `ETRAIN_REFERENCE_COST=1`) — across all five schedulers, both engine
//! kernels, fault-free and faulty plans, with the strict oracle on and
//! the structured journal exported. Reports, their serialized JSON, and
//! the merged journals must match byte for byte.
//!
//! The quick tier runs in the default test pass; the exhaustive sweep is
//! `#[ignore]`d and executed by the CI `conformance` job
//! (`cargo test -q -- --ignored`).

use etrain_sim::oracle::OracleMode;
use etrain_sim::{conformance_kinds, CasePlan, EngineKind, Journal, ObsMode, Scenario};

/// Deterministic scenario generator, shared with conformance and chaos:
/// every knob a pure function of the seed, so a failing seed reproduces
/// exactly.
fn random_scenario(seed: u64, with_faults: bool) -> Scenario {
    CasePlan::from_seed(seed, with_faults).scenario()
}

/// Runs one seeded workload on both decision paths — across every
/// scheduler and both engine kernels — and demands byte-identical
/// reports and journals.
fn assert_decision_paths_equivalent(seed: u64, with_faults: bool) {
    let base = random_scenario(seed, with_faults)
        .oracle(OracleMode::Strict)
        .obs(ObsMode::Jsonl);
    for kind in conformance_kinds() {
        let scenario = base.clone().scheduler(kind);
        let traces = scenario.generate_traces();
        for engine in [EngineKind::Slot, EngineKind::Event] {
            let run = |reference: bool| {
                scenario
                    .clone()
                    .engine(engine)
                    .reference_cost(reference)
                    .try_run_journaled_on(&traces)
                    .unwrap_or_else(|e| {
                        panic!(
                            "strict run failed (seed {seed}, faults {with_faults}, \
                             scheduler {kind:?}, engine {engine}, reference {reference}): {e}"
                        )
                    })
            };
            let (cached_report, _, cached_journal) = run(false);
            let (reference_report, _, reference_journal) = run(true);

            assert_eq!(
                cached_report, reference_report,
                "decision paths diverged (seed {seed}, faults {with_faults}, \
                 scheduler {kind:?}, engine {engine})"
            );
            // Byte-identical persisted artifacts: the serialized report
            // (what BENCH_repro.json and checkpoints store) and the
            // merged journal export (what `ETRAIN_OBS=jsonl` writes).
            assert_eq!(
                serde_json::to_string(&cached_report).expect("report serializes"),
                serde_json::to_string(&reference_report).expect("report serializes"),
                "serialized reports diverged (seed {seed}, faults {with_faults}, \
                 scheduler {kind:?}, engine {engine})"
            );
            assert_eq!(
                cached_journal.as_ref().map(Journal::to_jsonl),
                reference_journal.as_ref().map(Journal::to_jsonl),
                "journals diverged (seed {seed}, faults {with_faults}, \
                 scheduler {kind:?}, engine {engine})"
            );
            assert!(
                cached_journal.is_some(),
                "jsonl obs mode must produce a journal"
            );
            let outcome = cached_report
                .oracle
                .as_ref()
                .expect("strict mode attaches outcome");
            assert!(outcome.is_clean(), "oracle violations under seed {seed}");
        }
    }
}

/// Quick tier: 4 seeds × {fault-free, faulty} × 5 schedulers × 2 kernels
/// × 2 decision paths = 160 journaled strict runs in the default pass.
#[test]
fn equivalence_quick_decision_paths_are_interchangeable() {
    for seed in 0..4 {
        assert_decision_paths_equivalent(seed, false);
        assert_decision_paths_equivalent(seed, true);
    }
}

/// Exhaustive tier for the CI conformance job: 20 seeds × {fault-free,
/// faulty} × 5 schedulers × 2 kernels × 2 decision paths = 800 journaled
/// strict runs.
#[test]
#[ignore = "exhaustive sweep; run with `cargo test -- --ignored` (CI conformance job)"]
fn equivalence_full_decision_paths_are_interchangeable() {
    for seed in 0..20 {
        assert_decision_paths_equivalent(seed, false);
        assert_decision_paths_equivalent(seed, true);
    }
}

/// The `ETRAIN_REFERENCE_COST` environment knob reaches
/// `Scenario::paper_default`. Safe to toggle concurrently with the other
/// tests in this binary: they override the flag per scenario via
/// `reference_cost(..)`, and the two paths are equivalent anyway — that
/// is the point of this suite.
#[test]
fn reference_cost_env_reaches_scenario_default() {
    std::env::set_var(etrain_sched::REFERENCE_COST_ENV, "reference");
    assert!(Scenario::paper_default().reference_cost_enabled());
    std::env::set_var(etrain_sched::REFERENCE_COST_ENV, "cached");
    assert!(!Scenario::paper_default().reference_cost_enabled());
    std::env::remove_var(etrain_sched::REFERENCE_COST_ENV);
    assert!(!Scenario::paper_default().reference_cost_enabled());
}
