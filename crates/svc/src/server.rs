//! A minimal std-TCP line-protocol front end for [`DurableService`].
//!
//! One request per line, one response per line, plain text — no
//! heavyweight dependencies, trivially driven from `nc`, a test, or the
//! chaos supervisor. Every state-changing verb carries an **explicit
//! timestamp** supplied by the client, mirroring the sans-IO core: the
//! daemon has no clock of its own, so a command stream replayed against
//! a recovered daemon lands on bit-for-bit the same state no matter how
//! long the crash took.
//!
//! Verbs (responses begin `OK` or `ERR`):
//!
//! ```text
//! PING
//! REGTRAIN <name>
//! REGCARGO <name> <mail|weibo|cloud> <deadline_s>
//! SUBMIT <client_id> <app> <up|down> <size_bytes> <now_s> [deadline_s]
//! HB <train> <now_s>
//! TICK <now_s>
//! REPORT <request> <ok|fail> <now_s>
//! CANCEL <request>
//! DRAIN
//! STATS | HEALTH | FPRINT | CHECKPOINT
//! QUIT
//! ```
//!
//! `SUBMIT` is idempotent on `client_id`: a resend (same key) is
//! answered from the dedup table with a `DUP`-prefixed copy of the
//! original outcome and no journal append, which is what makes
//! crash-retry ambiguity safe for clients.
//!
//! Overload posture: at most [`ServerConfig::max_connections`]
//! concurrent connections (excess get one `BUSY` line and a close — the
//! accept backlog is bounded), per-connection read/write timeouts so a
//! stalled client cannot pin a handler thread, and queue pressure inside
//! an accepted connection is handled by the core's `AdmissionConfig`
//! shed policies, reported through the typed `SUBMIT` responses.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use etrain_core::{
    CoreCommand, RequestId, RetryVerdict, TransmitDecision, TransmitRequest, TxResult,
};
use etrain_sched::{AppProfile, CostProfile};
use etrain_trace::{CargoAppId, TrainAppId};

use crate::error::SvcError;
use crate::service::DurableService;
use crate::state::{AdmissionSummary, SvcCommand, SvcOutcome};

/// Process exit code the daemon uses when the armed WAL fault hook
/// fires: the tail is damaged by design and continuing would apply a
/// command that was never durably journaled.
pub const FAULT_EXIT_CODE: i32 = 42;

/// Environment variable naming the listen address.
pub const SVC_ADDR_ENV: &str = "ETRAIN_SVC_ADDR";

/// Strict [`SVC_ADDR_ENV`] reader: `Ok(None)` when unset or empty, the
/// parsed socket address otherwise, `Err` for an unparseable value.
///
/// # Errors
///
/// Returns a description of the malformed address.
pub fn try_addr_from_env() -> Result<Option<SocketAddr>, String> {
    match std::env::var(SVC_ADDR_ENV) {
        Err(_) => Ok(None),
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse::<SocketAddr>()
            .map(Some)
            .map_err(|_| format!("invalid {SVC_ADDR_ENV} {raw:?} (expected host:port)")),
    }
}

/// Lenient [`SVC_ADDR_ENV`] reader for library contexts: unparseable
/// values warn once on stderr and fall back to `None` (binaries use
/// [`try_addr_from_env`] and fail fast).
pub fn addr_from_env() -> Option<SocketAddr> {
    try_addr_from_env().unwrap_or_else(|reason| {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!("warning: ignoring {reason}; no listen address configured");
        });
        None
    })
}

/// Tuning of the TCP front end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 binds an ephemeral port (the bound
    /// address is reported by [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Concurrent-connection bound; connection `max + 1` is told `BUSY`
    /// and closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap_or_else(|_| {
                SocketAddr::from(([127, 0, 0, 1], 0)) // unreachable: literal parses
            }),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_connections: 32,
        }
    }
}

/// The accept loop: owns the listener and the shared service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    service: Arc<Mutex<DurableService>>,
    active: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and wraps the service for shared access.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(cfg: ServerConfig, service: DurableService) -> std::io::Result<Self> {
        let listener = TcpListener::bind(cfg.addr)?;
        Ok(Server {
            listener,
            cfg,
            service: Arc::new(Mutex::new(service)),
            active: Arc::new(AtomicUsize::new(0)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that makes [`Server::run`] return at the next accept poll
    /// (used by in-process tests; the daemon runs until killed).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accepts connections until the shutdown flag is raised, spawning
    /// one handler thread per accepted connection (bounded by
    /// [`ServerConfig::max_connections`]).
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept failures.
    pub fn run(&self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.active.load(Ordering::Relaxed) >= self.cfg.max_connections {
                        let _ = reject_busy(stream, self.cfg.write_timeout);
                        continue;
                    }
                    self.active.fetch_add(1, Ordering::Relaxed);
                    let service = Arc::clone(&self.service);
                    let active = Arc::clone(&self.active);
                    let cfg = self.cfg.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &service, &cfg);
                        active.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn reject_busy(mut stream: TcpStream, write_timeout: Duration) -> std::io::Result<()> {
    stream.set_write_timeout(Some(write_timeout))?;
    stream.write_all(b"BUSY\n")
}

fn handle_connection(
    stream: TcpStream,
    service: &Mutex<DurableService>,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {}
            Err(_) => return Ok(()), // timeout or reset: drop the connection
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            let _ = writer.write_all(b"OK BYE\n");
            return Ok(());
        }
        let response = execute_line(request, service);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
    }
}

fn lock(service: &Mutex<DurableService>) -> std::sync::MutexGuard<'_, DurableService> {
    // A poisoned lock means another handler panicked mid-command; the
    // journal is still consistent (append happens before apply), so
    // serving reads and further appends remains sound.
    service
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Executes one protocol line against the service, returning the
/// response line (without the trailing newline).
///
/// Public so tests and the chaos harness can drive the protocol without
/// a socket; the daemon's fault-crash behaviour (exiting with
/// [`FAULT_EXIT_CODE`]) lives here so a mid-append fault kills the
/// process no matter which connection carried the triggering command.
pub fn execute_line(request: &str, service: &Mutex<DurableService>) -> String {
    match dispatch(request, service) {
        Ok(response) => response,
        Err(SvcError::FaultInjected { at_record }) => {
            // The WAL tail is damaged by design; applying (or answering)
            // would invent un-journaled state. Crash like the SIGKILL
            // this hook stands in for.
            eprintln!("etrain-svcd: WAL fault hook fired at record {at_record}; crashing");
            std::process::exit(FAULT_EXIT_CODE);
        }
        Err(e) => format!("ERR {e}"),
    }
}

fn parse_f64(token: &str, what: &str) -> Result<f64, SvcError> {
    token
        .parse::<f64>()
        .map_err(|_| bad_request(format!("{what} {token:?} is not a number")))
}

fn parse_u64(token: &str, what: &str) -> Result<u64, SvcError> {
    token
        .parse::<u64>()
        .map_err(|_| bad_request(format!("{what} {token:?} is not a non-negative integer")))
}

fn bad_request(msg: String) -> SvcError {
    SvcError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))
}

fn format_decisions(decisions: &[TransmitDecision]) -> String {
    let mut out = format!("OK DECISIONS {}", decisions.len());
    for d in decisions {
        out.push_str(&format!(" {}@{}:{}", d.request.0, d.app.0, d.size_bytes));
    }
    out
}

fn format_summary(prefix: &str, summary: &AdmissionSummary) -> String {
    match summary {
        AdmissionSummary::Admitted { id } => format!("OK {prefix}SUBMITTED {}", id.0),
        AdmissionSummary::AdmittedWithEviction { id, evicted } => {
            format!("OK {prefix}SUBMITTED {} EVICTED {}", id.0, evicted.0)
        }
        AdmissionSummary::AdmittedWithFlush { id, flushed } => {
            format!(
                "OK {prefix}SUBMITTED {} FLUSHED {}",
                id.0, flushed.request.0
            )
        }
        AdmissionSummary::Rejected => format!("OK {prefix}REJECTED"),
    }
}

fn dispatch(request: &str, service: &Mutex<DurableService>) -> Result<String, SvcError> {
    let tokens: Vec<&str> = request.split_whitespace().collect();
    let verb = tokens[0].to_ascii_uppercase();
    let args = &tokens[1..];
    match (verb.as_str(), args) {
        ("PING", []) => Ok("OK PONG".into()),
        ("REGTRAIN", [name]) => {
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::RegisterTrain {
                name: (*name).to_string(),
            }))?;
            match outcome {
                SvcOutcome::Core(etrain_core::CommandOutcome::TrainRegistered { train }) => {
                    Ok(format!("OK TRAIN {}", train.0))
                }
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("REGCARGO", [name, kind, deadline]) => {
            let deadline_s = parse_f64(deadline, "deadline")?;
            if !(deadline_s.is_finite() && deadline_s > 0.0) {
                return Err(bad_request(format!(
                    "deadline {deadline:?} must be positive"
                )));
            }
            let cost = match kind.to_ascii_lowercase().as_str() {
                "mail" => CostProfile::mail(deadline_s),
                "weibo" => CostProfile::weibo(deadline_s),
                "cloud" => CostProfile::cloud(deadline_s),
                other => {
                    return Err(bad_request(format!(
                        "unknown profile {other:?} (expected mail, weibo, or cloud)"
                    )))
                }
            };
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::RegisterCargo {
                profile: AppProfile::new((*name).to_string(), cost),
            }))?;
            match outcome {
                SvcOutcome::Core(etrain_core::CommandOutcome::CargoRegistered { app }) => {
                    Ok(format!("OK CARGO {}", app.0))
                }
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("SUBMIT", [client_id, app, dir, size, now_s, rest @ ..]) if rest.len() <= 1 => {
            let app = CargoAppId(parse_u64(app, "app")? as usize);
            let size_bytes = parse_u64(size, "size")?;
            let now_s = parse_f64(now_s, "time")?;
            let mut request = match dir.to_ascii_lowercase().as_str() {
                "up" => TransmitRequest::upload(size_bytes),
                "down" => TransmitRequest::download(size_bytes),
                other => {
                    return Err(bad_request(format!(
                        "unknown direction {other:?} (expected up or down)"
                    )))
                }
            };
            if let [deadline] = rest {
                request = request.with_deadline(parse_f64(deadline, "deadline")?);
            }
            let outcome =
                lock(service).submit_idem((*client_id).to_string(), app, request, now_s)?;
            match outcome {
                SvcOutcome::Submitted { summary } => Ok(format_summary("", &summary)),
                SvcOutcome::Duplicate { summary } => Ok(format_summary("DUP ", &summary)),
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("HB", [train, now_s]) => {
            let train = TrainAppId(parse_u64(train, "train")? as usize);
            let now_s = parse_f64(now_s, "time")?;
            let outcome =
                lock(service).apply(SvcCommand::Core(CoreCommand::Heartbeat { train, now_s }))?;
            match outcome {
                SvcOutcome::Core(o) => Ok(format_decisions(o.decisions())),
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("TICK", [now_s]) => {
            let now_s = parse_f64(now_s, "time")?;
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::Tick { now_s }))?;
            match outcome {
                SvcOutcome::Core(o) => Ok(format_decisions(o.decisions())),
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("REPORT", [request_id, result, now_s]) => {
            let request = RequestId(parse_u64(request_id, "request")?);
            let now_s = parse_f64(now_s, "time")?;
            let result = match result.to_ascii_lowercase().as_str() {
                "ok" => TxResult::Delivered,
                "fail" => TxResult::Failed,
                other => {
                    return Err(bad_request(format!(
                        "unknown result {other:?} (expected ok or fail)"
                    )))
                }
            };
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::ReportResult {
                request,
                result,
                now_s,
            }))?;
            match outcome {
                SvcOutcome::Core(etrain_core::CommandOutcome::Verdict { verdict }) => {
                    Ok(match verdict {
                        RetryVerdict::Delivered => "OK VERDICT DELIVERED".into(),
                        RetryVerdict::RetryScheduled { resume_at_s } => {
                            format!("OK VERDICT RETRY {resume_at_s}")
                        }
                        RetryVerdict::Abandoned => "OK VERDICT ABANDONED".into(),
                    })
                }
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("CANCEL", [request_id]) => {
            let request = RequestId(parse_u64(request_id, "request")?);
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::Cancel { request }))?;
            match outcome {
                SvcOutcome::Core(etrain_core::CommandOutcome::Cancelled { withdrawn }) => {
                    Ok(format!("OK CANCELLED {withdrawn}"))
                }
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("DRAIN", []) => {
            let outcome = lock(service).apply(SvcCommand::Core(CoreCommand::Drain))?;
            match outcome {
                SvcOutcome::Core(o) => Ok(format_decisions(o.decisions())),
                other => Ok(format!("ERR unexpected outcome {other:?}")),
            }
        }
        ("STATS", []) => {
            let guard = lock(service);
            let stats = guard.state().stats();
            let json = serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into());
            Ok(format!("OK STATS {json}"))
        }
        ("HEALTH", []) => {
            let guard = lock(service);
            Ok(format!(
                "OK HEALTH {} transitions={} records={} fingerprint={:016x}",
                guard.state().health(),
                guard.state().transitions().len(),
                guard.records(),
                guard.fingerprint(),
            ))
        }
        ("FPRINT", []) => {
            let guard = lock(service);
            Ok(format!("OK FPRINT {:016x}", guard.fingerprint()))
        }
        ("CHECKPOINT", []) => {
            let mut guard = lock(service);
            let ckpt = guard.checkpoint()?;
            Ok(format!(
                "OK CHECKPOINT records={} fingerprint={:016x}",
                ckpt.records, ckpt.fingerprint
            ))
        }
        _ => Err(bad_request(format!("unrecognized request {request:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DurableService;
    use crate::state::SvcHealthConfig;
    use crate::wal::WalConfig;
    use etrain_core::CoreConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "etrain-server-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service(tag: &str) -> DurableService {
        let mut cfg = WalConfig::new(tmp_dir(tag));
        cfg.fsync = false;
        let (svc, _) = DurableService::open(
            cfg,
            CoreConfig {
                theta: 5.0,
                ..CoreConfig::default()
            },
            SvcHealthConfig::default(),
        )
        .unwrap();
        svc
    }

    fn roundtrip(lines: &[&str], svc: &Mutex<DurableService>) -> Vec<String> {
        lines.iter().map(|l| execute_line(l, svc)).collect()
    }

    #[test]
    fn protocol_walkthrough_without_sockets() {
        let svc = Mutex::new(service("proto"));
        let out = roundtrip(
            &[
                "PING",
                "REGTRAIN WeChat",
                "REGCARGO Mail mail 300",
                "HB 0 0.0",
                "SUBMIT c-1 0 up 4000 1.0",
                "SUBMIT c-1 0 up 4000 2.0",
                "TICK 3.0",
                "HB 0 270.0",
                "STATS",
                "HEALTH",
            ],
            &svc,
        );
        assert_eq!(out[0], "OK PONG");
        assert_eq!(out[1], "OK TRAIN 0");
        assert_eq!(out[2], "OK CARGO 0");
        assert_eq!(out[3], "OK DECISIONS 0");
        assert_eq!(out[4], "OK SUBMITTED 0");
        assert_eq!(out[5], "OK DUP SUBMITTED 0", "resend answered from table");
        assert_eq!(out[6], "OK DECISIONS 0", "deferred below theta");
        assert!(out[7].starts_with("OK DECISIONS 1 0@0:4000"), "{}", out[7]);
        assert!(out[8].starts_with("OK STATS {"), "{}", out[8]);
        assert!(out[9].starts_with("OK HEALTH healthy"), "{}", out[9]);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let svc = Mutex::new(service("badreq"));
        for (line, needle) in [
            ("NONSENSE", "unrecognized"),
            ("SUBMIT", "unrecognized"),
            ("SUBMIT a b up 1 2", "not a non-negative integer"),
            ("SUBMIT a 0 sideways 1 2", "unknown direction"),
            ("REGCARGO X granite 30", "unknown profile"),
            ("HB 0 soon", "not a number"),
            ("REPORT 0 maybe 1", "unknown result"),
            ("REGCARGO X mail -3", "must be positive"),
        ] {
            let out = execute_line(line, &svc);
            assert!(out.starts_with("ERR"), "{line} -> {out}");
            assert!(out.contains(needle), "{line} -> {out}");
        }
        // Unknown train: journaled core rejection, still an ERR line.
        let out = execute_line("HB 9 1.0", &svc);
        assert!(out.starts_with("ERR core rejected"), "{out}");
    }

    #[test]
    fn tcp_server_serves_and_bounds_connections() {
        let svc = service("tcp");
        let server = Server::bind(
            ServerConfig {
                max_connections: 1,
                read_timeout: Duration::from_millis(2_000),
                write_timeout: Duration::from_millis(2_000),
                ..ServerConfig::default()
            },
            svc,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"PING\n").unwrap();
        let mut reader = BufReader::new(first.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK PONG");

        // While the first connection is held open, a second one is shed.
        let second = TcpStream::connect(addr).unwrap();
        let mut second_reader = BufReader::new(second);
        let mut busy = String::new();
        second_reader.read_line(&mut busy).unwrap();
        assert_eq!(busy.trim(), "BUSY");

        first.write_all(b"QUIT\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK BYE");
        drop(reader);
        drop(first);

        // After the slot frees, new connections are served again.
        std::thread::sleep(Duration::from_millis(50));
        let mut third = TcpStream::connect(addr).unwrap();
        third.write_all(b"PING\nQUIT\n").unwrap();
        let mut third_reader = BufReader::new(third);
        let mut pong = String::new();
        third_reader.read_line(&mut pong).unwrap();
        assert_eq!(pong.trim(), "OK PONG");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn addr_env_knob_parses_strictly() {
        // No env manipulation (tests run in parallel); exercise the
        // parser the knob delegates to.
        assert!("127.0.0.1:7070".parse::<SocketAddr>().is_ok());
        assert!("not-an-addr".parse::<SocketAddr>().is_err());
    }
}
