fn main() {
    etrain_bench::run_binary("ablate_faults");
}
