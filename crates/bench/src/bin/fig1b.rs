//! Reproduction binary for experiment `fig1b` — see DESIGN.md for the
//! paper artifact it regenerates. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("fig1b");
}
