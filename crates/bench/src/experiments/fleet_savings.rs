//! Fleet savings: population-level energy reclaimed by eTrain.
//!
//! Two fleets over the *same* device population (same fleet seed, same
//! class mix, same traces — the packets and heartbeats of device `d`
//! depend only on `(fleet seed, d)`): one running the transmit-on-arrival
//! baseline, one running eTrain at the Fig. 11 operating point
//! (Θ = 20, k = 20, Weibo with a 30 s deadline, 600 s sessions). The
//! difference of per-device means is therefore a paired comparison, not
//! two random draws.
//!
//! The projection headline scales the per-app-use saving to the paper's
//! motivating population: `saved_mj_per_million_user_day` assumes
//! [`APP_USES_PER_DAY`] app uses per device per day and a million
//! devices, reported in megajoules. Fully deterministic — this experiment
//! is part of the golden snapshot.

use crate::ExperimentResult;
use etrain_fleet::{class_label, run_fleet, FleetConfig, FleetResult};
use etrain_sim::SchedulerKind;
use etrain_trace::user::Activeness;

use super::{fleet_devices, j, pct, s};

/// App uses per device per day assumed by the million-device projection:
/// one 600-second session per waking-plus-standby hour, matching the
/// always-on IM usage the paper's user study measures.
pub const APP_USES_PER_DAY: f64 = 24.0;

/// Runs the paired baseline/eTrain fleets and tabulates the savings.
pub fn run(quick: bool) -> ExperimentResult {
    let devices = fleet_devices(quick, 300, 30_000);
    let base_config = FleetConfig::paper_default(devices).seed(42);
    let baseline = run_fleet(&base_config.clone().scheduler(SchedulerKind::Baseline));
    let etrain = run_fleet(&base_config);

    let mut table = etrain_sim::Table::new(
        format!(
            "Fleet savings — {} devices, paired baseline vs {} (per app use)",
            devices, etrain.scheduler
        ),
        &[
            "class",
            "devices",
            "baseline_mean_j",
            "etrain_mean_j",
            "saving",
            "etrain_p95_j",
            "etrain_mean_delay_s",
        ],
    );
    let saving_of = |b: f64, e: f64| if b > 0.0 { (b - e) / b } else { 0.0 };
    let class_row = |class: Activeness, b: &FleetResult, e: &FleetResult| {
        let bt = b.columns.class_tally(class);
        let et = e.columns.class_tally(class);
        let mut samples = e.columns.class_extra_energies(class);
        let p95 = if samples.is_empty() {
            0.0
        } else {
            etrain_sim::Percentiles::from_samples_mut(&mut samples).p95
        };
        vec![
            class_label(class).to_owned(),
            bt.devices.to_string(),
            j(bt.mean_extra_j()),
            j(et.mean_extra_j()),
            pct(saving_of(bt.mean_extra_j(), et.mean_extra_j())),
            j(p95),
            s(et.mean_delay_s()),
        ]
    };
    for class in Activeness::all() {
        table.push_row_strings(class_row(class, &baseline, &etrain));
    }
    let fleet_saving = saving_of(baseline.fleet.mean_extra_j(), etrain.fleet.mean_extra_j());
    let fleet_p95 = {
        let mut samples = etrain.columns.extra_energy_j.clone();
        etrain_sim::Percentiles::from_samples_mut(&mut samples).p95
    };
    table.push_row_strings(vec![
        "fleet".to_owned(),
        baseline.fleet.devices.to_string(),
        j(baseline.fleet.mean_extra_j()),
        j(etrain.fleet.mean_extra_j()),
        pct(fleet_saving),
        j(fleet_p95),
        s(etrain.fleet.mean_delay_s()),
    ]);

    let saved_j_per_use = baseline.fleet.mean_extra_j() - etrain.fleet.mean_extra_j();
    ExperimentResult::from_tables(vec![table])
        .headline("fleet_saving_pct", fleet_saving * 100.0, "%")
        .headline("fleet_mean_saved_j_per_use", saved_j_per_use, "J")
        .headline(
            // saved J/use × uses/day × 10⁶ devices, in MJ: the ×10⁶ and
            // the J→MJ conversion cancel.
            "fleet_saved_mj_per_million_user_day",
            saved_j_per_use * APP_USES_PER_DAY,
            "MJ",
        )
        .headline(
            "fleet_etrain_mean_delay_s",
            etrain.fleet.mean_delay_s(),
            "s",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_fleets_show_a_positive_saving() {
        let result = run(true);
        assert_eq!(result.tables.len(), 1);
        assert_eq!(
            result.tables[0].len(),
            4,
            "three classes plus the fleet row"
        );
        let saving = result
            .headlines
            .iter()
            .find(|h| h.metric == "fleet_saving_pct")
            .expect("saving headline")
            .value;
        assert!(
            saving > 0.0 && saving < 100.0,
            "eTrain must reclaim energy at fleet scale, got {saving}%"
        );
        let projected = result
            .headlines
            .iter()
            .find(|h| h.metric == "fleet_saved_mj_per_million_user_day")
            .expect("projection headline")
            .value;
        assert!(projected > 0.0);
    }
}
