//! Typed errors of the durable service runtime.

use etrain_core::CoreError;

/// Everything that can go wrong in the durable service layer.
#[derive(Debug)]
pub enum SvcError {
    /// The deterministic core rejected the command (unknown app,
    /// non-monotone timestamp, unknown request). The command was still
    /// journaled — replay hits the same deterministic error and the
    /// same (at most clock-advancing) mutation.
    Core(CoreError),
    /// A write-ahead-log I/O operation failed.
    Io(std::io::Error),
    /// The WAL fault hook fired on this append: the log tail is now
    /// damaged by construction and the process must crash (the daemon
    /// exits; in-process harnesses drop the service), exactly like a
    /// SIGKILL mid-`write`.
    FaultInjected {
        /// The record index the fault hook targeted.
        at_record: u64,
    },
    /// After replaying the journal prefix the checkpoint covers, the
    /// reconstructed state's fingerprint did not match the checkpoint's.
    /// The verified-checksum prefix itself is inconsistent — recovery
    /// must not proceed silently.
    CheckpointMismatch {
        /// Records the checkpoint claims to cover.
        records: u64,
        /// Fingerprint the checkpoint recorded.
        expected: u64,
        /// Fingerprint the replayed state produced.
        actual: u64,
    },
    /// The checkpoint covers more records than the journal holds — the
    /// journal lost durable, checkpointed history (e.g. a deleted
    /// segment), which zero-loss recovery cannot paper over.
    CheckpointAhead {
        /// Records the checkpoint claims to cover.
        records: u64,
        /// Records the journal actually replayed.
        replayed: u64,
    },
    /// A journaled payload passed its checksum but did not decode as a
    /// command — the journal was written by something other than this
    /// service version.
    UndecodableRecord {
        /// Zero-based index of the offending record.
        index: u64,
    },
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::Core(e) => write!(f, "core rejected command: {e}"),
            SvcError::Io(e) => write!(f, "WAL I/O error: {e}"),
            SvcError::FaultInjected { at_record } => {
                write!(f, "WAL fault hook fired at record {at_record}; crashing")
            }
            SvcError::CheckpointMismatch {
                records,
                expected,
                actual,
            } => write!(
                f,
                "checkpoint over {records} records expected fingerprint \
                 {expected:016x} but replay produced {actual:016x}"
            ),
            SvcError::CheckpointAhead { records, replayed } => write!(
                f,
                "checkpoint covers {records} records but the journal only \
                 replayed {replayed}"
            ),
            SvcError::UndecodableRecord { index } => {
                write!(f, "journal record {index} verified but did not decode")
            }
        }
    }
}

impl std::error::Error for SvcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvcError::Core(e) => Some(e),
            SvcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SvcError {
    fn from(e: CoreError) -> Self {
        SvcError::Core(e)
    }
}

impl From<std::io::Error> for SvcError {
    fn from(e: std::io::Error) -> Self {
        SvcError::Io(e)
    }
}
