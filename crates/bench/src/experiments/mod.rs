//! One module per reproduced table/figure plus the ablations.

pub mod ablate_dormancy;
pub mod ablate_faults;
pub mod ablate_jitter;
pub mod ablate_k;
pub mod ablate_overload;
pub mod ablate_prediction;
pub mod ablate_radio;
pub mod capture_study;
pub mod chaos;
pub mod engine_speedup;
pub mod explain;
pub mod ext_day;
pub mod ext_grid;
pub mod ext_push_poll;
pub mod fig10a;
pub mod fig10b;
pub mod fig10c;
pub mod fig11;
pub mod fig1a;
pub mod fig1b;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7a;
pub mod fig7b;
pub mod fig8a;
pub mod fig8b;
pub mod fleet_savings;
pub mod fleet_throughput;
pub mod hotpath_speedup;
pub mod offline_gap;
pub mod svc_recovery;
pub mod table1;

use etrain_sim::Scenario;

/// The standard 2-hour paper scenario (λ = 0.08, three trains, synthetic
/// drive trace), shortened in quick mode.
pub(crate) fn paper_base(quick: bool) -> Scenario {
    Scenario::paper_default()
        .duration_secs(if quick { 2400 } else { 7200 })
        .seed(7)
}

/// Formats joules with one decimal.
pub(crate) fn j(value: f64) -> String {
    format!("{value:.1}")
}

/// Formats seconds with one decimal.
pub(crate) fn s(value: f64) -> String {
    format!("{value:.1}")
}

/// Formats a ratio as a percentage with one decimal.
pub(crate) fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Resolves a fleet experiment's device count: the `ETRAIN_FLEET_SIZE`
/// override when parseable, else the tier default. Lenient here (library
/// context); bench binaries fail fast on bad values through
/// [`crate::validate_env_knobs`].
pub(crate) fn fleet_devices(quick: bool, quick_default: u64, full_default: u64) -> u64 {
    let raw = std::env::var(etrain_fleet::FLEET_SIZE_ENV).ok();
    etrain_fleet::try_fleet_size_from_env(raw.as_deref())
        .unwrap_or(None)
        .unwrap_or(if quick { quick_default } else { full_default })
}
