//! Fig. 11: energy saved by user activeness.
//!
//! Paper methodology: 10-minute Luna Weibo app-use traces, categorized as
//! active (>20 uploads per use), moderate (10–20) and inactive (<10), are
//! replayed with and without eTrain (Θ = 0.2, k = 20, Weibo deadline 30 s,
//! 3 train apps). Paper results: eTrain saves 227.9 J (23.1 %) for active
//! users, 134.5 J (19.4 %) for moderate, 63.2 J (13.3 %) for inactive —
//! more uploads mean more cargo to piggyback.

use crate::ExperimentResult;
use etrain_apps::replay::to_packets;
use etrain_sched::{AppProfile, CostProfile};
use etrain_sim::{BandwidthSource, Scenario, SchedulerKind, Table};
use etrain_trace::user::{generate_app_use, Activeness};
use etrain_trace::CargoAppId;

use super::{j, pct};

/// Runs the Fig. 11 reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let users_per_category = if quick { 3 } else { 10 };
    // The paper states "Θ = k = 20 (maximum number of packets allowed to
    // piggyback); and the deadline for Weibo is 30 seconds" — we take
    // Θ = 20 and k = 20 literally. With the tight 30 s deadline this is a
    // deep-batching operating point: the cost gate stays open across
    // consecutive slots, so leaks drain in bursts that share one tail.
    let theta = 20.0;
    let profiles = vec![AppProfile::new("Weibo", CostProfile::weibo(30.0))];

    let mut table = Table::new(
        "Fig. 11 — energy saved by user activeness (10-minute app uses)",
        &[
            "category",
            "users",
            "uploads_avg",
            "without_etrain_j",
            "with_etrain_j",
            "saved_j",
            "saved",
        ],
    );
    for category in Activeness::all() {
        let mut base_total = 0.0;
        let mut etrain_total = 0.0;
        let mut uploads = 0usize;
        for user in 0..users_per_category {
            let trace = generate_app_use(user, category, 42).normalized_to(600.0);
            uploads += trace.upload_count();
            let packets = to_packets(&trace, CargoAppId(0));
            let scenario = Scenario::paper_default()
                .duration_secs(600)
                .profiles(profiles.clone())
                .packets(packets)
                .bandwidth(BandwidthSource::Constant(450_000.0))
                .seed(u64::from(user));
            base_total += scenario
                .clone()
                .scheduler(SchedulerKind::Baseline)
                .run()
                .extra_energy_j;
            etrain_total += scenario
                .scheduler(SchedulerKind::ETrain { theta, k: Some(20) })
                .run()
                .extra_energy_j;
        }
        let n = f64::from(users_per_category);
        table.push_row_strings(vec![
            category.to_string(),
            users_per_category.to_string(),
            format!("{:.1}", uploads as f64 / n),
            j(base_total / n),
            j(etrain_total / n),
            j((base_total - etrain_total) / n),
            pct(1.0 - etrain_total / base_total),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "active_user_saved_j",
        0,
        0,
        "saved_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_active_users_save_more_joules() {
        let tables = run(true).tables;
        let saved: Vec<f64> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').nth(5).unwrap().parse().unwrap())
            .collect();
        assert_eq!(saved.len(), 3);
        assert!(
            saved.iter().all(|&s| s > 0.0),
            "all savings positive: {saved:?}"
        );
        assert!(
            saved[0] > saved[2],
            "active users must save more joules than inactive: {saved:?}"
        );
    }

    #[test]
    fn etrain_never_costs_more() {
        let tables = run(true).tables;
        for row in tables[0].to_csv().lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let without: f64 = cells[3].parse().unwrap();
            let with: f64 = cells[4].parse().unwrap();
            assert!(with <= without, "{row}");
        }
    }
}
