//! Models of the paper's three cargo applications.

use etrain_sched::{AppProfile, CostProfile};
use etrain_trace::rng::TruncatedNormal;
use serde::{Deserialize, Serialize};

/// Which of the paper's cargo apps a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CargoKind {
    /// eTrain Mail — "one of the most widely used type of mobile
    /// applications".
    Mail,
    /// Luna Weibo — "the representation of SNS applications".
    Weibo,
    /// eTrain Cloud — "applications that need to transmit large amount of
    /// delay-tolerant data".
    Cloud,
}

impl std::fmt::Display for CargoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CargoKind::Mail => "Mail",
            CargoKind::Weibo => "Weibo",
            CargoKind::Cloud => "Cloud",
        };
        f.write_str(name)
    }
}

/// One cargo application: its eTrain registration profile and its
/// request-size model.
///
/// # Examples
///
/// ```
/// use etrain_apps::{CargoAppModel, CargoKind};
///
/// let mail = CargoAppModel::mail();
/// assert_eq!(mail.kind, CargoKind::Mail);
/// assert_eq!(mail.profile.name, "Mail");
/// assert_eq!(mail.size_model.min(), 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CargoAppModel {
    /// Which app this is.
    pub kind: CargoKind,
    /// The delay-cost profile the app registers with eTrain.
    pub profile: AppProfile,
    /// The app's packet-size distribution (paper Sec. VI-A).
    pub size_model: TruncatedNormal,
}

impl CargoAppModel {
    /// eTrain Mail: profile f1 (free until the deadline, then linear),
    /// deadline 300 s, sizes mean 5 KB / min 1 KB.
    pub fn mail() -> Self {
        CargoAppModel {
            kind: CargoKind::Mail,
            profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
            size_model: TruncatedNormal::from_mean_min(5_000.0, 1_000.0),
        }
    }

    /// Luna Weibo: profile f2 (linear until the deadline, then constant),
    /// deadline 120 s, sizes mean 2 KB / min 100 B.
    pub fn weibo() -> Self {
        CargoAppModel {
            kind: CargoKind::Weibo,
            profile: AppProfile::new("Weibo", CostProfile::weibo(120.0)),
            size_model: TruncatedNormal::from_mean_min(2_000.0, 100.0),
        }
    }

    /// eTrain Cloud: profile f3 (linear, then 3× steeper), deadline
    /// 600 s, sizes mean 100 KB / min 10 KB.
    pub fn cloud() -> Self {
        CargoAppModel {
            kind: CargoKind::Cloud,
            profile: AppProfile::new("Cloud", CostProfile::cloud(600.0)),
            size_model: TruncatedNormal::from_mean_min(100_000.0, 10_000.0),
        }
    }

    /// All three models in the paper's order (Mail, Weibo, Cloud —
    /// matching [`AppProfile::paper_defaults`]).
    pub fn paper_trio() -> Vec<CargoAppModel> {
        vec![
            CargoAppModel::mail(),
            CargoAppModel::weibo(),
            CargoAppModel::cloud(),
        ]
    }

    /// Returns this model with a different deadline (controlled
    /// experiments override deadlines, e.g. Weibo 30 s in Fig. 11).
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.profile.cost = self.profile.cost.with_deadline(deadline_s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trio_matches_scheduler_defaults() {
        let models = CargoAppModel::paper_trio();
        let profiles = AppProfile::paper_defaults();
        for (model, profile) in models.iter().zip(&profiles) {
            assert_eq!(&model.profile, profile);
        }
    }

    #[test]
    fn size_models_match_paper_table() {
        assert_eq!(CargoAppModel::mail().size_model.mean(), 5_000.0);
        assert_eq!(CargoAppModel::weibo().size_model.min(), 100.0);
        assert_eq!(CargoAppModel::cloud().size_model.mean(), 100_000.0);
    }

    #[test]
    fn deadline_override() {
        let weibo = CargoAppModel::weibo().with_deadline(30.0);
        assert_eq!(weibo.profile.cost.deadline_s(), 30.0);
        assert_eq!(weibo.kind, CargoKind::Weibo);
    }

    #[test]
    fn kind_display() {
        assert_eq!(CargoKind::Cloud.to_string(), "Cloud");
    }
}
