use serde::{Deserialize, Serialize};

use crate::error::RadioError;
use crate::params::RadioParams;
use crate::power::PowerTrace;
use crate::tail::{analytic_extra_energy_j, merge_busy_periods, merge_busy_periods_into};

/// RRC power state of the cellular interface (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrcState {
    /// Low-power idle state (no channel allocated).
    Idle,
    /// Moderate-power Forward Access Channel state.
    Fach,
    /// High-power Dedicated Channel state (transmitting, or DCH tail).
    Dch,
}

impl RrcState {
    /// Absolute device power of this state in milliwatts.
    pub fn power_mw(self, params: &RadioParams) -> f64 {
        match self {
            RrcState::Idle => params.idle_mw(),
            RrcState::Fach => params.fach_mw(),
            RrcState::Dch => params.dch_mw(),
        }
    }

    /// Power above idle in milliwatts (0 for [`RrcState::Idle`]).
    pub fn extra_power_mw(self, params: &RadioParams) -> f64 {
        self.power_mw(params) - params.idle_mw()
    }
}

impl std::fmt::Display for RrcState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RrcState::Idle => "IDLE",
            RrcState::Fach => "FACH",
            RrcState::Dch => "DCH",
        };
        f.write_str(name)
    }
}

/// One data or heartbeat transmission occupying the radio.
///
/// `start_s` is when the transmission begins (seconds since the start of the
/// scenario) and `duration_s` how long it keeps the radio busy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmission {
    /// Start time in seconds.
    pub start_s: f64,
    /// Busy duration in seconds.
    pub duration_s: f64,
}

impl Transmission {
    /// Creates a transmission starting at `start_s` lasting `duration_s`.
    pub fn new(start_s: f64, duration_s: f64) -> Self {
        Transmission {
            start_s,
            duration_s,
        }
    }

    /// End time of the transmission in seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Validates that the transmission has finite, non-negative timing.
    ///
    /// # Errors
    ///
    /// Returns [`RadioError::InvalidTransmission`] on negative or non-finite
    /// start/duration.
    pub fn validate(&self) -> Result<(), RadioError> {
        if !self.start_s.is_finite()
            || !self.duration_s.is_finite()
            || self.start_s < 0.0
            || self.duration_s < 0.0
        {
            return Err(RadioError::InvalidTransmission {
                start_s: self.start_s,
                duration_s: self.duration_s,
            });
        }
        Ok(())
    }
}

/// A maximal interval during which the radio stays in one state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSegment {
    /// Segment start time in seconds.
    pub start_s: f64,
    /// Segment end time in seconds.
    pub end_s: f64,
    /// The state held throughout the segment.
    pub state: RrcState,
}

impl StateSegment {
    /// Length of the segment in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Offline RRC state timeline over `[0, horizon_s]` derived from a set of
/// transmissions.
///
/// The timeline applies the demotion rules of the paper's Fig. 4: the radio
/// is in DCH while busy and for δ_D afterwards, in FACH for the following
/// δ_F, then IDLE — unless another transmission re-promotes it. It is the
/// reproduction's stand-in for the Monsoon power-monitor capture: exact
/// piecewise energy integration plus sampled [`PowerTrace`] export.
///
/// # Examples
///
/// ```
/// use etrain_radio::{RadioParams, RrcState, Timeline, Transmission};
///
/// let p = RadioParams::galaxy_s4_3g();
/// let tl = Timeline::from_transmissions(&p, &[Transmission::new(10.0, 2.0)], 60.0);
/// assert_eq!(tl.state_at(5.0), RrcState::Idle);
/// assert_eq!(tl.state_at(11.0), RrcState::Dch);
/// assert_eq!(tl.state_at(25.0), RrcState::Fach); // 13 s after tx end
/// assert_eq!(tl.state_at(40.0), RrcState::Idle);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    params: RadioParams,
    horizon_s: f64,
    segments: Vec<StateSegment>,
}

impl Timeline {
    /// Builds the timeline for `transmissions` over `[0, horizon_s]`.
    ///
    /// Transmissions may be unsorted and overlapping; they are merged into
    /// busy periods first. Transmissions at or beyond the horizon are
    /// ignored; one straddling the horizon is clipped.
    pub fn from_transmissions(
        params: &RadioParams,
        transmissions: &[Transmission],
        horizon_s: f64,
    ) -> Self {
        let busy = merge_busy_periods(transmissions, horizon_s);
        let mut segments = Vec::new();
        build_segments_into(params, &busy, horizon_s, &mut segments);
        Timeline {
            params: params.clone(),
            horizon_s,
            segments,
        }
    }

    /// The parameter set the timeline was built with.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// The horizon (scenario length) in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The state segments in chronological order, covering `[0, horizon_s]`
    /// without gaps.
    pub fn segments(&self) -> &[StateSegment] {
        &self.segments
    }

    /// State held at time `t` (the state of the segment containing `t`;
    /// boundaries resolve to the later segment).
    pub fn state_at(&self, t_s: f64) -> RrcState {
        let idx = self
            .segments
            .partition_point(|seg| seg.end_s <= t_s)
            .min(self.segments.len().saturating_sub(1));
        self.segments.get(idx).map_or(RrcState::Idle, |s| s.state)
    }

    /// Exact extra energy above idle over the whole horizon, in joules.
    pub fn extra_energy_j(&self) -> f64 {
        self.segments
            .iter()
            .map(|seg| seg.state.extra_power_mw(&self.params) / 1000.0 * seg.duration_s())
            .sum()
    }

    /// Exact total energy including the idle baseline, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.extra_energy_j() + self.params.idle_mw() / 1000.0 * self.horizon_s
    }

    /// Total time spent in `state`, in seconds.
    pub fn time_in_state_s(&self, state: RrcState) -> f64 {
        self.segments
            .iter()
            .filter(|seg| seg.state == state)
            .map(StateSegment::duration_s)
            .sum()
    }

    /// Time spent in every state — `[Idle, Fach, Dch]` — in one pass over
    /// the segments: the batched counterpart of three
    /// [`Timeline::time_in_state_s`] calls. Bit-for-bit identical, because
    /// each state's durations accumulate in the same segment order as the
    /// per-state filter.
    pub fn time_in_states_s(&self) -> [f64; 3] {
        let mut totals = [0.0f64; 3];
        for seg in &self.segments {
            let slot = match seg.state {
                RrcState::Idle => 0,
                RrcState::Fach => 1,
                RrcState::Dch => 2,
            };
            totals[slot] += seg.duration_s();
        }
        totals
    }

    /// Mean extra power above idle across the horizon, in milliwatts:
    /// `extra_energy_j · 1000 / horizon_s`. NaN-guarded like
    /// `RunReport::tail_fraction`: a degenerate (zero or non-finite)
    /// horizon or a non-finite integral reports 0 instead of NaN/∞.
    pub fn mean_extra_power_mw(&self) -> f64 {
        let extra_j = self.extra_energy_j();
        if self.horizon_s.is_finite() && self.horizon_s > 0.0 && extra_j.is_finite() {
            extra_j * 1000.0 / self.horizon_s
        } else {
            0.0
        }
    }

    /// Samples the absolute device power every `dt_s` seconds, producing the
    /// software analogue of a power-monitor capture.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn sample(&self, dt_s: f64) -> PowerTrace {
        let mut samples = Vec::new();
        self.sample_into(dt_s, &mut samples);
        PowerTrace::new(dt_s, samples)
    }

    /// [`Timeline::sample`] into a caller-owned buffer (cleared first), so
    /// repeated sampling reuses the allocation. One linear walk over the
    /// segments — O(segments + samples) instead of the per-sample binary
    /// search's O(samples · log segments) — and bit-for-bit identical to
    /// per-sample [`Timeline::state_at`] lookups: the walk advances on the
    /// same `end_s <= t` boundary predicate, clamps to the final segment,
    /// and evaluates each probe at the same `i as f64 * dt_s` instant.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn sample_into(&self, dt_s: f64, samples_mw: &mut Vec<f64>) {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        samples_mw.clear();
        let n = (self.horizon_s / dt_s).ceil() as usize;
        samples_mw.reserve(n);
        let params = &self.params;
        let segs = self.segments.as_slice();
        let mut idx = 0usize;
        // `power_mw` is a pure function of `(state, params)`, so memoizing
        // it per segment (instead of recomputing per sample) emits the
        // exact same f64 for every sample. `next_end` keeps the advance
        // predicate in a register: it equals `segs[idx].end_s` while a
        // later segment exists and `∞` on the final (clamping) segment, so
        // `next_end <= t` is exactly the walk's
        // `idx + 1 < len && segs[idx].end_s <= t` gate.
        let mut current_mw = segs
            .first()
            .map_or(RrcState::Idle, |s| s.state)
            .power_mw(params);
        let mut next_end = if segs.len() > 1 {
            segs[0].end_s
        } else {
            f64::INFINITY
        };
        samples_mw.extend((0..n).map(|i| {
            let t = i as f64 * dt_s;
            if next_end <= t {
                while idx + 1 < segs.len() && segs[idx].end_s <= t {
                    idx += 1;
                }
                current_mw = segs[idx].state.power_mw(params);
                next_end = if idx + 1 < segs.len() {
                    segs[idx].end_s
                } else {
                    f64::INFINITY
                };
            }
            current_mw
        }));
    }

    /// Audits this timeline against the transmissions it claims to describe.
    ///
    /// Delegates to [`audit_segments`] and additionally checks that
    /// [`Timeline::state_at`] agrees with the segment containing each probe
    /// point. Returns the number of individual checks performed.
    ///
    /// # Errors
    ///
    /// Returns the first [`TimelineAuditError`] encountered.
    pub fn audit(&self, transmissions: &[Transmission]) -> Result<usize, TimelineAuditError> {
        let mut checks =
            audit_segments(&self.params, &self.segments, transmissions, self.horizon_s)?;
        for (index, seg) in self.segments.iter().enumerate() {
            let mid = 0.5 * (seg.start_s + seg.end_s);
            let looked_up = self.state_at(mid);
            checks += 1;
            if looked_up != seg.state {
                return Err(TimelineAuditError::LookupMismatch {
                    index,
                    at_s: mid,
                    segment_state: seg.state,
                    lookup_state: looked_up,
                });
            }
        }
        Ok(checks)
    }
}

/// Appends one segment, skipping empty spans and merging into the
/// previous segment when the state matches across an (effectively) shared
/// boundary. Merging *during* construction produces exactly the list the
/// old two-phase build-then-merge produced: the same non-empty segment
/// sequence is folded left-to-right under the same
/// `state == state && |last.end − start| < 1e-12` rule.
fn push_segment(segments: &mut Vec<StateSegment>, start: f64, end: f64, state: RrcState) {
    if end <= start {
        return;
    }
    if let Some(last) = segments.last_mut() {
        if last.state == state && (last.end_s - start).abs() < 1e-12 {
            last.end_s = end;
            return;
        }
    }
    segments.push(StateSegment {
        start_s: start,
        end_s: end,
        state,
    });
}

/// Builds the merged segment list for pre-merged busy periods into a
/// caller-owned buffer (cleared first). Shared by
/// [`Timeline::from_transmissions`] and [`TimelinePool::build`], so the
/// pooled and fresh constructions are the same code path.
fn build_segments_into(
    params: &RadioParams,
    busy: &[(f64, f64)],
    horizon_s: f64,
    segments: &mut Vec<StateSegment>,
) {
    segments.clear();
    let mut cursor = 0.0;
    let dd = params.delta_dch_s();
    let df = params.delta_fach_s();
    for (idx, &(start, end)) in busy.iter().enumerate() {
        push_segment(segments, cursor, start, RrcState::Idle);
        // Busy period itself is DCH.
        push_segment(segments, start, end, RrcState::Dch);
        let next_start = busy
            .get(idx + 1)
            .map_or(horizon_s, |&(next_start, _)| next_start);
        let dch_tail_end = (end + dd).min(next_start).min(horizon_s);
        push_segment(segments, end, dch_tail_end, RrcState::Dch);
        let fach_end = (end + dd + df).min(next_start).min(horizon_s);
        push_segment(segments, dch_tail_end, fach_end, RrcState::Fach);
        push_segment(
            segments,
            fach_end,
            next_start.min(horizon_s),
            RrcState::Idle,
        );
        cursor = next_start;
    }
    push_segment(segments, cursor, horizon_s, RrcState::Idle);
}

/// Reusable buffers for building [`Timeline`]s without per-build
/// allocations: the busy-period scratch and the segment storage persist
/// across builds, so a loop that constructs many timelines (benchmark
/// reps, per-run audits) allocates only while the buffers still grow.
///
/// [`TimelinePool::build`] is bit-for-bit equal to
/// [`Timeline::from_transmissions`] — both run the same
/// merge/segment-construction code over reused storage. Hand a finished
/// timeline back with [`TimelinePool::recycle`] to keep its segment
/// capacity.
///
/// # Examples
///
/// ```
/// use etrain_radio::{RadioParams, Timeline, TimelinePool, Transmission};
///
/// let p = RadioParams::galaxy_s4_3g();
/// let txs = [Transmission::new(10.0, 2.0)];
/// let mut pool = TimelinePool::new();
/// let pooled = pool.build(&p, &txs, 60.0);
/// assert_eq!(pooled, Timeline::from_transmissions(&p, &txs, 60.0));
/// pool.recycle(pooled); // segment storage returns to the pool
/// ```
#[derive(Debug, Default)]
pub struct TimelinePool {
    busy: Vec<(f64, f64)>,
    segments: Vec<StateSegment>,
}

impl TimelinePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TimelinePool::default()
    }

    /// Builds a timeline over `[0, horizon_s]`, reusing the pool's
    /// buffers. Identical output to [`Timeline::from_transmissions`].
    pub fn build(
        &mut self,
        params: &RadioParams,
        transmissions: &[Transmission],
        horizon_s: f64,
    ) -> Timeline {
        merge_busy_periods_into(transmissions, horizon_s, &mut self.busy);
        let mut segments = std::mem::take(&mut self.segments);
        build_segments_into(params, &self.busy, horizon_s, &mut segments);
        Timeline {
            params: params.clone(),
            horizon_s,
            segments,
        }
    }

    /// Takes a timeline's segment storage back for the next build. Only
    /// the larger buffer is kept, so repeated build/recycle cycles settle
    /// on the high-water-mark capacity.
    pub fn recycle(&mut self, timeline: Timeline) {
        let mut segments = timeline.segments;
        if segments.capacity() > self.segments.capacity() {
            segments.clear();
            self.segments = segments;
        }
    }
}

/// A violation found while auditing a state timeline.
///
/// Produced by [`audit_segments`] / [`Timeline::audit`]; the simulation
/// oracle in `etrain-sim` wraps these into its own violation type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineAuditError {
    /// A logged transmission has negative or non-finite timing.
    BadTransmission {
        /// Index into the transmission log.
        index: usize,
        /// Start time of the offending transmission.
        start_s: f64,
        /// Duration of the offending transmission.
        duration_s: f64,
    },
    /// A segment has non-positive or non-finite duration.
    EmptySegment {
        /// Index into the segment list.
        index: usize,
        /// Segment start time.
        start_s: f64,
        /// Segment end time.
        end_s: f64,
    },
    /// The first segment does not start at t = 0, or the last does not end
    /// at the horizon, or adjacent segments leave a gap/overlap.
    CoverageGap {
        /// Index of the segment whose start is misplaced (0 for a bad
        /// first-segment start; `segments.len()` for a bad final end).
        index: usize,
        /// Where the previous segment ended (or 0.0 / horizon for the ends).
        expected_s: f64,
        /// Where this segment actually starts (or ends, for the final check).
        actual_s: f64,
    },
    /// A segment holds a state the RRC demotion rules do not allow at that
    /// time (e.g. a DCH tail truncated before δ_D elapsed).
    IllegalState {
        /// Index of the offending segment.
        index: usize,
        /// Probe time at which the states disagree.
        at_s: f64,
        /// State required by the demotion rules at `at_s`.
        expected: RrcState,
        /// State the segment claims.
        actual: RrcState,
    },
    /// Segment energy integration disagrees with the independent analytic
    /// tail model.
    EnergyMismatch {
        /// Extra energy summed over the segments, in joules.
        segment_sum_j: f64,
        /// Extra energy from [`analytic_extra_energy_j`], in joules.
        analytic_j: f64,
        /// Tolerance that was exceeded, in joules.
        tolerance_j: f64,
    },
    /// `Timeline::state_at` disagrees with the segment containing the probe.
    LookupMismatch {
        /// Index of the probed segment.
        index: usize,
        /// Probe time.
        at_s: f64,
        /// State of the segment containing the probe.
        segment_state: RrcState,
        /// State `state_at` returned.
        lookup_state: RrcState,
    },
}

impl std::fmt::Display for TimelineAuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineAuditError::BadTransmission {
                index,
                start_s,
                duration_s,
            } => write!(
                f,
                "transmission #{index} has invalid timing (start {start_s} s, duration {duration_s} s)"
            ),
            TimelineAuditError::EmptySegment {
                index,
                start_s,
                end_s,
            } => write!(
                f,
                "segment #{index} is empty or inverted ([{start_s}, {end_s}] s)"
            ),
            TimelineAuditError::CoverageGap {
                index,
                expected_s,
                actual_s,
            } => write!(
                f,
                "segment #{index} breaks coverage: expected boundary at {expected_s} s, found {actual_s} s"
            ),
            TimelineAuditError::IllegalState {
                index,
                at_s,
                expected,
                actual,
            } => write!(
                f,
                "segment #{index} holds {actual} at {at_s} s where the demotion rules require {expected}"
            ),
            TimelineAuditError::EnergyMismatch {
                segment_sum_j,
                analytic_j,
                tolerance_j,
            } => write!(
                f,
                "segment energy {segment_sum_j} J disagrees with analytic model {analytic_j} J (tolerance {tolerance_j} J)"
            ),
            TimelineAuditError::LookupMismatch {
                index,
                at_s,
                segment_state,
                lookup_state,
            } => write!(
                f,
                "state_at({at_s}) returned {lookup_state} but segment #{index} holds {segment_state}"
            ),
        }
    }
}

impl std::error::Error for TimelineAuditError {}

/// Boundary tolerance for segment contiguity checks, in seconds.
const AUDIT_BOUNDARY_TOL_S: f64 = 1e-9;

/// State required by the RRC demotion rules at time `t`, derived directly
/// from the merged busy periods (independent of segment construction).
fn required_state(params: &RadioParams, busy: &[(f64, f64)], t: f64) -> RrcState {
    let idx = busy.partition_point(|&(start, _)| start <= t);
    if idx == 0 {
        return RrcState::Idle;
    }
    let (_, end) = busy[idx - 1];
    if t < end {
        return RrcState::Dch;
    }
    let gap = t - end;
    if gap < params.delta_dch_s() {
        RrcState::Dch
    } else if gap < params.delta_dch_s() + params.delta_fach_s() {
        RrcState::Fach
    } else {
        RrcState::Idle
    }
}

/// Audits a segment list against the transmissions that produced it,
/// re-deriving the legal RRC state from first principles.
///
/// Checks, in order: every transmission validates; segments are non-empty,
/// contiguous, non-overlapping and cover exactly `[0, horizon_s]`; each
/// segment's state matches the demotion rules (DCH while busy and for δ_D
/// after, FACH for the following δ_F, IDLE otherwise) at probes near its
/// start, middle and end; and the piecewise segment energy agrees with the
/// independent [`analytic_extra_energy_j`] closed form. Returns the number
/// of individual checks performed.
///
/// The function is deliberately *not* implemented in terms of
/// [`Timeline::from_transmissions`] — it exists to catch regressions there.
///
/// # Errors
///
/// Returns the first [`TimelineAuditError`] encountered.
pub fn audit_segments(
    params: &RadioParams,
    segments: &[StateSegment],
    transmissions: &[Transmission],
    horizon_s: f64,
) -> Result<usize, TimelineAuditError> {
    let mut checks = 0usize;
    for (index, tx) in transmissions.iter().enumerate() {
        checks += 1;
        if tx.validate().is_err() {
            return Err(TimelineAuditError::BadTransmission {
                index,
                start_s: tx.start_s,
                duration_s: tx.duration_s,
            });
        }
    }

    if horizon_s <= 0.0 {
        return Ok(checks);
    }

    // Coverage: [0, horizon] partitioned without gaps or overlaps.
    let mut cursor = 0.0;
    for (index, seg) in segments.iter().enumerate() {
        checks += 2;
        if !seg.start_s.is_finite() || !seg.end_s.is_finite() || seg.end_s <= seg.start_s {
            return Err(TimelineAuditError::EmptySegment {
                index,
                start_s: seg.start_s,
                end_s: seg.end_s,
            });
        }
        if (seg.start_s - cursor).abs() > AUDIT_BOUNDARY_TOL_S {
            return Err(TimelineAuditError::CoverageGap {
                index,
                expected_s: cursor,
                actual_s: seg.start_s,
            });
        }
        cursor = seg.end_s;
    }
    checks += 1;
    if (cursor - horizon_s).abs() > AUDIT_BOUNDARY_TOL_S {
        return Err(TimelineAuditError::CoverageGap {
            index: segments.len(),
            expected_s: horizon_s,
            actual_s: cursor,
        });
    }

    // Legality: probe each segment near its start, middle and end against
    // the state the demotion rules require there.
    let busy = merge_busy_periods(transmissions, horizon_s);
    for (index, seg) in segments.iter().enumerate() {
        let eps = (seg.duration_s() * 0.25).min(1e-6);
        for t in [
            seg.start_s + eps,
            0.5 * (seg.start_s + seg.end_s),
            seg.end_s - eps,
        ] {
            checks += 1;
            let expected = required_state(params, &busy, t);
            if expected != seg.state {
                return Err(TimelineAuditError::IllegalState {
                    index,
                    at_s: t,
                    expected,
                    actual: seg.state,
                });
            }
        }
    }

    // Energy: piecewise segment integration vs the closed-form tail model.
    let segment_sum_j: f64 = segments
        .iter()
        .map(|seg| seg.state.extra_power_mw(params) / 1000.0 * seg.duration_s())
        .sum();
    let analytic_j = analytic_extra_energy_j(params, transmissions, horizon_s);
    let tolerance_j = 1e-9 * (1.0 + busy.len() as f64);
    checks += 1;
    if (segment_sum_j - analytic_j).abs() > tolerance_j {
        return Err(TimelineAuditError::EnergyMismatch {
            segment_sum_j,
            analytic_j,
            tolerance_j,
        });
    }

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tail::analytic_extra_energy_j;

    fn params() -> RadioParams {
        RadioParams::galaxy_s4_3g()
    }

    #[test]
    fn empty_schedule_is_all_idle() {
        let tl = Timeline::from_transmissions(&params(), &[], 100.0);
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.state_at(50.0), RrcState::Idle);
        assert_eq!(tl.extra_energy_j(), 0.0);
        assert!((tl.total_energy_j() - 2.0).abs() < 1e-9); // 20 mW * 100 s
    }

    #[test]
    fn lone_transmission_walks_through_all_states() {
        let tl = Timeline::from_transmissions(&params(), &[Transmission::new(10.0, 2.0)], 100.0);
        assert_eq!(tl.state_at(0.0), RrcState::Idle);
        assert_eq!(tl.state_at(10.5), RrcState::Dch); // busy
        assert_eq!(tl.state_at(15.0), RrcState::Dch); // DCH tail (ends 22.0)
        assert_eq!(tl.state_at(23.0), RrcState::Fach); // FACH tail (ends 29.5)
        assert_eq!(tl.state_at(30.0), RrcState::Idle);
    }

    #[test]
    fn segments_cover_horizon_without_gaps() {
        let tl = Timeline::from_transmissions(
            &params(),
            &[Transmission::new(5.0, 1.0), Transmission::new(30.0, 0.5)],
            120.0,
        );
        let segs = tl.segments();
        assert_eq!(segs.first().unwrap().start_s, 0.0);
        assert_eq!(segs.last().unwrap().end_s, 120.0);
        for w in segs.windows(2) {
            assert!((w[0].end_s - w[1].start_s).abs() < 1e-12);
        }
    }

    #[test]
    fn timeline_energy_matches_analytic_model() {
        let p = params();
        let txs = [
            Transmission::new(3.0, 0.4),
            Transmission::new(9.0, 1.0), // reuses tail of first
            Transmission::new(100.0, 2.0),
            Transmission::new(114.0, 0.1), // lands in FACH phase
        ];
        let tl = Timeline::from_transmissions(&p, &txs, 500.0);
        let analytic = analytic_extra_energy_j(&p, &txs, 500.0);
        assert!(
            (tl.extra_energy_j() - analytic).abs() < 1e-9,
            "timeline {} vs analytic {}",
            tl.extra_energy_j(),
            analytic
        );
    }

    #[test]
    fn reused_tail_costs_less_than_two_full_tails() {
        let p = params();
        let shared = Timeline::from_transmissions(
            &p,
            &[Transmission::new(0.0, 0.2), Transmission::new(3.0, 0.2)],
            100.0,
        );
        let separate = Timeline::from_transmissions(
            &p,
            &[Transmission::new(0.0, 0.2), Transmission::new(50.0, 0.2)],
            100.0,
        );
        assert!(shared.extra_energy_j() < separate.extra_energy_j());
    }

    #[test]
    fn time_in_state_accounts_for_everything() {
        let tl = Timeline::from_transmissions(&params(), &[Transmission::new(10.0, 2.0)], 100.0);
        let total = tl.time_in_state_s(RrcState::Idle)
            + tl.time_in_state_s(RrcState::Fach)
            + tl.time_in_state_s(RrcState::Dch);
        assert!((total - 100.0).abs() < 1e-9);
        // 2 s busy + 10 s DCH tail.
        assert!((tl.time_in_state_s(RrcState::Dch) - 12.0).abs() < 1e-9);
        assert!((tl.time_in_state_s(RrcState::Fach) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn sampled_trace_energy_approximates_exact() {
        let p = params();
        let tl = Timeline::from_transmissions(
            &p,
            &[Transmission::new(7.0, 1.3), Transmission::new(40.0, 0.7)],
            200.0,
        );
        let trace = tl.sample(0.1);
        let exact = tl.total_energy_j();
        assert!(
            (trace.energy_j() - exact).abs() / exact < 0.01,
            "sampled {} vs exact {}",
            trace.energy_j(),
            exact
        );
    }

    #[test]
    fn empty_segment_power_integral_is_zero_not_nan() {
        // A zero-length horizon yields a timeline with *no* segments: every
        // integral must be 0 and every ratio NaN-guarded, never NaN/∞.
        let tl = Timeline::from_transmissions(&params(), &[], 0.0);
        assert!(tl.segments().is_empty());
        assert_eq!(tl.extra_energy_j(), 0.0);
        assert_eq!(tl.total_energy_j(), 0.0);
        assert_eq!(tl.mean_extra_power_mw(), 0.0, "guarded against 0/0");
        assert_eq!(tl.time_in_states_s(), [0.0; 3]);
        let trace = tl.sample(0.1);
        assert!(trace.is_empty());
        assert_eq!(trace.energy_j(), 0.0);
        assert_eq!(tl.state_at(0.0), RrcState::Idle);
    }

    #[test]
    fn mean_extra_power_matches_integral() {
        let tl = Timeline::from_transmissions(&params(), &[Transmission::new(10.0, 2.0)], 100.0);
        let expected = tl.extra_energy_j() * 1000.0 / 100.0;
        assert!((tl.mean_extra_power_mw() - expected).abs() < 1e-12);
    }

    #[test]
    fn batched_state_times_match_per_state_sums() {
        let tl = Timeline::from_transmissions(
            &params(),
            &[Transmission::new(5.0, 1.0), Transmission::new(30.0, 0.5)],
            120.0,
        );
        let [idle, fach, dch] = tl.time_in_states_s();
        assert_eq!(idle, tl.time_in_state_s(RrcState::Idle));
        assert_eq!(fach, tl.time_in_state_s(RrcState::Fach));
        assert_eq!(dch, tl.time_in_state_s(RrcState::Dch));
    }

    #[test]
    fn pooled_build_equals_fresh_and_reuses_storage() {
        let p = params();
        let mut pool = TimelinePool::new();
        let schedules: [&[Transmission]; 3] = [
            &[],
            &[Transmission::new(3.0, 0.4), Transmission::new(9.0, 1.0)],
            &[Transmission::new(0.0, 0.2), Transmission::new(0.2, 0.3)], // adjacent merge
        ];
        for txs in schedules {
            let fresh = Timeline::from_transmissions(&p, txs, 200.0);
            let pooled = pool.build(&p, txs, 200.0);
            assert_eq!(pooled, fresh);
            pool.recycle(pooled);
        }
        // After recycling, the pool's buffer capacity persists.
        assert!(pool.segments.capacity() > 0);
    }

    #[test]
    fn sample_into_matches_state_at_lookups() {
        let tl = Timeline::from_transmissions(
            &params(),
            &[Transmission::new(7.0, 1.3), Transmission::new(40.0, 0.7)],
            200.0,
        );
        let mut buf = vec![999.0; 4]; // pre-dirtied: must be cleared
        tl.sample_into(0.7, &mut buf);
        let n = (200.0f64 / 0.7).ceil() as usize;
        assert_eq!(buf.len(), n);
        for (i, &got) in buf.iter().enumerate() {
            let want = tl.state_at(i as f64 * 0.7).power_mw(tl.params());
            assert_eq!(got.to_bits(), want.to_bits(), "sample {i}");
        }
    }

    #[test]
    fn transmission_validation() {
        assert!(Transmission::new(0.0, 1.0).validate().is_ok());
        assert!(Transmission::new(-1.0, 1.0).validate().is_err());
        assert!(Transmission::new(0.0, f64::INFINITY).validate().is_err());
    }

    #[test]
    fn state_display_names() {
        assert_eq!(RrcState::Idle.to_string(), "IDLE");
        assert_eq!(RrcState::Fach.to_string(), "FACH");
        assert_eq!(RrcState::Dch.to_string(), "DCH");
    }

    #[test]
    fn audit_accepts_well_formed_timelines() {
        let p = params();
        let txs = [
            Transmission::new(3.0, 0.4),
            Transmission::new(9.0, 1.0),
            Transmission::new(100.0, 2.0),
            Transmission::new(114.0, 0.1),
        ];
        let tl = Timeline::from_transmissions(&p, &txs, 500.0);
        let checks = tl.audit(&txs).expect("well-formed timeline must pass");
        assert!(checks > tl.segments().len());

        let empty = Timeline::from_transmissions(&p, &[], 100.0);
        assert!(empty.audit(&[]).is_ok());
    }

    #[test]
    fn audit_catches_truncated_dch_tail() {
        let p = params();
        let txs = [Transmission::new(10.0, 2.0)];
        let tl = Timeline::from_transmissions(&p, &txs, 100.0);
        // Corrupt: cut the DCH tail short by 3 s, extending FACH to cover.
        let mut segments = tl.segments().to_vec();
        let dch = segments
            .iter()
            .position(|s| s.state == RrcState::Dch)
            .unwrap();
        segments[dch].end_s -= 3.0;
        segments[dch + 1].start_s -= 3.0;
        let err = audit_segments(&p, &segments, &txs, 100.0).unwrap_err();
        assert!(
            matches!(
                err,
                TimelineAuditError::IllegalState {
                    expected: RrcState::Dch,
                    actual: RrcState::Fach,
                    ..
                }
            ),
            "unexpected audit error: {err}"
        );
    }

    #[test]
    fn audit_catches_coverage_gap_and_empty_segment() {
        let p = params();
        let txs = [Transmission::new(10.0, 2.0)];
        let tl = Timeline::from_transmissions(&p, &txs, 100.0);

        let mut dropped = tl.segments().to_vec();
        dropped.remove(1);
        assert!(matches!(
            audit_segments(&p, &dropped, &txs, 100.0).unwrap_err(),
            TimelineAuditError::CoverageGap { .. }
        ));

        let mut inverted = tl.segments().to_vec();
        inverted[0].end_s = inverted[0].start_s;
        assert!(matches!(
            audit_segments(&p, &inverted, &txs, 100.0).unwrap_err(),
            TimelineAuditError::EmptySegment { index: 0, .. }
        ));
    }

    #[test]
    fn audit_catches_invalid_transmission_log() {
        let p = params();
        let txs = [Transmission::new(10.0, f64::NAN)];
        let tl = Timeline::from_transmissions(&p, &[], 100.0);
        assert!(matches!(
            tl.audit(&txs).unwrap_err(),
            TimelineAuditError::BadTransmission { index: 0, .. }
        ));
    }

    #[test]
    fn audit_errors_render_human_readable() {
        let err = TimelineAuditError::IllegalState {
            index: 2,
            at_s: 15.0,
            expected: RrcState::Dch,
            actual: RrcState::Fach,
        };
        let text = err.to_string();
        assert!(text.contains("segment #2"), "{text}");
        assert!(text.contains("FACH"), "{text}");
    }
}
