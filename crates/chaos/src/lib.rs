//! # etrain-chaos — deterministic chaos campaign for the eTrain simulator
//!
//! FoundationDB-style simulation testing for the reproduction: every run
//! is a pure function of its seed, so chaos here means *seeded breadth*,
//! not nondeterminism. The crate has three pillars:
//!
//! - [`run_campaign`] — a seeded campaign driver: randomized scenario
//!   plans ([`ChaosCase`], built on the conformance generator's
//!   [`CasePlan`](etrain_sim::CasePlan)) crossed with fault plans and
//!   scheduler kinds, swept through the production grid runner under the
//!   strict oracle, collecting every oracle violation, panic, and
//!   health-ladder anomaly as [`Finding`]s;
//! - [`shrink`] — an automatic shrinker that delta-debugs a failing case
//!   (dropping packets, heartbeats and fault windows, halving the
//!   horizon, simplifying knobs) while re-running after every edit,
//!   emitting a minimal serialized [`ReproCase`] replayable via the
//!   `chaos --repro <file>` bench binary;
//! - [`run_kill_resume`] — a crash-consistency harness that kills runs
//!   at seed-derived points, resumes them from the last durable engine
//!   snapshot, and asserts the resumed report and merged observability
//!   journal are bit-for-bit identical to an uninterrupted run;
//! - [`run_supervisor`] — a *process-level* crash harness: it spawns the
//!   real `etrain-svcd` daemon, SIGKILLs it at seeded points (including
//!   mid-append via the `ETRAIN_WAL_FAULT` hook), restarts it, and
//!   asserts the WAL-recovered state matches a never-killed in-process
//!   reference fingerprint-for-fingerprint, with [`run_wal_selftest`]
//!   proving the WAL checksum path detects torn, truncated, and
//!   bit-flipped segment tails ([`WalCorruption`]).
//!
//! The oracle itself is self-tested through [`Corruption`]: deliberate
//! post-run output corruptions that the audit must catch — and that the
//! shrinker must reduce to a handful of events.
//!
//! # Example
//!
//! ```
//! use etrain_chaos::{campaign_cases, run_campaign};
//!
//! let cases = campaign_cases(0, 4, true);
//! let report = run_campaign(&cases, 2);
//! assert!(report.is_clean(), "findings: {:?}", report.findings);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod case;
mod killres;
mod shrink;
mod supervisor;

pub use campaign::{campaign_cases, run_campaign, CampaignReport, Finding};
pub use case::{violation_name, CaseFailure, ChaosCase, Corruption};
pub use killres::{run_kill_resume, KillResumeReport, KillResumeTrial};
pub use shrink::{shrink, ReproCase};
pub use supervisor::{
    daemon_binary, run_fault_trial, run_sigkill_trials, run_supervisor, run_wal_selftest,
    SupervisorReport, SupervisorTrial, WalCorruption, WalSelfTest,
};
