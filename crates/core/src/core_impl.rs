//! The deterministic (sans-IO) eTrain core: Heartbeat Monitor + Scheduler
//! wired together, driven by explicit timestamps.

use std::collections::HashMap;

use etrain_hb::{HeartbeatMonitor, TrainStatus};
use etrain_obs::{prof, Event, Journal};
use etrain_sched::{
    AdmissionConfig, AppProfile, ETrainConfig, ETrainScheduler, RetryDecision, RetryPolicy,
    Scheduler, ShedPolicy, SlotContext,
};
use etrain_trace::faults::hash_unit;
use etrain_trace::packets::Packet;
use etrain_trace::{CargoAppId, TrainAppId};

use crate::error::CoreError;
use crate::request::{
    Admission, RequestId, RetryVerdict, TransmitDecision, TransmitRequest, TxResult,
};

/// Seed for the core's retry-jitter draws. Fixed: the live core has no
/// fault plan to inherit a seed from, and determinism matters more than
/// cross-deployment variety.
const RETRY_JITTER_SEED: u64 = 0x6574_7261_696e_5f63;

/// Configuration of the deterministic core.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// The delay-cost bound Θ of Algorithm 1.
    pub theta: f64,
    /// Packets piggybacked per heartbeat; `None` = the paper's k = ∞.
    pub k: Option<usize>,
    /// Scheduler slot length in seconds.
    pub slot_s: f64,
    /// Grace period after a train registers during which it counts as
    /// alive even before its first observed heartbeat, in seconds.
    pub startup_grace_s: f64,
    /// Retry policy applied to requests whose transmissions fail (see
    /// [`ETrainCore::report_result`]). A request with a per-request
    /// deadline uses that deadline as its give-up age instead of the
    /// policy's `give_up_age_s`.
    pub retry: RetryPolicy,
    /// Bounded-admission configuration: queue capacities and the shed
    /// policy applied when they are reached. Unbounded by default (no
    /// behavior change); see [`crate::Admission`] for the typed outcomes
    /// [`ETrainCore::submit`] reports under pressure.
    pub admission: AdmissionConfig,
}

impl Default for CoreConfig {
    /// Θ = 0.2, k = ∞, 1 s slots (the paper's deployed settings), a
    /// 10-minute startup grace, and the default retry policy.
    fn default() -> Self {
        CoreConfig {
            theta: 0.2,
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::unbounded(),
        }
    }
}

/// Cumulative counters of a running eTrain core — the operational
/// statistics a deployment dashboard would chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Requests submitted since startup.
    pub submitted: usize,
    /// Decisions issued since startup.
    pub decided: usize,
    /// Decisions that piggybacked on a heartbeat.
    pub piggybacked: usize,
    /// Requests cancelled before a decision.
    pub cancelled: usize,
    /// Heartbeats observed across all train apps.
    pub heartbeats: usize,
    /// Transmissions reported delivered via
    /// [`ETrainCore::report_result`].
    pub delivered: usize,
    /// Retries scheduled after reported failures.
    pub retries: usize,
    /// Requests the retry policy gave up on.
    pub abandoned: usize,
    /// Times the watchdog saw every train die and flushed the scheduler
    /// (paper Sec. V-3: the core stops deferring so cargo apps never wait
    /// indefinitely; piggybacking resumes when a train restarts).
    pub watchdog_flushes: usize,
    /// Requests shed by bounded admission: rejected at submission or
    /// evicted from the queue by the drop-lowest-value policy. Shed
    /// requests never receive a decision.
    pub shed: usize,
    /// Queued requests released early by the force-flush-oldest policy to
    /// make room for a new submission (these *are* transmitted; the count
    /// is bookkeeping, not loss).
    pub forced_flushes: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    id: RequestId,
    submitted_at_s: f64,
    deadline_override_s: Option<f64>,
}

/// A decided request whose transmission outcome has not been reported yet.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    meta: PendingRequest,
}

/// A failed request waiting out its backoff before re-entering the
/// scheduler.
#[derive(Debug, Clone, Copy)]
struct Backoff {
    resume_at_s: f64,
    packet: Packet,
    meta: PendingRequest,
}

#[derive(Debug, Clone)]
struct TrainRecord {
    name: String,
    registered_at_s: f64,
}

/// The deterministic eTrain system core.
///
/// Drive it with four calls, all carrying explicit timestamps (monotone
/// non-decreasing):
///
/// - [`ETrainCore::register_train`] / [`ETrainCore::register_cargo`] —
///   app registration (cargo apps register their delay-cost profile);
/// - [`ETrainCore::on_heartbeat`] — a train app transmitted a heartbeat
///   (the Xposed-hook trigger); runs a heartbeat slot of Algorithm 1 and
///   returns the piggybacking decisions;
/// - [`ETrainCore::submit`] — a cargo app requests a transmission;
/// - [`ETrainCore::tick`] — a regular scheduler slot.
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Debug)]
pub struct ETrainCore {
    config: CoreConfig,
    profiles: Vec<AppProfile>,
    scheduler: ETrainScheduler,
    monitor: HeartbeatMonitor,
    trains: Vec<TrainRecord>,
    pending: HashMap<u64, PendingRequest>,
    stashed_decisions: Vec<TransmitDecision>,
    awaiting: HashMap<RequestId, InFlight>,
    backoffs: Vec<Backoff>,
    failed_attempts: HashMap<u64, u32>,
    was_alive: bool,
    stats: CoreStats,
    next_packet_id: u64,
    next_request_id: u64,
    now_s: f64,
    journal: Option<Journal>,
}

impl ETrainCore {
    /// Creates a core with no registered apps.
    pub fn new(config: CoreConfig) -> Self {
        ETrainCore {
            scheduler: ETrainScheduler::new(
                ETrainConfig {
                    theta: config.theta,
                    k: config.k,
                    slot_s: config.slot_s,
                },
                Vec::new(),
            ),
            config,
            profiles: Vec::new(),
            monitor: HeartbeatMonitor::new(),
            trains: Vec::new(),
            pending: HashMap::new(),
            stashed_decisions: Vec::new(),
            awaiting: HashMap::new(),
            backoffs: Vec::new(),
            failed_attempts: HashMap::new(),
            was_alive: false,
            stats: CoreStats::default(),
            next_packet_id: 0,
            next_request_id: 0,
            now_s: 0.0,
            journal: None,
        }
    }

    /// Starts recording a structured event journal of every decision point
    /// the core passes through (heartbeats, piggyback decisions, sheds,
    /// forced flushes, retries, watchdog liveness transitions). Idempotent;
    /// see [`ETrainCore::take_journal`] to collect what was recorded. With
    /// journaling off (the default) the core takes its exact unjournaled
    /// code path — no buffering, no overhead.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Journal::new());
            self.scheduler.set_obs_enabled(true);
        }
    }

    /// Stops journaling and returns the canonicalized journal recorded
    /// since [`ETrainCore::enable_journal`] — `None` if journaling was
    /// never enabled.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.scheduler.set_obs_enabled(false);
        let mut journal = self.journal.take()?;
        journal.canonicalize();
        Some(journal)
    }

    /// Whether the core is currently recording an event journal.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Appends an event to the journal, if one is being recorded.
    fn record(&mut self, time_s: f64, event: Event) {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(time_s, event);
        }
    }

    /// Moves the scheduler's buffered decision events into the journal
    /// (no-op with journaling off: the scheduler buffers nothing then).
    fn drain_scheduler_events(&mut self) {
        if self.journal.is_some() {
            let events = self.scheduler.take_obs_events();
            if let Some(journal) = self.journal.as_mut() {
                for (time_s, event) in events {
                    journal.push(time_s, event);
                }
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The current system time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of requests waiting for a transmission decision.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Number of decided requests whose transmission outcome has not been
    /// reported yet (via [`ETrainCore::report_result`]).
    pub fn awaiting_results(&self) -> usize {
        self.awaiting.len()
    }

    /// Number of failed requests currently waiting out a retry backoff.
    pub fn backing_off(&self) -> usize {
        self.backoffs.len()
    }

    /// Cumulative operational counters since startup.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Registers a train app. Heartbeats must reference the returned id.
    pub fn register_train(&mut self, name: impl Into<String>) -> TrainAppId {
        let id = TrainAppId(self.trains.len());
        self.trains.push(TrainRecord {
            name: name.into(),
            registered_at_s: self.now_s,
        });
        id
    }

    /// Registers a cargo app with its delay-cost profile, as Android apps
    /// do when subscribing to eTrain's service (paper Sec. V-3).
    ///
    /// Pending requests of previously registered apps are preserved.
    pub fn register_cargo(&mut self, profile: AppProfile) -> CargoAppId {
        let id = CargoAppId(self.profiles.len());
        self.profiles.push(profile);
        // Rebuild the scheduler with the widened profile set, carrying over
        // every pending packet with its original arrival time.
        let mut rebuilt = ETrainScheduler::new(
            ETrainConfig {
                theta: self.config.theta,
                k: self.config.k,
                slot_s: self.config.slot_s,
            },
            self.profiles.clone(),
        );
        let mut carried: Vec<Packet> = Vec::with_capacity(self.pending.len());
        for &packet_id in self.pending.keys() {
            // Recover the packet from the old scheduler's queues.
            for app_idx in 0..self.profiles.len().saturating_sub(1) {
                if let Some(p) = self.scheduler.force_release(CargoAppId(app_idx), packet_id) {
                    carried.push(p);
                    break;
                }
            }
        }
        carried.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        for p in carried {
            // The rebuilt scheduler holds every profile, so re-arrival
            // cannot fail; eTrain also never releases on arrival, so the
            // returned vec is empty. Both are invariants, not user input —
            // degrade silently in release rather than panic.
            let released = rebuilt.on_arrival(p, p.arrival_s).unwrap_or_default();
            debug_assert!(released.is_empty(), "eTrain defers on arrival");
        }
        // The rebuilt scheduler starts with buffering off; re-apply the
        // journaling flag so an active journal keeps receiving decisions.
        rebuilt.set_obs_enabled(self.journal.is_some());
        self.scheduler = rebuilt;
        id
    }

    /// Name of a registered train app.
    pub fn train_name(&self, train: TrainAppId) -> Option<&str> {
        self.trains.get(train.index()).map(|t| t.name.as_str())
    }

    /// Submits a transmission request for `app` at time `now_s`, returning
    /// the typed [`Admission`] outcome. Decisions for admitted requests
    /// are delivered from [`ETrainCore::tick`] /
    /// [`ETrainCore::on_heartbeat`].
    ///
    /// With the default unbounded [`CoreConfig::admission`] every
    /// submission is [`Admission::Admitted`]. Once a capacity is
    /// configured, an overflowing submission is resolved by the shed
    /// policy: rejected outright, admitted at the expense of the
    /// cheapest-cost queued request, or admitted after force-flushing the
    /// oldest queued request for immediate transmission.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownCargoApp`] for unregistered apps and
    /// [`CoreError::TimeWentBackwards`] if `now_s` precedes the system
    /// clock.
    pub fn submit(
        &mut self,
        app: CargoAppId,
        request: TransmitRequest,
        now_s: f64,
    ) -> Result<Admission, CoreError> {
        self.advance_clock(now_s)?;
        if app.index() >= self.profiles.len() {
            return Err(CoreError::UnknownCargoApp { app });
        }
        self.stats.submitted += 1;

        // Bounded admission: when a queue capacity is reached the shed
        // policy decides who pays before the new packet may enter.
        let mut evicted: Option<RequestId> = None;
        let mut flushed: Option<TransmitDecision> = None;
        let over = self
            .config
            .admission
            .would_overflow(self.scheduler.pending(), self.scheduler.pending_for(app));
        if over {
            // When the per-app bound tripped, the victim must come from
            // the violating app; a global victim would leave it exceeded.
            let scoped = self
                .config
                .admission
                .app_overflow(self.scheduler.pending_for(app));
            match self.config.admission.policy {
                ShedPolicy::RejectNew => {
                    self.stats.shed += 1;
                    // The rejected submission never becomes a packet; the
                    // journal carries the id it would have received.
                    self.record(
                        now_s,
                        Event::Shed {
                            packet_id: self.next_packet_id,
                            app: app.index(),
                        },
                    );
                    return Ok(Admission::Rejected);
                }
                ShedPolicy::DropLowestValue => {
                    let victim = if scoped {
                        self.scheduler.evict_lowest_value_in(app, now_s)
                    } else {
                        self.scheduler.evict_lowest_value(now_s)
                    };
                    match victim {
                        Some(victim) => {
                            let meta = self.pending.remove(&victim.id);
                            debug_assert!(meta.is_some(), "evicted packet has pending metadata");
                            self.stats.shed += 1;
                            self.record(
                                now_s,
                                Event::Shed {
                                    packet_id: victim.id,
                                    app: victim.app.index(),
                                },
                            );
                            evicted = meta.map(|m| m.id);
                        }
                        // Nothing evictable (pressure is not from this
                        // scheduler's queues): fall back to rejecting.
                        None => {
                            self.stats.shed += 1;
                            self.record(
                                now_s,
                                Event::Shed {
                                    packet_id: self.next_packet_id,
                                    app: app.index(),
                                },
                            );
                            return Ok(Admission::Rejected);
                        }
                    }
                }
                ShedPolicy::ForceFlushOldest => {
                    let oldest = if scoped {
                        self.scheduler.pop_oldest_in(app)
                    } else {
                        self.scheduler.pop_oldest()
                    };
                    match oldest {
                        Some(victim) => {
                            self.stats.forced_flushes += 1;
                            self.record(
                                now_s,
                                Event::ForcedFlush {
                                    packet_id: victim.id,
                                    app: victim.app.index(),
                                },
                            );
                            flushed = self.decision_for(victim, now_s, None);
                        }
                        None => {
                            self.stats.shed += 1;
                            self.record(
                                now_s,
                                Event::Shed {
                                    packet_id: self.next_packet_id,
                                    app: app.index(),
                                },
                            );
                            return Ok(Admission::Rejected);
                        }
                    }
                }
            }
        }

        let packet_id = self.next_packet_id;
        self.next_packet_id += 1;
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;

        let packet = Packet {
            id: packet_id,
            app,
            arrival_s: now_s,
            size_bytes: request.size_bytes,
        };
        self.pending.insert(
            packet_id,
            PendingRequest {
                id,
                submitted_at_s: now_s,
                deadline_override_s: request.deadline_s,
            },
        );
        let released = {
            let _span = prof::Span::enter(prof::Phase::SchedulerArrival);
            self.scheduler
                .on_arrival(packet, now_s)
                .map_err(|_| CoreError::UnknownCargoApp { app })?
        };
        self.drain_scheduler_events();
        // eTrain always defers on arrival, but honor the trait contract:
        // anything released immediately is stashed for the next tick.
        let stashed: Vec<TransmitDecision> = released
            .into_iter()
            .filter_map(|p| self.decision_for(p, now_s, None))
            .collect();
        self.stashed_decisions.extend(stashed);
        Ok(match (evicted, flushed) {
            (Some(victim), _) => Admission::AdmittedWithEviction {
                id,
                evicted: victim,
            },
            (None, Some(decision)) => Admission::AdmittedWithFlush {
                id,
                flushed: decision,
            },
            (None, None) => Admission::Admitted { id },
        })
    }

    /// Notifies the core that `train` transmitted a heartbeat at `now_s`
    /// (the paper's Xposed trigger) and runs a heartbeat slot of
    /// Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTrainApp`] for unregistered trains and
    /// [`CoreError::TimeWentBackwards`] for non-monotone timestamps.
    pub fn on_heartbeat(
        &mut self,
        train: TrainAppId,
        now_s: f64,
    ) -> Result<Vec<TransmitDecision>, CoreError> {
        self.advance_clock(now_s)?;
        if train.index() >= self.trains.len() {
            return Err(CoreError::UnknownTrainApp { train });
        }
        self.monitor.observe(train, now_s);
        self.stats.heartbeats += 1;
        // The core is *notified* of the heartbeat, it does not transmit
        // it, so the payload size is unknown at this layer.
        self.record(now_s, Event::HeartbeatFired { size_bytes: 0 });
        Ok(self.run_slot(now_s, Some(train)))
    }

    /// Runs a regular scheduler slot at `now_s` and returns the decisions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TimeWentBackwards`] for non-monotone
    /// timestamps.
    pub fn tick(&mut self, now_s: f64) -> Result<Vec<TransmitDecision>, CoreError> {
        self.advance_clock(now_s)?;
        Ok(self.run_slot(now_s, None))
    }

    /// Cancels a pending request (the user deleted a queued post, or the
    /// data became stale before any train departed). Returns `true` if the
    /// request was still pending and is now withdrawn, `false` if it was
    /// already decided or never existed — cancellation after a decision is
    /// a no-op because the cargo app may already be transmitting.
    pub fn cancel(&mut self, request: RequestId) -> bool {
        let Some((&packet_id, _)) = self.pending.iter().find(|(_, meta)| meta.id == request) else {
            return false;
        };
        for app_idx in 0..self.profiles.len() {
            if self
                .scheduler
                .force_release(CargoAppId(app_idx), packet_id)
                .is_some()
            {
                self.pending.remove(&packet_id);
                self.stats.cancelled += 1;
                return true;
            }
        }
        // Metadata existed but the packet was not in any waiting queue —
        // an immediate release is parked in the stashed-decisions path;
        // withdraw it from there too.
        let before = self.stashed_decisions.len();
        self.stashed_decisions.retain(|d| d.request != request);
        if self.stashed_decisions.len() != before {
            self.pending.remove(&packet_id);
            self.stats.cancelled += 1;
            return true;
        }
        false
    }

    /// Cancels a request waiting out a retry backoff (the user gave up on
    /// the failing transfer). Returns `true` if the request was backing
    /// off and is now withdrawn. Note [`ETrainCore::cancel`] covers
    /// requests still pending a first decision; this covers the
    /// failed-and-backing-off state.
    pub fn cancel_backoff(&mut self, request: RequestId) -> bool {
        let Some(pos) = self.backoffs.iter().position(|b| b.meta.id == request) else {
            return false;
        };
        let b = self.backoffs.remove(pos);
        self.failed_attempts.remove(&b.packet.id);
        self.stats.cancelled += 1;
        true
    }

    /// Reports the outcome of a decided transmission. Cargo apps (or the
    /// transport layer acting for them) call this after acting on a
    /// [`TransmitDecision`]:
    ///
    /// - [`TxResult::Delivered`] closes the request;
    /// - [`TxResult::Failed`] runs the retry state machine: the request
    ///   either re-enters the scheduler after an exponential backoff with
    ///   jitter — keeping its *original* submission time, so its delay
    ///   cost keeps growing — or is abandoned when attempts are exhausted
    ///   or its age would pass the give-up threshold (the per-request
    ///   deadline when one was set, the policy's `give_up_age_s`
    ///   otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownRequest`] if `request` is not awaiting
    /// a result (never decided, already closed, or reported twice) and
    /// [`CoreError::TimeWentBackwards`] for non-monotone timestamps.
    pub fn report_result(
        &mut self,
        request: RequestId,
        result: TxResult,
        now_s: f64,
    ) -> Result<RetryVerdict, CoreError> {
        self.advance_clock(now_s)?;
        let inflight = self
            .awaiting
            .remove(&request)
            .ok_or(CoreError::UnknownRequest { request })?;
        match result {
            TxResult::Delivered => {
                self.stats.delivered += 1;
                self.failed_attempts.remove(&inflight.packet.id);
                Ok(RetryVerdict::Delivered)
            }
            TxResult::Failed => {
                let attempts = self
                    .failed_attempts
                    .get(&inflight.packet.id)
                    .copied()
                    .unwrap_or(0)
                    + 1;
                self.failed_attempts.insert(inflight.packet.id, attempts);
                // Deadline-aware give-up: a per-request deadline replaces
                // the policy's default patience.
                let policy = RetryPolicy {
                    give_up_age_s: inflight
                        .meta
                        .deadline_override_s
                        .unwrap_or(self.config.retry.give_up_age_s),
                    ..self.config.retry
                };
                let jitter = hash_unit(RETRY_JITTER_SEED, inflight.packet.id, u64::from(attempts));
                match policy.decide(attempts, now_s, inflight.meta.submitted_at_s, jitter) {
                    RetryDecision::RetryAfter(delay) => {
                        self.stats.retries += 1;
                        self.record(
                            now_s,
                            Event::RetryAttempt {
                                packet_id: inflight.packet.id,
                                attempt: attempts,
                                abandoned: false,
                            },
                        );
                        self.backoffs.push(Backoff {
                            resume_at_s: now_s + delay,
                            packet: inflight.packet,
                            meta: inflight.meta,
                        });
                        Ok(RetryVerdict::RetryScheduled {
                            resume_at_s: now_s + delay,
                        })
                    }
                    RetryDecision::Abandon => {
                        self.stats.abandoned += 1;
                        self.record(
                            now_s,
                            Event::RetryAttempt {
                                packet_id: inflight.packet.id,
                                attempt: attempts,
                                abandoned: true,
                            },
                        );
                        self.failed_attempts.remove(&inflight.packet.id);
                        Ok(RetryVerdict::Abandoned)
                    }
                }
            }
        }
    }

    /// Whether a [`ETrainCore::tick`] at `now_s` could possibly produce a
    /// decision or mutate state — the quiescence probe behind timer-driven
    /// slot delivery. When this returns `false` the tick would be a pure
    /// no-op: nothing is stashed, the scheduler holds no packets (so no
    /// cost breach, deadline override, or watchdog flush can release
    /// anything), no retry backoff has come due, and train liveness has
    /// not flipped since the last slot. A driver may then skip the tick
    /// entirely instead of polling every slot, exactly as the simulator's
    /// event kernel retires quiescent slot events in batches.
    pub fn has_due_work(&self, now_s: f64) -> bool {
        !self.stashed_decisions.is_empty()
            || self.scheduler.pending() > 0
            || self.backoffs.iter().any(|b| b.resume_at_s <= now_s)
            || self.trains_alive(now_s) != self.was_alive
    }

    /// Whether the scheduler currently considers any train app alive.
    pub fn trains_alive(&self, now_s: f64) -> bool {
        self.trains.iter().enumerate().any(|(idx, record)| {
            match self.monitor.status(TrainAppId(idx), now_s) {
                TrainStatus::Alive => true,
                TrainStatus::Dead => false,
                TrainStatus::Undetermined => {
                    now_s - record.registered_at_s <= self.config.startup_grace_s
                }
            }
        })
    }

    /// The next predicted train departure strictly after `now_s`, if the
    /// monitor has learned a cycle.
    pub fn next_train_departure(&self, now_s: f64) -> Option<(TrainAppId, f64)> {
        self.monitor.next_departure(now_s)
    }

    fn advance_clock(&mut self, now_s: f64) -> Result<(), CoreError> {
        if now_s < self.now_s {
            return Err(CoreError::TimeWentBackwards {
                now_s: self.now_s,
                supplied_s: now_s,
            });
        }
        self.now_s = now_s;
        Ok(())
    }

    fn run_slot(&mut self, now_s: f64, heartbeat: Option<TrainAppId>) -> Vec<TransmitDecision> {
        let mut decisions = std::mem::take(&mut self.stashed_decisions);

        // Watchdog (paper Sec. V-3): count alive→dead transitions. The
        // scheduler itself stops deferring once the slot context reports
        // no live trains, so the flush is observable as released packets;
        // the counter makes it visible in `CoreStats`. A dead→alive
        // transition (train restart) resumes piggybacking automatically.
        let alive = self.trains_alive(now_s);
        if self.was_alive != alive {
            if !alive {
                self.stats.watchdog_flushes += 1;
            }
            self.record(
                now_s,
                Event::HealthTransition {
                    from: if alive { "dead" } else { "alive" }.to_string(),
                    to: if alive { "alive" } else { "dead" }.to_string(),
                    cause: "train-liveness watchdog".to_string(),
                },
            );
        }
        self.was_alive = alive;

        // Re-admit failed requests whose backoff has elapsed, through the
        // scheduler's failure-feedback hook (original arrival preserved).
        if !self.backoffs.is_empty() {
            let mut due: Vec<Backoff> = Vec::new();
            self.backoffs.retain(|b| {
                if b.resume_at_s <= now_s {
                    due.push(*b);
                    false
                } else {
                    true
                }
            });
            due.sort_by(|a, b| a.resume_at_s.total_cmp(&b.resume_at_s));
            for b in due {
                self.pending.insert(b.packet.id, b.meta);
                // The app was registered when the packet was first
                // admitted; an unknown-app error here is an invariant
                // break. Rather than panic (or lose the request), fall
                // back to releasing it immediately.
                let released = {
                    let _span = prof::Span::enter(prof::Phase::SchedulerRetry);
                    match self.scheduler.on_tx_failure(b.packet, now_s) {
                        Ok(released) => released,
                        Err(_) => vec![b.packet],
                    }
                };
                decisions.extend(
                    released
                        .into_iter()
                        .filter_map(|p| self.decision_for(p, now_s, None)),
                );
            }
            self.drain_scheduler_events();
        }

        // Per-request deadline overrides: force-release anything that would
        // violate its own deadline by waiting one more slot.
        let critical: Vec<(u64, CargoAppId)> = self
            .pending
            .iter()
            .filter_map(|(&packet_id, meta)| {
                let deadline = meta.deadline_override_s?;
                if now_s + self.config.slot_s - meta.submitted_at_s >= deadline {
                    Some(packet_id)
                } else {
                    None
                }
            })
            .flat_map(|packet_id| {
                (0..self.profiles.len()).map(move |app| (packet_id, CargoAppId(app)))
            })
            .collect();
        for (packet_id, app) in critical {
            if let Some(p) = self.scheduler.force_release(app, packet_id) {
                decisions.extend(self.decision_for(p, now_s, None));
            }
        }

        let ctx = SlotContext {
            now_s,
            heartbeat_departing: heartbeat.is_some(),
            predicted_bandwidth_bps: 0.0, // Algorithm 1 is channel-oblivious
            trains_alive: self.trains_alive(now_s),
        };
        let slot_released = {
            let _span = prof::Span::enter(prof::Phase::SchedulerSlot);
            self.scheduler.on_slot(&ctx)
        };
        self.drain_scheduler_events();
        let released: Vec<TransmitDecision> = slot_released
            .into_iter()
            .filter_map(|p| self.decision_for(p, now_s, heartbeat))
            .collect();
        decisions.extend(released);
        decisions
    }

    fn decision_for(
        &mut self,
        packet: Packet,
        now_s: f64,
        piggybacked_on: Option<TrainAppId>,
    ) -> Option<TransmitDecision> {
        // A released packet without pending metadata is an internal
        // invariant break (it can only mean double release); drop it
        // rather than panic on a user-reachable path.
        let Some(meta) = self.pending.remove(&packet.id) else {
            debug_assert!(false, "released packet has pending metadata");
            return None;
        };
        self.stats.decided += 1;
        if piggybacked_on.is_some() {
            self.stats.piggybacked += 1;
        }
        // Track the decided request until its outcome is reported, so a
        // failure can be retried with its original submission metadata.
        self.awaiting.insert(meta.id, InFlight { packet, meta });
        Some(TransmitDecision {
            request: meta.id,
            app: packet.app,
            size_bytes: packet.size_bytes,
            decided_at_s: now_s,
            submitted_at_s: meta.submitted_at_s,
            piggybacked_on,
        })
    }

    /// Drains every request the core still holds — stashed decisions,
    /// scheduler-queued packets (oldest first) and retry backoffs — into
    /// immediate [`TransmitDecision`]s, so a shutdown can surface in-flight
    /// work instead of silently dropping it. The drained decisions enter
    /// the awaiting set like any other; outcomes may still be reported.
    pub fn drain(&mut self) -> Vec<TransmitDecision> {
        let now_s = self.now_s;
        let mut out = std::mem::take(&mut self.stashed_decisions);
        let queued = self.scheduler.drain_pending();
        out.extend(
            queued
                .into_iter()
                .filter_map(|p| self.decision_for(p, now_s, None)),
        );
        let mut backoffs = std::mem::take(&mut self.backoffs);
        backoffs.sort_by(|a, b| {
            a.resume_at_s
                .total_cmp(&b.resume_at_s)
                .then(a.packet.id.cmp(&b.packet.id))
        });
        for b in backoffs {
            self.failed_attempts.remove(&b.packet.id);
            self.pending.insert(b.packet.id, b.meta);
            out.extend(self.decision_for(b.packet, now_s, None));
        }
        out
    }

    /// A deterministic FNV-1a fingerprint of the core's complete mutable
    /// state: configuration, registered apps, pending/awaiting/backing-off
    /// requests (sorted, so hash-map iteration order cannot leak in),
    /// retry attempt counts, cumulative stats, id counters, the clock, and
    /// train liveness. Two cores that processed the same command stream
    /// (see [`ETrainCore::apply`]) fingerprint identically; recovery uses
    /// this to prove a replayed core matches the pre-crash one bit for
    /// bit, and checkpoints store it to validate the journal they summarize.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            // Field separator, so ("ab","c") and ("a","bc") differ.
            hash ^= 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        // Plain-data sections serialize infallibly; a serializer error
        // here would be a wiring bug, so degrade to a marker byte rather
        // than panic on the user-reachable path.
        let mut mix_json = |value: &dyn erased_ser::ErasedSerialize| match value.to_json() {
            Ok(json) => mix(json.as_bytes()),
            Err(_) => mix(b"<unserializable>"),
        };
        mix_json(&self.config);
        mix_json(&self.profiles);
        for train in &self.trains {
            mix_json(&train.name);
            mix_json(&train.registered_at_s.to_bits());
        }
        let mut pending: Vec<(u64, PendingRequest)> =
            self.pending.iter().map(|(&k, &v)| (k, v)).collect();
        pending.sort_by_key(|(k, _)| *k);
        for (packet_id, meta) in pending {
            mix_json(&packet_id);
            mix_json(&meta.id);
            mix_json(&meta.submitted_at_s.to_bits());
            mix_json(&meta.deadline_override_s.map(f64::to_bits));
        }
        let mut awaiting: Vec<(RequestId, InFlight)> =
            self.awaiting.iter().map(|(&k, &v)| (k, v)).collect();
        awaiting.sort_by_key(|(k, _)| *k);
        for (request, inflight) in awaiting {
            mix_json(&request);
            mix_json(&inflight.packet);
            mix_json(&inflight.meta.submitted_at_s.to_bits());
        }
        let mut backoffs: Vec<&Backoff> = self.backoffs.iter().collect();
        backoffs.sort_by(|a, b| {
            a.packet
                .id
                .cmp(&b.packet.id)
                .then(a.resume_at_s.total_cmp(&b.resume_at_s))
        });
        for b in backoffs {
            mix_json(&b.packet);
            mix_json(&b.resume_at_s.to_bits());
        }
        let mut attempts: Vec<(u64, u32)> =
            self.failed_attempts.iter().map(|(&k, &v)| (k, v)).collect();
        attempts.sort_by_key(|(k, _)| *k);
        mix_json(&attempts);
        mix_json(&self.stashed_decisions);
        mix_json(&self.stats);
        mix_json(&self.was_alive);
        mix_json(&self.next_packet_id);
        mix_json(&self.next_request_id);
        mix_json(&self.now_s.to_bits());
        hash
    }
}

/// A minimal object-safe serialization shim so [`ETrainCore::fingerprint`]
/// can mix heterogeneous fields through one closure without monomorphizing
/// it per type.
mod erased_ser {
    /// Object-safe "render yourself as JSON" trait.
    pub trait ErasedSerialize {
        /// Serializes the value to its canonical JSON string.
        fn to_json(&self) -> Result<String, serde_json::Error>;
    }

    impl<T: serde::Serialize> ErasedSerialize for T {
        fn to_json(&self) -> Result<String, serde_json::Error> {
            serde_json::to_string(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_sched::CostProfile;

    fn core() -> (ETrainCore, TrainAppId, CargoAppId) {
        let mut core = ETrainCore::new(CoreConfig {
            theta: 5.0, // high gate: only heartbeats release in tests
            ..CoreConfig::default()
        });
        let train = core.register_train("WeChat");
        let cargo = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        (core, train, cargo)
    }

    #[test]
    fn request_rides_the_next_train() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(5_000), 10.0)
            .unwrap()
            .id()
            .unwrap();
        assert!(core.tick(11.0).unwrap().is_empty());
        assert_eq!(core.pending_requests(), 1);

        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        let d = decisions[0];
        assert_eq!(d.request, id);
        assert_eq!(d.piggybacked_on, Some(train));
        assert_eq!(d.delay_s(), 260.0);
        assert_eq!(core.pending_requests(), 0);
    }

    #[test]
    fn unknown_apps_are_rejected() {
        let (mut core, _, _) = core();
        let err = core
            .submit(CargoAppId(7), TransmitRequest::upload(1), 0.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownCargoApp { .. }));
        let err = core.on_heartbeat(TrainAppId(7), 0.0).unwrap_err();
        assert!(matches!(err, CoreError::UnknownTrainApp { .. }));
    }

    #[test]
    fn time_must_be_monotone() {
        let (mut core, _, cargo) = core();
        core.submit(cargo, TransmitRequest::upload(1), 50.0)
            .unwrap();
        let err = core
            .submit(cargo, TransmitRequest::upload(1), 10.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::TimeWentBackwards { .. }));
    }

    #[test]
    fn per_request_deadline_override_forces_release() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(100).with_deadline(20.0), 5.0)
            .unwrap();
        assert!(core.tick(10.0).unwrap().is_empty());
        // At t=24 the next slot would pass the 20 s override (5 + 20 = 25).
        let decisions = core.tick(24.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].piggybacked_on, None);
    }

    #[test]
    fn dead_trains_flush_pending_requests() {
        let (mut core, train, cargo) = core();
        // Teach the monitor a 100 s cycle.
        for j in 0..4 {
            core.on_heartbeat(train, j as f64 * 100.0).unwrap();
        }
        core.submit(cargo, TransmitRequest::upload(100), 350.0)
            .unwrap();
        // The train dies (no heartbeat for >2.5 cycles): requests flush.
        let decisions = core.tick(900.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert!(!core.trains_alive(900.0));
    }

    #[test]
    fn startup_grace_keeps_unobserved_trains_alive() {
        let (core, _, _) = core();
        assert!(core.trains_alive(100.0)); // within grace
        assert!(!core.trains_alive(10_000.0)); // grace expired, never seen
    }

    #[test]
    fn no_trains_registered_means_immediate_release() {
        let mut core = ETrainCore::new(CoreConfig::default());
        let cargo = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        core.submit(cargo, TransmitRequest::upload(100), 1.0)
            .unwrap();
        let decisions = core.tick(2.0).unwrap();
        assert_eq!(
            decisions.len(),
            1,
            "no trains: the scheduler must not defer"
        );
    }

    #[test]
    fn late_cargo_registration_preserves_pending_requests() {
        let (mut core, train, cargo0) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id0 = core
            .submit(cargo0, TransmitRequest::upload(100), 5.0)
            .unwrap()
            .id()
            .unwrap();
        // Second cargo app registers while a request is pending.
        let cargo1 = core.register_cargo(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
        let id1 = core
            .submit(cargo1, TransmitRequest::upload(200), 6.0)
            .unwrap()
            .id()
            .unwrap();
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        let mut ids: Vec<RequestId> = decisions.iter().map(|d| d.request).collect();
        ids.sort();
        assert_eq!(ids, vec![id0, id1]);
    }

    #[test]
    fn monitor_predicts_next_departure() {
        let (mut core, train, _) = core();
        for j in 0..4 {
            core.on_heartbeat(train, j as f64 * 270.0).unwrap();
        }
        let (t, when) = core.next_train_departure(850.0).unwrap();
        assert_eq!(t, train);
        assert!((when - 1080.0).abs() < 1.0);
    }

    #[test]
    fn train_names_are_recorded() {
        let (core, train, _) = core();
        assert_eq!(core.train_name(train), Some("WeChat"));
        assert_eq!(core.train_name(TrainAppId(9)), None);
    }

    #[test]
    fn cancel_withdraws_pending_requests_only() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let keep = core
            .submit(cargo, TransmitRequest::upload(100), 5.0)
            .unwrap()
            .id()
            .unwrap();
        let drop = core
            .submit(cargo, TransmitRequest::upload(200), 6.0)
            .unwrap()
            .id()
            .unwrap();

        assert!(core.cancel(drop), "pending request can be cancelled");
        assert!(!core.cancel(drop), "second cancel is a no-op");
        assert_eq!(core.pending_requests(), 1);

        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].request, keep);
        assert!(!core.cancel(keep), "decided request cannot be cancelled");
    }

    #[test]
    fn stats_track_the_request_lifecycle() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(1), 1.0).unwrap();
        let victim = core
            .submit(cargo, TransmitRequest::upload(2), 2.0)
            .unwrap()
            .id()
            .unwrap();
        assert!(core.cancel(victim));
        core.on_heartbeat(train, 270.0).unwrap();

        let stats = core.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.decided, 1);
        assert_eq!(stats.piggybacked, 1);
        assert_eq!(stats.heartbeats, 2);
    }

    #[test]
    fn failed_transmission_retries_with_backoff_and_preserves_submission() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(1_000), 10.0)
            .unwrap()
            .id()
            .unwrap();
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(core.awaiting_results(), 1);

        // The transfer fails: a backed-off retry is scheduled.
        let verdict = core.report_result(id, TxResult::Failed, 271.0).unwrap();
        let RetryVerdict::RetryScheduled { resume_at_s } = verdict else {
            panic!("expected a retry, got {verdict:?}");
        };
        assert!(
            resume_at_s > 271.0 && resume_at_s < 275.0,
            "~2 s base backoff, got resume at {resume_at_s}"
        );
        assert_eq!(core.backing_off(), 1);
        assert_eq!(core.awaiting_results(), 0);

        // Before the backoff elapses nothing re-enters the scheduler.
        assert!(core.tick(271.2).unwrap().is_empty());
        assert_eq!(core.backing_off(), 1);

        // After it elapses the request is re-admitted (and defers again —
        // Θ is high in this fixture — until the next train).
        assert!(core.tick(resume_at_s + 0.1).unwrap().is_empty());
        assert_eq!(core.backing_off(), 0);
        assert_eq!(core.pending_requests(), 1);
        let decisions = core.on_heartbeat(train, 540.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].request, id);
        assert_eq!(
            decisions[0].submitted_at_s, 10.0,
            "retry keeps the original submission time"
        );

        // Second attempt succeeds.
        let verdict = core.report_result(id, TxResult::Delivered, 541.0).unwrap();
        assert_eq!(verdict, RetryVerdict::Delivered);
        let stats = core.stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.abandoned, 0);
        assert_eq!(stats.decided, 2, "two decisions for the same request");
    }

    #[test]
    fn exhausted_attempts_abandon_the_request() {
        let mut core = ETrainCore::new(CoreConfig {
            theta: 5.0,
            retry: etrain_sched::RetryPolicy {
                max_attempts: 2,
                ..etrain_sched::RetryPolicy::default()
            },
            ..CoreConfig::default()
        });
        let train = core.register_train("WeChat");
        let cargo = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(1_000), 10.0)
            .unwrap()
            .id()
            .unwrap();

        let d = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(d.len(), 1);
        let RetryVerdict::RetryScheduled { resume_at_s } =
            core.report_result(id, TxResult::Failed, 271.0).unwrap()
        else {
            panic!("first failure should retry");
        };
        core.tick(resume_at_s + 0.1).unwrap();
        let d = core.on_heartbeat(train, 540.0).unwrap();
        assert_eq!(d.len(), 1);

        // Second failure hits max_attempts = 2: abandoned.
        let verdict = core.report_result(id, TxResult::Failed, 541.0).unwrap();
        assert_eq!(verdict, RetryVerdict::Abandoned);
        assert_eq!(core.stats().abandoned, 1);
        assert_eq!(core.backing_off(), 0);
        assert_eq!(core.pending_requests(), 0);
    }

    #[test]
    fn per_request_deadline_bounds_retrying() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(100).with_deadline(20.0), 5.0)
            .unwrap()
            .id()
            .unwrap();
        // The deadline override force-releases at ~24 s.
        let decisions = core.tick(24.0).unwrap();
        assert_eq!(decisions.len(), 1);
        // Failing at 25: age at next attempt ≈ 25 + 2 − 5 = 22 > 20 —
        // deadline-aware give-up, no retry.
        let verdict = core.report_result(id, TxResult::Failed, 25.0).unwrap();
        assert_eq!(verdict, RetryVerdict::Abandoned);
        assert_eq!(core.stats().abandoned, 1);
    }

    #[test]
    fn report_result_rejects_unknown_and_double_reports() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let err = core
            .report_result(RequestId(99), TxResult::Delivered, 1.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownRequest { .. }));
        assert!(err.to_string().contains("req#99"));

        let id = core
            .submit(cargo, TransmitRequest::upload(1), 2.0)
            .unwrap()
            .id()
            .unwrap();
        core.on_heartbeat(train, 270.0).unwrap();
        core.report_result(id, TxResult::Delivered, 271.0).unwrap();
        let err = core
            .report_result(id, TxResult::Delivered, 272.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownRequest { .. }));
    }

    #[test]
    fn cancel_backoff_withdraws_a_failing_request() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(1_000), 10.0)
            .unwrap()
            .id()
            .unwrap();
        core.on_heartbeat(train, 270.0).unwrap();
        core.report_result(id, TxResult::Failed, 271.0).unwrap();
        assert_eq!(core.backing_off(), 1);
        assert!(core.cancel_backoff(id));
        assert!(!core.cancel_backoff(id), "second cancel is a no-op");
        assert_eq!(core.backing_off(), 0);
        assert_eq!(core.stats().cancelled, 1);
        // The request never comes back.
        assert!(core.tick(400.0).unwrap().is_empty());
        assert!(core.on_heartbeat(train, 540.0).unwrap().is_empty());
    }

    #[test]
    fn watchdog_counts_train_death_transitions() {
        let (mut core, train, cargo) = core();
        // Teach the monitor a 100 s cycle.
        for j in 0..4 {
            core.on_heartbeat(train, j as f64 * 100.0).unwrap();
        }
        core.tick(350.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(100), 360.0)
            .unwrap();
        // All trains dead: the flush releases the pending request and the
        // watchdog records one transition.
        let decisions = core.tick(900.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(core.stats().watchdog_flushes, 1);
        // A restarted train revives piggybacking; a later death counts
        // again.
        core.on_heartbeat(train, 1000.0).unwrap();
        assert!(core.trains_alive(1000.0));
        core.tick(3000.0).unwrap();
        assert_eq!(core.stats().watchdog_flushes, 2);
    }

    fn bounded_core(policy: ShedPolicy, cap: usize) -> (ETrainCore, TrainAppId, CargoAppId) {
        let mut core = ETrainCore::new(CoreConfig {
            theta: 1e9, // defer everything: queue pressure builds
            admission: AdmissionConfig::unbounded()
                .with_global_capacity(cap)
                .with_policy(policy),
            ..CoreConfig::default()
        });
        let train = core.register_train("WeChat");
        // Weibo's f2 cost grows strictly with age (Mail's f1 is zero
        // before its deadline), so value-based eviction is observable.
        let cargo = core.register_cargo(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
        (core, train, cargo)
    }

    #[test]
    fn reject_new_sheds_overflowing_submissions() {
        let (mut core, train, cargo) = bounded_core(ShedPolicy::RejectNew, 2);
        core.on_heartbeat(train, 0.0).unwrap();
        for i in 0..2 {
            let a = core
                .submit(cargo, TransmitRequest::upload(100), i as f64 + 1.0)
                .unwrap();
            assert!(matches!(a, Admission::Admitted { .. }));
        }
        let a = core
            .submit(cargo, TransmitRequest::upload(100), 3.0)
            .unwrap();
        assert_eq!(a, Admission::Rejected);
        assert_eq!(a.id(), None);
        assert_eq!(core.pending_requests(), 2, "capacity is never exceeded");
        let stats = core.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.forced_flushes, 0);
    }

    #[test]
    fn drop_lowest_value_evicts_to_admit() {
        let (mut core, train, cargo) = bounded_core(ShedPolicy::DropLowestValue, 2);
        core.on_heartbeat(train, 0.0).unwrap();
        let first = core
            .submit(cargo, TransmitRequest::upload(100), 1.0)
            .unwrap()
            .id()
            .unwrap();
        core.submit(cargo, TransmitRequest::upload(100), 5.0)
            .unwrap();
        // Same app and profile: the youngest queued packet (the second)
        // has the cheapest delay cost, so it is the eviction victim.
        let a = core
            .submit(cargo, TransmitRequest::upload(100), 9.0)
            .unwrap();
        let Admission::AdmittedWithEviction { id, evicted } = a else {
            panic!("expected an eviction, got {a:?}");
        };
        assert_ne!(evicted, first, "the oldest (highest-cost) request survives");
        assert_eq!(core.pending_requests(), 2);
        assert_eq!(core.stats().shed, 1);
        // The evicted request never resurfaces; the survivors both ride
        // the next train.
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        let mut riding: Vec<RequestId> = decisions.iter().map(|d| d.request).collect();
        riding.sort();
        assert_eq!(riding, vec![first, id]);
    }

    #[test]
    fn force_flush_oldest_releases_early_to_admit() {
        let (mut core, train, cargo) = bounded_core(ShedPolicy::ForceFlushOldest, 2);
        core.on_heartbeat(train, 0.0).unwrap();
        let oldest = core
            .submit(cargo, TransmitRequest::upload(100), 1.0)
            .unwrap()
            .id()
            .unwrap();
        core.submit(cargo, TransmitRequest::upload(100), 2.0)
            .unwrap();
        let a = core
            .submit(cargo, TransmitRequest::upload(100), 3.0)
            .unwrap();
        let Admission::AdmittedWithFlush { id, flushed } = a else {
            panic!("expected a forced flush, got {a:?}");
        };
        assert_eq!(flushed.request, oldest, "the oldest request is flushed");
        assert_eq!(
            flushed.piggybacked_on, None,
            "an early flush rides no train"
        );
        assert_ne!(id, oldest);
        assert_eq!(core.pending_requests(), 2);
        let stats = core.stats();
        assert_eq!(stats.shed, 0, "a forced flush transmits; nothing is lost");
        assert_eq!(stats.forced_flushes, 1);
        assert_eq!(stats.decided, 1);
        // The flushed decision is awaiting a result like any other.
        assert_eq!(core.awaiting_results(), 1);
        assert_eq!(
            core.report_result(oldest, TxResult::Delivered, 4.0)
                .unwrap(),
            RetryVerdict::Delivered
        );
    }

    #[test]
    fn per_app_capacity_binds_independently() {
        let mut core = ETrainCore::new(CoreConfig {
            theta: 1e9,
            admission: AdmissionConfig::unbounded()
                .with_per_app_capacity(1)
                .with_policy(ShedPolicy::RejectNew),
            ..CoreConfig::default()
        });
        let train = core.register_train("WeChat");
        let mail = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        let weibo = core.register_cargo(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
        core.on_heartbeat(train, 0.0).unwrap();
        assert!(core
            .submit(mail, TransmitRequest::upload(1), 1.0)
            .unwrap()
            .is_admitted());
        assert_eq!(
            core.submit(mail, TransmitRequest::upload(1), 2.0).unwrap(),
            Admission::Rejected,
            "mail is at its per-app cap"
        );
        assert!(
            core.submit(weibo, TransmitRequest::upload(1), 3.0)
                .unwrap()
                .is_admitted(),
            "weibo has its own budget"
        );
    }

    #[test]
    fn drain_surfaces_queued_stashed_and_backing_off_requests() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let queued = core
            .submit(cargo, TransmitRequest::upload(100), 1.0)
            .unwrap()
            .id()
            .unwrap();
        let failing = core
            .submit(cargo, TransmitRequest::upload(200), 2.0)
            .unwrap()
            .id()
            .unwrap();
        // Decide the second request and fail it so it sits in backoff.
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 2);
        core.report_result(failing, TxResult::Failed, 271.0)
            .unwrap();
        assert_eq!(core.backing_off(), 1);
        // Re-queue another request that will still be waiting.
        assert_eq!(
            core.report_result(queued, TxResult::Delivered, 272.0)
                .unwrap(),
            RetryVerdict::Delivered
        );
        let waiting = core
            .submit(cargo, TransmitRequest::upload(300), 273.0)
            .unwrap()
            .id()
            .unwrap();

        let mut drained: Vec<RequestId> = core.drain().iter().map(|d| d.request).collect();
        drained.sort();
        assert_eq!(drained, vec![failing, waiting]);
        assert_eq!(core.pending_requests(), 0);
        assert_eq!(core.backing_off(), 0);
        assert!(core.drain().is_empty(), "drain is idempotent");
    }

    #[test]
    fn journal_captures_the_request_lifecycle() {
        let (mut core, train, cargo) = core();
        assert!(!core.journal_enabled());
        core.enable_journal();
        core.enable_journal(); // idempotent
        assert!(core.journal_enabled());

        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(1_000), 10.0)
            .unwrap()
            .id()
            .unwrap();
        assert!(core.tick(11.0).unwrap().is_empty());
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        core.report_result(id, TxResult::Failed, 271.0).unwrap();

        let journal = core.take_journal().expect("journal was enabled");
        assert!(!core.journal_enabled());
        assert!(core.take_journal().is_none(), "take is terminal");
        let kinds: Vec<&str> = journal.counts_by_kind().iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&"heartbeat_fired"), "{kinds:?}");
        assert!(kinds.contains(&"piggyback_decision"), "{kinds:?}");
        assert!(kinds.contains(&"retry_attempt"), "{kinds:?}");
        // Records are canonicalized: times never decrease.
        let times: Vec<f64> = journal.records().iter().map(|r| r.time_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn journal_records_shed_and_flush_decisions() {
        let (mut core, train, cargo) = bounded_core(ShedPolicy::RejectNew, 1);
        core.enable_journal();
        core.on_heartbeat(train, 0.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(1), 1.0).unwrap();
        assert_eq!(
            core.submit(cargo, TransmitRequest::upload(1), 2.0).unwrap(),
            Admission::Rejected
        );
        let journal = core.take_journal().unwrap();
        assert!(journal
            .records()
            .iter()
            .any(|r| matches!(r.event, Event::Shed { .. })));

        let (mut core, _, cargo) = bounded_core(ShedPolicy::ForceFlushOldest, 1);
        core.enable_journal();
        core.submit(cargo, TransmitRequest::upload(1), 1.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(1), 2.0).unwrap();
        let journal = core.take_journal().unwrap();
        assert!(journal
            .records()
            .iter()
            .any(|r| matches!(r.event, Event::ForcedFlush { packet_id: 0, .. })));
    }

    #[test]
    fn has_due_work_tracks_every_wakeup_source() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        assert!(
            !core.has_due_work(1.0),
            "an empty core has nothing due next slot"
        );

        // A queued packet makes slots non-quiescent until it is decided.
        let id = core
            .submit(cargo, TransmitRequest::upload(1_000), 10.0)
            .unwrap()
            .id()
            .unwrap();
        assert!(core.has_due_work(11.0));
        core.on_heartbeat(train, 270.0).unwrap();
        assert!(!core.has_due_work(271.0), "decided requests leave no work");

        // A retry backoff is due work only once its resume time passes.
        let verdict = core.report_result(id, TxResult::Failed, 271.0).unwrap();
        let RetryVerdict::RetryScheduled { resume_at_s } = verdict else {
            panic!("expected a retry, got {verdict:?}");
        };
        assert!(!core.has_due_work(271.1));
        assert!(core.has_due_work(resume_at_s + 0.1));
        core.tick(resume_at_s + 0.1).unwrap();

        // A liveness flip (the train dying) must not be skipped: the
        // watchdog flush and the health transition happen inside a tick.
        let decisions = core.on_heartbeat(train, 540.0).unwrap();
        assert_eq!(decisions.len(), 1, "the retried request rides the train");
        core.on_heartbeat(train, 810.0).unwrap();
        assert!(!core.has_due_work(811.0));
        assert!(core.has_due_work(5_000.0), "train death flips liveness");
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = CoreConfig {
            theta: 3.5,
            k: Some(12),
            slot_s: 0.5,
            startup_grace_s: 120.0,
            retry: RetryPolicy::for_deadline(90.0),
            admission: AdmissionConfig::unbounded()
                .with_global_capacity(64)
                .with_policy(ShedPolicy::DropLowestValue),
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: CoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
