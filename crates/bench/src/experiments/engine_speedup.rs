//! Engine speedup: slot kernel vs event kernel wall-clock on a sparse
//! standby scenario.
//!
//! The Fig. 1(a) standby workload is the event kernel's best case: hours
//! of simulated time in which nothing but widely spaced heartbeats
//! happens, so almost every slot boundary is quiescent and can be retired
//! in a batch. Both kernels run the *same* generated traces and must
//! produce bit-for-bit identical reports — the speedup headline is only
//! meaningful because the outputs are interchangeable.

use std::time::Instant;

use crate::ExperimentResult;
use etrain_sim::oracle::OracleMode;
use etrain_sim::{BandwidthSource, EngineKind, RunReport, Scenario, SchedulerKind, Table};
use etrain_trace::heartbeats::TrainAppSpec;
use etrain_trace::packets::CargoWorkload;

use super::s;

/// Timed repetitions per kernel; the minimum is reported, the standard
/// defense against scheduler noise on a shared machine.
const REPS: usize = 3;

/// Runs the engine-speedup comparison.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { 3600 } else { 4 * 3600 };
    let scenario = Scenario::paper_default()
        .duration_secs(horizon)
        .trains(TrainAppSpec::paper_trio())
        .workload(CargoWorkload::new(Vec::new())) // standby: heartbeats only
        .bandwidth(BandwidthSource::Constant(450_000.0))
        .scheduler(SchedulerKind::Baseline)
        .oracle(OracleMode::Off)
        .seed(1);
    let traces = scenario.generate_traces();

    let time_kernel = |kind: EngineKind| -> (RunReport, u64, f64) {
        let run = scenario.clone().engine(kind);
        let mut best_wall = f64::INFINITY;
        let mut result = None;
        for _ in 0..REPS {
            let started = Instant::now();
            let (report, output) = run
                .try_run_with_output_on(&traces)
                .expect("the standby scenario validates");
            best_wall = best_wall.min(started.elapsed().as_secs_f64());
            result = Some((report, output.events_processed));
        }
        let (report, events) = result.expect("REPS >= 1");
        (report, events, best_wall)
    };
    let (slot_report, slot_events, slot_wall) = time_kernel(EngineKind::Slot);
    let (event_report, event_events, event_wall) = time_kernel(EngineKind::Event);
    assert_eq!(
        slot_report, event_report,
        "the kernels must be bit-for-bit interchangeable"
    );

    let speedup = slot_wall / event_wall.max(f64::MIN_POSITIVE);
    let mut table = Table::new(
        format!(
            "Engine speedup — {} h standby, slot vs event kernel (min of {REPS} reps)",
            horizon / 3600
        ),
        &["kernel", "events_processed", "steps_run", "wall_ms"],
    );
    table.push_row_strings(vec![
        EngineKind::Slot.to_string(),
        slot_events.to_string(),
        slot_report.steps_run.to_string(),
        s(slot_wall * 1000.0),
    ]);
    table.push_row_strings(vec![
        EngineKind::Event.to_string(),
        event_events.to_string(),
        event_report.steps_run.to_string(),
        s(event_wall * 1000.0),
    ]);

    ExperimentResult::from_tables(vec![table])
        .headline("engine_speedup", speedup, "x")
        .headline("engine_slot_wall_ms", slot_wall * 1000.0, "ms")
        .headline("engine_event_wall_ms", event_wall * 1000.0, "ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_and_the_speedup_is_positive() {
        let result = run(true);
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].len(), 2);
        let speedup = result
            .headlines
            .iter()
            .find(|h| h.metric == "engine_speedup")
            .expect("speedup headline")
            .value;
        // Wall-clock ratios are machine-dependent; the report-equality
        // assert inside run() is the correctness gate. Here we only pin
        // that the measurement is sane.
        assert!(speedup.is_finite() && speedup > 0.0, "speedup {speedup}");
    }
}
