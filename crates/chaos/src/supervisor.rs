//! Process-level crash supervision of the durable daemon, plus the WAL
//! corruption oracle self-test.
//!
//! The supervisor ([`run_supervisor`]) spawns the real `etrain-svcd`
//! binary, drives it over the TCP line protocol with the deterministic
//! script of [`etrain_svc::script`], SIGKILLs it at seeded points,
//! restarts it against the same WAL directory, and asserts the recovered
//! fingerprint is bit-for-bit identical to a never-killed in-process
//! reference fed the same commands. Fault trials additionally arm the
//! `ETRAIN_WAL_FAULT` hook so the daemon dies *mid-append* — a torn
//! frame, a short header, a flipped checksum — and recovery must
//! truncate the damage rather than crash or replay garbage.
//!
//! The self-test ([`run_wal_selftest`]) closes the loop from the other
//! side: it damages WAL segment files directly ([`WalCorruption`]) and
//! proves the checksum path *detects* each damage class — the recovery
//! report shows truncated bytes, and the surviving prefix still replays
//! to the reference fingerprint.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use etrain_core::CoreConfig;
use etrain_svc::script::{script, ScriptStep};
use etrain_svc::{DurableService, ServiceState, SvcHealthConfig, WalConfig};
use serde::{Deserialize, Serialize};

/// Locates the `etrain-svcd` binary: the `ETRAIN_SVCD_BIN` override if
/// set, otherwise a sibling of the current executable (test binaries
/// live in `target/<profile>/deps`, the daemon one directory up).
/// Returns `None` when nothing exists at either location — callers
/// should then skip process-level trials rather than fail.
pub fn daemon_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("ETRAIN_SVCD_BIN") {
        let path = PathBuf::from(path);
        return path.exists().then_some(path);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("etrain-svcd");
    candidate.exists().then_some(candidate)
}

/// One supervised crash/recover trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorTrial {
    /// `sigkill@N` (killed after N acked steps) or `fault:<spec>`.
    pub kind: String,
    /// Steps acknowledged before the crash.
    pub acked_steps: usize,
    /// The recovered daemon's state fingerprint.
    pub recovered_fingerprint: u64,
    /// The never-killed reference's fingerprint over the same steps.
    pub reference_fingerprint: u64,
    /// Whether the two match — the zero-loss, bit-for-bit oracle.
    pub identical: bool,
    /// Wall-clock from daemon spawn to its `READY` line on restart.
    pub recovery_ms: f64,
    /// The restarted daemon's `RECOVERED` summary line.
    pub recovered_line: String,
}

/// The supervisor campaign's result, serializable as a CI artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorReport {
    /// The script seed.
    pub seed: u64,
    /// Every crash/recover trial, in execution order.
    pub trials: Vec<SupervisorTrial>,
    /// Harness-level failures (daemon would not spawn, protocol desync).
    pub errors: Vec<String>,
}

impl SupervisorReport {
    /// Trials whose recovered state matched the reference bit-for-bit.
    pub fn identical_count(&self) -> usize {
        self.trials.iter().filter(|t| t.identical).count()
    }

    /// Clean = no harness errors and every trial identical.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.identical_count() == self.trials.len()
    }

    /// The slowest observed recovery, in milliseconds.
    pub fn max_recovery_ms(&self) -> f64 {
        self.trials
            .iter()
            .map(|t| t.recovery_ms)
            .fold(0.0, f64::max)
    }
}

struct DaemonHandle {
    child: Child,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    recovered_line: String,
    startup: Duration,
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon(bin: &Path, wal_dir: &Path, fault: Option<&str>) -> Result<DaemonHandle, String> {
    let started = Instant::now();
    let mut cmd = Command::new(bin);
    cmd.env("ETRAIN_WAL", wal_dir)
        .env("ETRAIN_SVC_ADDR", "127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match fault {
        Some(spec) => cmd.env("ETRAIN_WAL_FAULT", spec),
        None => cmd.env_remove("ETRAIN_WAL_FAULT"),
    };
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("no captured stdout")?;
    let mut lines = BufReader::new(stdout);
    let mut recovered_line = String::new();
    lines
        .read_line(&mut recovered_line)
        .map_err(|e| format!("read RECOVERED line: {e}"))?;
    if !recovered_line.starts_with("RECOVERED ") {
        let _ = child.kill();
        return Err(format!("unexpected first line {recovered_line:?}"));
    }
    let mut ready = String::new();
    lines
        .read_line(&mut ready)
        .map_err(|e| format!("read READY line: {e}"))?;
    let addr = ready
        .trim()
        .strip_prefix("READY ")
        .ok_or_else(|| format!("unexpected second line {ready:?}"))?
        .to_string();
    let startup = started.elapsed();
    let writer = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    writer
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    let reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    Ok(DaemonHandle {
        child,
        reader,
        writer,
        recovered_line: recovered_line.trim().to_string(),
        startup,
    })
}

impl DaemonHandle {
    /// Sends one line; `Ok(None)` means the daemon died before
    /// answering (the expected shape of a fault-hook crash).
    fn roundtrip(&mut self, line: &str) -> Result<Option<String>, String> {
        if self
            .writer
            .write_all(format!("{line}\n").as_bytes())
            .is_err()
        {
            return Ok(None);
        }
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(response.trim().to_string())),
            Err(_) => Ok(None),
        }
    }

    fn fingerprint(&mut self) -> Result<u64, String> {
        let response = self
            .roundtrip("FPRINT")?
            .ok_or("daemon died answering FPRINT")?;
        let hex = response
            .strip_prefix("OK FPRINT ")
            .ok_or_else(|| format!("unexpected FPRINT response {response:?}"))?;
        u64::from_str_radix(hex, 16).map_err(|e| format!("fingerprint {hex:?}: {e}"))
    }

    fn sigkill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn wait_exit_code(mut self) -> Option<i32> {
        self.child.wait().ok().and_then(|status| status.code())
    }
}

/// Drives `steps[from..to]` into the daemon, applying each to the
/// reference in lockstep, and returns the number actually acked.
fn drive(
    daemon: &mut DaemonHandle,
    reference: &mut ServiceState,
    steps: &[ScriptStep],
    from: usize,
    to: usize,
) -> Result<usize, String> {
    for (i, step) in steps.iter().enumerate().take(to).skip(from) {
        match daemon.roundtrip(&step.line)? {
            Some(_ack) => {
                let _ = reference.apply(&step.command);
            }
            None => return Err(format!("daemon died unexpectedly at step {i}")),
        }
    }
    Ok(to)
}

/// Runs the SIGKILL leg of the supervisor campaign: one WAL directory,
/// one reference, kills at every point in `kill_points` (acked-step
/// counts, ascending), a restart-and-compare after each.
///
/// # Errors
///
/// Returns harness-level failures (spawn, protocol desync); oracle
/// divergence is reported per-trial, not as an error.
pub fn run_sigkill_trials(
    bin: &Path,
    wal_dir: &Path,
    seed: u64,
    steps_total: usize,
    kill_points: &[usize],
) -> Result<Vec<SupervisorTrial>, String> {
    let steps = script(seed, steps_total);
    let mut reference = ServiceState::new(CoreConfig::default(), SvcHealthConfig::default());
    let mut trials = Vec::new();
    let mut applied = 0usize;
    let mut daemon = spawn_daemon(bin, wal_dir, None)?;
    for &kill_at in kill_points {
        let kill_at = kill_at.min(steps.len());
        applied = drive(&mut daemon, &mut reference, &steps, applied, kill_at)?;
        daemon.sigkill();

        let mut restarted = spawn_daemon(bin, wal_dir, None)?;
        let recovered_fingerprint = restarted.fingerprint()?;
        let reference_fingerprint = reference.fingerprint();
        trials.push(SupervisorTrial {
            kind: format!("sigkill@{applied}"),
            acked_steps: applied,
            recovered_fingerprint,
            reference_fingerprint,
            identical: recovered_fingerprint == reference_fingerprint,
            recovery_ms: restarted.startup.as_secs_f64() * 1000.0,
            recovered_line: restarted.recovered_line.clone(),
        });
        daemon = restarted;
    }
    daemon.sigkill();
    Ok(trials)
}

/// Runs one mid-append fault trial: a fresh WAL directory, the fault
/// hook armed at record `at_record`, the script driven until the hook
/// fires (the daemon must die with [`etrain_svc::FAULT_EXIT_CODE`]),
/// then a clean restart whose recovered state must match the reference
/// over exactly the acked prefix — the torn record was never
/// acknowledged, so zero-loss does not cover it.
///
/// # Errors
///
/// Returns harness-level failures; divergence is reported in the trial.
pub fn run_fault_trial(
    bin: &Path,
    wal_dir: &Path,
    seed: u64,
    fault_spec: &str,
    at_record: usize,
) -> Result<SupervisorTrial, String> {
    let steps = script(seed, at_record + 4);
    let mut reference = ServiceState::new(CoreConfig::default(), SvcHealthConfig::default());
    let mut daemon = spawn_daemon(bin, wal_dir, Some(fault_spec))?;
    // Records and script steps are 1:1 (no duplicates in the script),
    // so steps 0..at_record ack cleanly and step at_record trips the
    // hook mid-append.
    for step in steps.iter().take(at_record) {
        match daemon.roundtrip(&step.line)? {
            Some(_) => {
                let _ = reference.apply(&step.command);
            }
            None => return Err("daemon died before the armed record".into()),
        }
    }
    if daemon.roundtrip(&steps[at_record].line)?.is_some() {
        return Err(format!("daemon answered the faulted append ({fault_spec})"));
    }
    let code = daemon.wait_exit_code();
    if code != Some(etrain_svc::FAULT_EXIT_CODE) {
        return Err(format!(
            "daemon exited {code:?}, expected {}",
            etrain_svc::FAULT_EXIT_CODE
        ));
    }

    let mut restarted = spawn_daemon(bin, wal_dir, None)?;
    let recovered_fingerprint = restarted.fingerprint()?;
    let reference_fingerprint = reference.fingerprint();
    let trial = SupervisorTrial {
        kind: format!("fault:{fault_spec}"),
        acked_steps: at_record,
        recovered_fingerprint,
        reference_fingerprint,
        identical: recovered_fingerprint == reference_fingerprint,
        recovery_ms: restarted.startup.as_secs_f64() * 1000.0,
        recovered_line: restarted.recovered_line.clone(),
    };
    restarted.sigkill();
    Ok(trial)
}

/// Runs the full supervisor campaign: SIGKILL trials at `kills` evenly
/// spread points over a `steps_total`-step script, then one mid-append
/// fault trial per damage kind (torn payload, short header, flipped
/// checksum). `scratch` must be a writable directory; every trial uses
/// a fresh subdirectory under it.
pub fn run_supervisor(bin: &Path, scratch: &Path, seed: u64, kills: usize) -> SupervisorReport {
    let steps_total = (kills.max(1)) * 6 + 10;
    let kill_points: Vec<usize> = (1..=kills).map(|k| k * steps_total / (kills + 1)).collect();
    let mut report = SupervisorReport {
        seed,
        trials: Vec::new(),
        errors: Vec::new(),
    };
    let sigkill_dir = scratch.join(format!("svc-sigkill-{seed}"));
    let _ = std::fs::remove_dir_all(&sigkill_dir);
    match run_sigkill_trials(bin, &sigkill_dir, seed, steps_total, &kill_points) {
        Ok(trials) => report.trials.extend(trials),
        Err(e) => report.errors.push(format!("sigkill leg: {e}")),
    }
    let _ = std::fs::remove_dir_all(&sigkill_dir);

    for (i, kind) in ["torn", "short", "crc"].iter().enumerate() {
        // Arm each fault a few records into the stream, offset per kind
        // so the trials damage different script positions.
        let at_record = 5 + 2 * i;
        let spec = format!("{kind}@{at_record}");
        let fault_dir = scratch.join(format!("svc-fault-{seed}-{kind}"));
        let _ = std::fs::remove_dir_all(&fault_dir);
        match run_fault_trial(
            bin,
            &fault_dir,
            seed.wrapping_add(i as u64),
            &spec,
            at_record,
        ) {
            Ok(trial) => report.trials.push(trial),
            Err(e) => report.errors.push(format!("fault {spec}: {e}")),
        }
        let _ = std::fs::remove_dir_all(&fault_dir);
    }
    report
}

/// A deliberate on-disk damage to a WAL directory, used to prove the
/// checksum path detects real corruption classes — the durable
/// counterpart of the engine-output [`Corruption`](crate::Corruption)
/// self-test tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalCorruption {
    /// A torn write: a frame header promising more payload than was
    /// ever written lands at the tail (SIGKILL mid-`write`).
    TornTail,
    /// A truncated segment: the file loses its last few bytes, cutting
    /// into the final frame (filesystem rollback after power loss).
    TruncatedSegment,
    /// A flipped payload byte in the last frame: length intact, CRC
    /// provably wrong (bit rot, torn sector rewrite).
    FlippedChecksum,
}

impl WalCorruption {
    /// Every corruption, for the self-test sweep.
    pub fn all() -> [WalCorruption; 3] {
        [
            WalCorruption::TornTail,
            WalCorruption::TruncatedSegment,
            WalCorruption::FlippedChecksum,
        ]
    }

    /// Applies the damage to the last WAL segment under `dir`. Returns
    /// `false` when there is nothing suitable to damage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn apply(&self, dir: &Path) -> std::io::Result<bool> {
        let Some(segment) = last_segment(dir)? else {
            return Ok(false);
        };
        let mut bytes = Vec::new();
        std::fs::File::open(&segment)?.read_to_end(&mut bytes)?;
        match self {
            WalCorruption::TornTail => {
                // Header claims 256 payload bytes; only 40 follow.
                let payload = [0xabu8; 40];
                let mut frame = Vec::new();
                frame.extend_from_slice(&256u32.to_le_bytes());
                frame.extend_from_slice(&etrain_obs::crc32(&payload).to_le_bytes());
                frame.extend_from_slice(&payload);
                let mut file = std::fs::OpenOptions::new().append(true).open(&segment)?;
                file.write_all(&frame)?;
                Ok(true)
            }
            WalCorruption::TruncatedSegment => {
                if bytes.len() < etrain_obs::WAL_MAGIC.len() + 6 {
                    return Ok(false);
                }
                let file = std::fs::OpenOptions::new().write(true).open(&segment)?;
                file.set_len(bytes.len() as u64 - 5)?;
                Ok(true)
            }
            WalCorruption::FlippedChecksum => {
                if bytes.len() <= etrain_obs::WAL_MAGIC.len() {
                    return Ok(false);
                }
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
                std::fs::write(&segment, &bytes)?;
                Ok(true)
            }
        }
    }
}

impl std::fmt::Display for WalCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WalCorruption::TornTail => "TornTail",
            WalCorruption::TruncatedSegment => "TruncatedSegment",
            WalCorruption::FlippedChecksum => "FlippedChecksum",
        };
        f.write_str(name)
    }
}

fn last_segment(dir: &Path) -> std::io::Result<Option<PathBuf>> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "seg")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    segments.sort();
    Ok(segments.pop())
}

/// One WAL corruption self-test verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalSelfTest {
    /// The damage class.
    pub corruption: String,
    /// Whether recovery reported the damage (truncated bytes or a
    /// non-clean tail) instead of replaying it.
    pub detected: bool,
    /// Bytes recovery truncated away.
    pub truncated_bytes: u64,
    /// Checksum-verified records lost to the damage (never acked ones
    /// only — the zero-loss bar is on the surviving prefix).
    pub records_lost: u64,
    /// Whether the recovered state matches an in-process reference
    /// replay of exactly the surviving record prefix.
    pub prefix_matches: bool,
}

/// Builds a real WAL under `scratch` (seeded script, small segments so
/// rotation happens), damages it with each [`WalCorruption`], recovers,
/// and reports whether the checksum path caught the damage and the
/// surviving prefix still replays bit-for-bit.
///
/// # Panics
///
/// Panics only on scratch-directory I/O failures.
pub fn run_wal_selftest(seed: u64, steps: usize, scratch: &Path) -> Vec<WalSelfTest> {
    let script = script(seed, steps);
    let mut results = Vec::new();
    for corruption in WalCorruption::all() {
        let dir = scratch.join(format!("wal-selftest-{seed}-{corruption}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = false;
        cfg.segment_bytes = 2048; // force rotation: recovery walks several segments
        let (mut service, _) = DurableService::open(
            cfg.clone(),
            CoreConfig::default(),
            SvcHealthConfig::default(),
        )
        .expect("fresh WAL opens");
        for step in &script {
            let _ = service.apply(step.command.clone());
        }
        let records_before = service.records();
        drop(service);

        let applied = corruption.apply(&dir).expect("damage applies");
        assert!(
            applied,
            "{corruption}: nothing to damage in {}",
            dir.display()
        );

        let (recovered, summary) =
            DurableService::open(cfg, CoreConfig::default(), SvcHealthConfig::default())
                .expect("recovery survives damage");
        let records_after = summary.wal.records;
        let detected = summary.wal.truncated_bytes > 0;

        // Replay the surviving prefix in process and compare.
        let mut reference = ServiceState::new(CoreConfig::default(), SvcHealthConfig::default());
        let mut replayed = 0u64;
        for step in &script {
            if replayed == records_after {
                break;
            }
            let _ = reference.apply(&step.command);
            replayed += 1;
        }
        results.push(WalSelfTest {
            corruption: corruption.to_string(),
            detected,
            truncated_bytes: summary.wal.truncated_bytes,
            records_lost: records_before - records_after,
            prefix_matches: recovered.fingerprint() == reference.fingerprint(),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "etrain-supervisor-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn wal_corruptions_are_detected_and_prefix_survives() {
        let dir = scratch("selftest");
        let results = run_wal_selftest(11, 40, &dir);
        assert_eq!(results.len(), WalCorruption::all().len());
        for result in &results {
            assert!(result.detected, "{result:?} escaped the checksum path");
            assert!(result.prefix_matches, "{result:?} diverged on replay");
            // Damage hits at most the final record: checksummed frames
            // before it must all survive.
            assert!(result.records_lost <= 1, "{result:?} lost history");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_campaign_is_clean_when_daemon_is_available() {
        let Some(bin) = daemon_binary() else {
            eprintln!("etrain-svcd not built; skipping process-level supervisor test");
            return;
        };
        let dir = scratch("supervisor");
        let report = run_supervisor(&bin, &dir, 5, 5);
        assert!(
            report.is_clean(),
            "supervisor found divergence: {:#?}",
            report
        );
        assert!(
            report.trials.len() >= 5 + 3,
            "{} trials",
            report.trials.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let report = SupervisorReport {
            seed: 3,
            trials: vec![SupervisorTrial {
                kind: "sigkill@7".into(),
                acked_steps: 7,
                recovered_fingerprint: 0xabc,
                reference_fingerprint: 0xabc,
                identical: true,
                recovery_ms: 12.5,
                recovered_line: "RECOVERED records=7".into(),
            }],
            errors: vec![],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: SupervisorReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.is_clean());
        assert_eq!(back.identical_count(), 1);
        assert!((back.max_recovery_ms() - 12.5).abs() < 1e-9);
    }
}
