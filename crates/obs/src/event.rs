//! The structured event taxonomy and the journal that accumulates it.

use serde::{Deserialize, Serialize};

/// One observable decision or state change in the eTrain system.
///
/// Every variant corresponds to a decision point named in the paper's
/// evaluation: heartbeats firing (§III-A), tails being re-used for cargo
/// (§III-B), the Lyapunov piggyback decision with its Θ comparison
/// (Algorithm 1), RRC state transitions (§II), overload shedding and
/// health-ladder transitions (post-paper hardening), and retry attempts
/// under fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// An IM heartbeat departed (the "train" the cargo rides).
    HeartbeatFired {
        /// Heartbeat payload size in bytes.
        size_bytes: u64,
    },
    /// A transmission started while the radio was already out of IDLE,
    /// re-using a promotion or tail instead of paying a fresh one.
    TailReuse {
        /// RRC state the radio was in when the transmission started
        /// (`"dch"` or `"fach"`).
        from_state: String,
        /// Bytes of the transmission that re-used the tail.
        size_bytes: u64,
    },
    /// One invocation of the Lyapunov piggyback rule (Algorithm 1).
    PiggybackDecision {
        /// Aggregate delay cost `P(t)` of the waiting queues at decision
        /// time — the left-hand side of the Θ comparison.
        total_cost: f64,
        /// The cost bound Θ the scheduler compared against.
        theta: f64,
        /// Whether a heartbeat departed this slot (piggyback opportunity).
        heartbeat_departing: bool,
        /// Packets waiting across all queues before selection.
        queued: usize,
        /// Bytes waiting across all queues before selection.
        queued_bytes: u64,
        /// Burst budget applied: `Some(k)` caps the burst, `None` is
        /// unbounded, `Some(0)` marks a pure deferral (cost below Θ with
        /// no departing heartbeat, so no selection was opened).
        budget_k: Option<usize>,
        /// Packets actually released this slot.
        released: usize,
    },
    /// The radio moved between RRC states (derived from the audited
    /// timeline, so promotions and tail decays both appear).
    RrcTransition {
        /// State being left (`"idle"`, `"fach"`, or `"dch"`).
        from: String,
        /// State being entered.
        to: String,
    },
    /// Admission control shed a packet (it was dropped, not transmitted).
    Shed {
        /// Identifier of the shed packet.
        packet_id: u64,
        /// Cargo app the packet belonged to.
        app: usize,
    },
    /// Admission control force-flushed a packet (released immediately to
    /// make room — transmitted, not lost).
    ForcedFlush {
        /// Identifier of the flushed packet.
        packet_id: u64,
        /// Cargo app the packet belonged to.
        app: usize,
    },
    /// The degraded-mode health ladder changed state.
    HealthTransition {
        /// State being left (`"healthy"`, `"degraded"`, `"critical"`).
        from: String,
        /// State being entered.
        to: String,
        /// Human-readable trigger (e.g. `"consecutive-failures"`).
        cause: String,
    },
    /// A transmission attempt failed and was retried or abandoned.
    RetryAttempt {
        /// Identifier of the affected packet.
        packet_id: u64,
        /// Failed attempts so far for this packet.
        attempt: u32,
        /// `true` once the retry policy gave up on the packet.
        abandoned: bool,
    },
}

impl Event {
    /// Stable machine-readable name of the variant, used for grouping in
    /// the `explain` experiment and journal summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::HeartbeatFired { .. } => "heartbeat_fired",
            Event::TailReuse { .. } => "tail_reuse",
            Event::PiggybackDecision { .. } => "piggyback_decision",
            Event::RrcTransition { .. } => "rrc_transition",
            Event::Shed { .. } => "shed",
            Event::ForcedFlush { .. } => "forced_flush",
            Event::HealthTransition { .. } => "health_transition",
            Event::RetryAttempt { .. } => "retry_attempt",
        }
    }
}

/// An [`Event`] stamped with its run index, per-run sequence number, and
/// simulated time.
///
/// `run` is the job index inside a `RunGrid` (0 for standalone runs);
/// `seq` orders events that share a timestamp. Together `(run, time_s,
/// seq)` is a total order, which is what makes parallel journal merging
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Grid job index this event came from (0 outside a grid).
    pub run: usize,
    /// Per-run sequence number, dense from 0 after canonicalization.
    pub seq: u64,
    /// Simulated time of the event in seconds.
    pub time_s: f64,
    /// The event itself.
    pub event: Event,
}

/// A bounded-growth, append-only journal of [`EventRecord`]s for one run.
///
/// Events are pushed in engine order; [`Journal::canonicalize`] stable-
/// sorts by time and renumbers `seq` so late-appended derived events
/// (e.g. RRC transitions reconstructed from the timeline) interleave at
/// their chronological position. [`Journal::merge`] combines per-worker
/// journals from a parallel grid into one deterministic stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Journal {
    run: usize,
    next_seq: u64,
    records: Vec<EventRecord>,
}

impl Journal {
    /// An empty journal for run index 0.
    pub fn new() -> Self {
        Journal::default()
    }

    /// An empty journal tagged with a grid job index.
    pub fn for_run(run: usize) -> Self {
        Journal {
            run,
            ..Journal::default()
        }
    }

    /// Appends an event at simulated time `time_s`, assigning the next
    /// sequence number.
    pub fn push(&mut self, time_s: f64, event: Event) {
        self.records.push(EventRecord {
            run: self.run,
            seq: self.next_seq,
            time_s,
            event,
        });
        self.next_seq += 1;
        crate::bump_events(1);
    }

    /// The records in their current order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records in the journal.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops every record after the first `len`, rewinding the journal to
    /// a durable prefix — a crash-consistency resume keeps only what had
    /// been flushed when its snapshot was taken. `seq` assignment
    /// continues densely from the new end.
    pub fn truncate(&mut self, len: usize) {
        self.records.truncate(len);
        self.next_seq = self.records.len() as u64;
    }

    /// Appends another journal's records after this one's, re-tagging them
    /// with this journal's run id and renumbering their `seq` to continue
    /// this journal's sequence (unlike [`Journal::merge`], which keeps
    /// parts as separate runs). The kill/resume harness uses this to
    /// splice a resumed run's post-snapshot suffix onto the durable
    /// prefix before canonicalizing.
    pub fn extend_from(&mut self, other: Journal) {
        for mut record in other.records {
            record.run = self.run;
            record.seq = self.next_seq;
            self.next_seq += 1;
            self.records.push(record);
        }
    }

    /// Stable-sorts records by simulated time and renumbers `seq` densely
    /// from 0, so equal-time events keep their causal push order and the
    /// sequence number becomes the chronological index.
    pub fn canonicalize(&mut self) {
        self.records.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (i, record) in self.records.iter_mut().enumerate() {
            record.seq = i as u64;
        }
        self.next_seq = self.records.len() as u64;
    }

    /// Merges per-run journals (in grid job-index order) into one stream.
    ///
    /// Each part is re-tagged with its index as the run id and
    /// canonicalized, then the parts are concatenated. Because the input
    /// order is the job-index order — not the completion order — a serial
    /// and a parallel execution of the same grid yield byte-identical
    /// merged journals.
    pub fn merge(parts: Vec<Journal>) -> Journal {
        let mut merged = Journal::new();
        for (run, mut part) in parts.into_iter().enumerate() {
            part.canonicalize();
            for mut record in part.records {
                record.run = run;
                merged.records.push(record);
            }
        }
        merged.next_seq = 0;
        crate::bump_merges();
        merged
    }

    /// Replays every record through a [`crate::Recorder`].
    pub fn replay(&self, recorder: &mut dyn crate::Recorder) {
        for record in &self.records {
            recorder.record(record);
        }
        recorder.flush();
    }

    /// Counts records per [`Event::kind`], in first-appearance order.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for record in &self.records {
            let kind = record.event.kind();
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
        }
        counts
    }

    /// Renders the journal as JSON Lines: one [`EventRecord`] object per
    /// line, in record order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            let line = serde_json::to_string(record).expect("event records serialize infallibly");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb() -> Event {
        Event::HeartbeatFired { size_bytes: 120 }
    }

    #[test]
    fn push_assigns_dense_seq() {
        let mut journal = Journal::new();
        journal.push(1.0, hb());
        journal.push(2.0, hb());
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.records()[0].seq, 0);
        assert_eq!(journal.records()[1].seq, 1);
        assert_eq!(journal.records()[1].run, 0);
    }

    #[test]
    fn canonicalize_interleaves_late_events_by_time() {
        let mut journal = Journal::new();
        journal.push(5.0, hb());
        journal.push(
            1.0,
            Event::RrcTransition {
                from: "idle".into(),
                to: "dch".into(),
            },
        );
        journal.canonicalize();
        assert_eq!(journal.records()[0].time_s, 1.0);
        assert_eq!(journal.records()[0].seq, 0);
        assert_eq!(journal.records()[1].time_s, 5.0);
        assert_eq!(journal.records()[1].seq, 1);
    }

    #[test]
    fn merge_orders_by_job_index_and_retags_runs() {
        let mut a = Journal::new();
        a.push(3.0, hb());
        let mut b = Journal::new();
        b.push(1.0, hb());
        let merged = Journal::merge(vec![a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.records()[0].run, 0);
        assert_eq!(merged.records()[0].time_s, 3.0);
        assert_eq!(merged.records()[1].run, 1);
        assert_eq!(merged.records()[1].time_s, 1.0);
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let mut journal = Journal::new();
        journal.push(
            10.0,
            Event::PiggybackDecision {
                total_cost: 4.5,
                theta: 4.0,
                heartbeat_departing: true,
                queued: 3,
                queued_bytes: 900,
                budget_k: Some(2),
                released: 2,
            },
        );
        let jsonl = journal.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let back: EventRecord = serde_json::from_str(jsonl.trim()).unwrap();
        assert_eq!(&back, &journal.records()[0]);
    }

    #[test]
    fn counts_by_kind_groups_in_first_appearance_order() {
        let mut journal = Journal::new();
        journal.push(1.0, hb());
        journal.push(
            2.0,
            Event::RetryAttempt {
                packet_id: 7,
                attempt: 1,
                abandoned: false,
            },
        );
        journal.push(3.0, hb());
        assert_eq!(
            journal.counts_by_kind(),
            vec![("heartbeat_fired", 2), ("retry_attempt", 1)]
        );
    }
}
