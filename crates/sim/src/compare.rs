//! Side-by-side scheduler comparison on one scenario — the programmatic
//! form of the paper's Sec. VI-C "comparative analysis".

use crate::metrics::RunReport;
use crate::report::Table;
use crate::runner::RunGrid;
use crate::scenario::{Scenario, SchedulerKind};

/// The outcome of comparing several schedulers on the same inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One report per contender, in input order.
    pub reports: Vec<RunReport>,
}

impl Comparison {
    /// Runs every contender on `base` (same workload, heartbeats, channel
    /// and horizon — only the scheduler differs). Contenders run
    /// concurrently on the deterministic [`RunGrid`], sharing one trace
    /// synthesis; reports stay in input order.
    pub fn run(base: &Scenario, contenders: &[SchedulerKind]) -> Comparison {
        Comparison {
            reports: RunGrid::over_schedulers(base, contenders).run(),
        }
    }

    /// The report with the lowest radio energy.
    pub fn most_efficient(&self) -> Option<&RunReport> {
        self.reports
            .iter()
            .min_by(|a, b| a.extra_energy_j.total_cmp(&b.extra_energy_j))
    }

    /// The report with the lowest normalized delay.
    pub fn lowest_delay(&self) -> Option<&RunReport> {
        self.reports
            .iter()
            .min_by(|a, b| a.normalized_delay_s.total_cmp(&b.normalized_delay_s))
    }

    /// The subset of reports on the (energy, violation-ratio) Pareto front
    /// — the paper's combined criterion: a report is dominated if another
    /// is at least as good on both axes and strictly better on one.
    pub fn pareto_front(&self) -> Vec<&RunReport> {
        self.reports
            .iter()
            .filter(|candidate| {
                !self.reports.iter().any(|other| {
                    let as_good = other.extra_energy_j <= candidate.extra_energy_j
                        && other.deadline_violation_ratio <= candidate.deadline_violation_ratio;
                    let strictly_better = other.extra_energy_j < candidate.extra_energy_j
                        || other.deadline_violation_ratio < candidate.deadline_violation_ratio;
                    as_good && strictly_better
                })
            })
            .collect()
    }

    /// Renders the comparison as a table (one row per contender).
    pub fn to_table(&self, title: impl Into<String>) -> Table {
        let mut table = Table::new(
            title,
            &[
                "algorithm",
                "energy_j",
                "tail_j",
                "delay_s",
                "violation_pct",
                "promotions",
            ],
        );
        for r in &self.reports {
            table.push_row_strings(vec![
                r.scheduler.clone(),
                format!("{:.1}", r.extra_energy_j),
                format!("{:.1}", r.tail_energy_j),
                format!("{:.1}", r.normalized_delay_s),
                format!("{:.1}", r.deadline_violation_ratio * 100.0),
                r.promotions.to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contenders() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Baseline,
            SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            },
            SchedulerKind::ETime { v_bytes: 20_000.0 },
        ]
    }

    fn comparison() -> Comparison {
        Comparison::run(
            &Scenario::paper_default().duration_secs(1200).seed(4),
            &contenders(),
        )
    }

    #[test]
    fn one_report_per_contender_in_order() {
        let c = comparison();
        let names: Vec<&str> = c.reports.iter().map(|r| r.scheduler.as_str()).collect();
        assert_eq!(names, vec!["Baseline", "eTrain", "eTime"]);
    }

    #[test]
    fn extremes_are_found() {
        let c = comparison();
        assert_eq!(c.lowest_delay().unwrap().scheduler, "Baseline");
        assert_ne!(c.most_efficient().unwrap().scheduler, "Baseline");
    }

    #[test]
    fn pareto_front_contains_the_extremes_and_drops_dominated() {
        let c = comparison();
        let front = c.pareto_front();
        assert!(!front.is_empty());
        // The most efficient report can never be dominated.
        let best = c.most_efficient().unwrap();
        assert!(front.iter().any(|r| r.scheduler == best.scheduler));
        // Every front member must not be dominated by any report.
        for member in &front {
            for other in &c.reports {
                let dominates = other.extra_energy_j < member.extra_energy_j
                    && other.deadline_violation_ratio <= member.deadline_violation_ratio;
                assert!(
                    !dominates,
                    "{} dominated by {}",
                    member.scheduler, other.scheduler
                );
            }
        }
    }

    #[test]
    fn table_has_all_rows() {
        let c = comparison();
        let table = c.to_table("cmp");
        assert_eq!(table.len(), 3);
        assert!(table.to_csv().contains("eTrain"));
    }

    #[test]
    fn empty_contender_list_is_fine() {
        let c = Comparison::run(&Scenario::paper_default().duration_secs(600), &[]);
        assert!(c.reports.is_empty());
        assert!(c.most_efficient().is_none());
        assert!(c.pareto_front().is_empty());
    }
}
