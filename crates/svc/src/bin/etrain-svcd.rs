//! `etrain-svcd` — the durable eTrain daemon.
//!
//! Recovers state from the `ETRAIN_WAL` journal directory (creating it
//! on first boot), prints a `RECOVERED` summary line, binds the
//! `ETRAIN_SVC_ADDR` line-protocol listener (127.0.0.1 on an ephemeral
//! port by default), prints `READY <addr>`, and serves until killed.
//!
//! Exit codes follow the repo's binary conventions: `2` for invalid
//! environment knobs (fail fast, never guess), `42` when the armed
//! `ETRAIN_WAL_FAULT` hook fires mid-append (the chaos supervisor's
//! stand-in for a SIGKILL during `write`), `1` for recovery failures.

use std::io::Write;

use etrain_core::CoreConfig;
use etrain_svc::{
    try_addr_from_env, try_wal_dir_from_env, DurableService, Server, ServerConfig, SvcHealthConfig,
    WalConfig, WalFault,
};

fn main() {
    let wal_dir = match try_wal_dir_from_env() {
        Ok(Some(dir)) => dir,
        Ok(None) => std::path::PathBuf::from("etrain-wal"),
        Err(reason) => {
            eprintln!("etrain-svcd: {reason}");
            std::process::exit(2);
        }
    };
    let addr = match try_addr_from_env() {
        Ok(Some(addr)) => addr,
        Ok(None) => match "127.0.0.1:0".parse() {
            Ok(addr) => addr,
            Err(_) => unreachable!("literal address parses"),
        },
        Err(reason) => {
            eprintln!("etrain-svcd: {reason}");
            std::process::exit(2);
        }
    };
    let fault = match WalFault::try_from_env() {
        Ok(fault) => fault,
        Err(reason) => {
            eprintln!("etrain-svcd: {reason}");
            std::process::exit(2);
        }
    };

    let mut wal_cfg = WalConfig::new(wal_dir);
    wal_cfg.fault = fault;

    let (service, recovery) =
        match DurableService::open(wal_cfg, CoreConfig::default(), SvcHealthConfig::default()) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("etrain-svcd: recovery failed: {e}");
                std::process::exit(1);
            }
        };
    println!(
        "RECOVERED records={} replayed={} replay_errors={} truncated_bytes={} \
         set_aside={} checkpoint_verified={} fingerprint={:016x}",
        recovery.wal.records,
        recovery.replayed,
        recovery.replay_errors,
        recovery.wal.truncated_bytes,
        recovery.wal.segments_set_aside,
        recovery
            .checkpoint_verified
            .map_or_else(|| "none".to_string(), |n| n.to_string()),
        recovery.fingerprint,
    );

    let server = match Server::bind(
        ServerConfig {
            addr,
            ..ServerConfig::default()
        },
        service,
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("etrain-svcd: bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(bound) => println!("READY {bound}"),
        Err(e) => {
            eprintln!("etrain-svcd: local_addr failed: {e}");
            std::process::exit(1);
        }
    }
    let _ = std::io::stdout().flush();

    if let Err(e) = server.run() {
        eprintln!("etrain-svcd: accept loop failed: {e}");
        std::process::exit(1);
    }
}
