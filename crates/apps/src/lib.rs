//! # etrain-apps — the paper's cargo applications
//!
//! The paper evaluates eTrain with three cargo apps it built (Sec. V-5):
//! **Luna Weibo** (a full-featured third-party Weibo client with 100+
//! users), **eTrain Mail** (an e-mail client) and **eTrain Cloud** (a
//! cloud-storage app). This crate models them:
//!
//! - [`CargoAppModel`] — each app's registration profile (delay-cost
//!   function) plus its request-size model, used both for synthetic
//!   workloads and for mapping user-trace records to transmit requests;
//! - [`replay`] — the paper's controlled-experiment methodology
//!   ("We implemented workload generating functionality that replays the
//!   user traces", Sec. VI-D): drive a recorded app-use trace through the
//!   live [`ETrainCore`](etrain_core::ETrainCore) system or convert it to
//!   a packet trace for the simulator.
//!
//! # Example
//!
//! ```
//! use etrain_apps::{replay, CargoAppModel};
//! use etrain_core::CoreConfig;
//! use etrain_trace::heartbeats::TrainAppSpec;
//! use etrain_trace::user::{generate_app_use, Activeness};
//!
//! let trace = generate_app_use(1, Activeness::Active, 42).normalized_to(600.0);
//! let outcome = replay::replay_through_core(
//!     &trace,
//!     &CargoAppModel::weibo(),
//!     &TrainAppSpec::paper_trio(),
//!     CoreConfig::default(),
//! );
//! // Every upload is eventually decided (trains keep coming).
//! assert_eq!(outcome.undelivered, 0);
//! assert!(outcome.piggyback_ratio > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunker;
pub mod freshness;
mod model;
pub mod replay;

pub use chunker::FileSync;
pub use model::{CargoAppModel, CargoKind};
