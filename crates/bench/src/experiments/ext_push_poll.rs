//! Extension: push-based fetching vs polling — the energy value of the
//! heartbeat infrastructure itself.
//!
//! The paper takes heartbeats as given ("heartbeats are indispensable")
//! and recycles their tails. This extension quantifies the other side of
//! that bargain: given content updating on the server (Poisson, one
//! update per five minutes), compare keeping fresh by *polling* every `T`
//! seconds against *push-fetching* over the heartbeat connection (the
//! notification arrives with a heartbeat, the fetch rides the same radio
//! session). Push is simultaneously fresher than slow polling and cheaper
//! than fast polling — the quantified justification for the always-on
//! connection eTrain builds upon.

use crate::ExperimentResult;
use etrain_apps::freshness::{generate_updates, plan_polling, plan_push_fetch};
use etrain_sched::{AppProfile, CostProfile};
use etrain_sim::{BandwidthSource, Scenario, SchedulerKind, Table};
use etrain_trace::heartbeats::{synthesize, TrainAppSpec};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;

use super::{j, s};

const FETCH_BYTES: u64 = 20_000;

/// Runs the push-vs-poll comparison.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { 3600.0 } else { 7200.0 };
    let updates = generate_updates(300.0, horizon, 17);
    let heartbeats = synthesize(&TrainAppSpec::paper_trio(), horizon, 17);

    let energy_of = |packets: Vec<Packet>| -> f64 {
        Scenario::paper_default()
            .duration_secs(horizon as u64)
            .profiles(vec![AppProfile::new("News", CostProfile::weibo(600.0))])
            .packets(packets)
            .heartbeats(heartbeats.clone())
            .bandwidth(BandwidthSource::Constant(450_000.0))
            .scheduler(SchedulerKind::Baseline) // fetches go out on arrival
            .seed(17)
            .run()
            .extra_energy_j
    };

    // Heartbeat-only floor: the connection's fixed cost, paid by every row.
    let floor = energy_of(Vec::new());

    let mut table = Table::new(
        format!(
            "Extension — push vs poll ({} updates in {:.0} min, 20 kB fetches)",
            updates.len(),
            horizon / 60.0
        ),
        &[
            "strategy",
            "fetches",
            "empty_fetches",
            "fetch_energy_j",
            "staleness_s",
        ],
    );
    // Non-harmonic poll periods with a 13 s phase, so no poll timer
    // accidentally locks onto a heartbeat grid (240/270/300 s).
    for period in [75.0, 150.0, 330.0, 690.0] {
        let plan = plan_polling(&updates, period, 13.0, FETCH_BYTES, horizon, CargoAppId(0));
        table.push_row_strings(vec![
            format!("poll every {period:.0} s"),
            plan.packets.len().to_string(),
            plan.empty_fetches.to_string(),
            j(energy_of(plan.packets) - floor),
            s(plan.mean_staleness_s),
        ]);
    }
    let push = plan_push_fetch(&updates, &heartbeats, FETCH_BYTES, horizon, CargoAppId(0));
    table.push_row_strings(vec![
        "push over heartbeats".to_owned(),
        push.packets.len().to_string(),
        push.empty_fetches.to_string(),
        j(energy_of(push.packets) - floor),
        s(push.mean_staleness_s),
    ]);
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "push_fetch_energy_j",
        0,
        -1,
        "fetch_energy_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        run(true).tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect()
    }

    #[test]
    fn no_poll_rate_pareto_dominates_push() {
        // Push may lose on one axis (fast polls are fresher, slow polls
        // can be cheap), but no poll rate beats it on energy *and*
        // staleness together.
        let rows = rows();
        let push = rows.last().unwrap();
        let (push_energy, push_staleness): (f64, f64) =
            (push[3].parse().unwrap(), push[4].parse().unwrap());
        for row in &rows[..rows.len() - 1] {
            let energy: f64 = row[3].parse().unwrap();
            let staleness: f64 = row[4].parse().unwrap();
            let dominates = energy <= push_energy && staleness <= push_staleness;
            assert!(!dominates, "{} dominates push", row[0]);
        }
    }

    #[test]
    fn push_beats_the_comparably_fresh_poll_on_energy() {
        // The poll rate with staleness closest to push must cost more.
        let rows = rows();
        let push = rows.last().unwrap();
        let (push_energy, push_staleness): (f64, f64) =
            (push[3].parse().unwrap(), push[4].parse().unwrap());
        let closest = rows[..rows.len() - 1]
            .iter()
            .min_by(|a, b| {
                let da = (a[4].parse::<f64>().unwrap() - push_staleness).abs();
                let db = (b[4].parse::<f64>().unwrap() - push_staleness).abs();
                da.total_cmp(&db)
            })
            .unwrap();
        let poll_energy: f64 = closest[3].parse().unwrap();
        assert!(
            push_energy < poll_energy,
            "push {push_energy} J vs comparably fresh {} ({poll_energy} J)",
            closest[0]
        );
    }

    #[test]
    fn push_never_fetches_empty() {
        let rows = rows();
        assert_eq!(rows.last().unwrap()[2], "0");
    }
}
