//! Parameter sweeps behind the paper's figures: Θ sweeps (Fig. 7(a),
//! Fig. 10(b)), E-D panels (Fig. 7(b), Fig. 8(a)), λ sweeps at matched
//! delay (Fig. 8(b)) and deadline sweeps (Fig. 10(c)).
//!
//! Every sweep is a thin wrapper over the deterministic parallel
//! [`RunGrid`]: points run concurrently (sharing one trace synthesis per
//! workload + seed) yet the returned vectors are bit-for-bit identical to
//! running each point serially in order.

use crate::metrics::RunReport;
use crate::runner::{RunGrid, RunSpec};
use crate::scenario::{Scenario, SchedulerKind};

/// One point on an energy–delay (E-D) panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdPoint {
    /// The knob value that produced the point (Θ, V, Ω, ...).
    pub knob: f64,
    /// Radio energy above idle, in joules.
    pub energy_j: f64,
    /// Normalized delay, in seconds.
    pub delay_s: f64,
}

impl From<(f64, &RunReport)> for EdPoint {
    fn from((knob, report): (f64, &RunReport)) -> Self {
        EdPoint {
            knob,
            energy_j: report.extra_energy_j,
            delay_s: report.normalized_delay_s,
        }
    }
}

/// One grid job per knob value, scenarios derived from `base` by `bind`.
fn knob_grid(
    base: &Scenario,
    knob_values: &[f64],
    bind: impl Fn(f64, Scenario) -> Scenario,
) -> RunGrid {
    RunGrid::from_specs(
        knob_values
            .iter()
            .map(|&knob| RunSpec::with_knob(format!("knob={knob}"), knob, bind(knob, base.clone())))
            .collect(),
    )
}

/// Runs `base` once per Θ value with the eTrain scheduler (Fig. 7(a)).
pub fn theta_sweep(base: &Scenario, thetas: &[f64], k: Option<usize>) -> Vec<(f64, RunReport)> {
    let grid = knob_grid(base, thetas, |theta, s| {
        s.scheduler(SchedulerKind::ETrain { theta, k })
    });
    thetas.iter().copied().zip(grid.run()).collect()
}

/// Runs `base` once per shared deadline value (Fig. 10(c)).
pub fn deadline_sweep(base: &Scenario, deadlines_s: &[f64]) -> Vec<(f64, RunReport)> {
    let grid = knob_grid(base, deadlines_s, |d, s| s.shared_deadline(d));
    deadlines_s.iter().copied().zip(grid.run()).collect()
}

/// Traces one algorithm's E-D curve by sweeping its knob: each knob value
/// is mapped to a [`SchedulerKind`] by `make` and run on `base`.
pub fn ed_curve(
    base: &Scenario,
    knob_values: &[f64],
    make: impl Fn(f64) -> SchedulerKind,
) -> Vec<EdPoint> {
    let grid = knob_grid(base, knob_values, |knob, s| s.scheduler(make(knob)));
    knob_values
        .iter()
        .zip(grid.run())
        .map(|(&knob, report)| EdPoint::from((knob, &report)))
        .collect()
}

/// Picks the knob value whose run's normalized delay lands closest to
/// `target_delay_s`, returning that run (the paper's Fig. 8(b) methodology:
/// "with the same normalized delay as 55 seconds ... by picking the right
/// value of Ω, V and Θ").
///
/// Returns `None` if `knob_values` is empty.
pub fn match_delay(
    base: &Scenario,
    knob_values: &[f64],
    make: impl Fn(f64) -> SchedulerKind,
    target_delay_s: f64,
) -> Option<(f64, RunReport)> {
    let grid = knob_grid(base, knob_values, |knob, s| s.scheduler(make(knob)));
    knob_values.iter().copied().zip(grid.run()).min_by(|a, b| {
        let da = (a.1.normalized_delay_s - target_delay_s).abs();
        let db = (b.1.normalized_delay_s - target_delay_s).abs();
        da.total_cmp(&db)
    })
}

/// Log-spaced values in `[lo, hi]` (inclusive), used for knob scans.
///
/// # Panics
///
/// Panics if `lo` or `hi` is not strictly positive, `lo > hi`, or
/// `n < 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "log spacing needs positive bounds");
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    assert!(n >= 2, "need at least two points");
    let (ln_lo, ln_hi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (ln_lo + (ln_hi - ln_lo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Linearly spaced values in `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `n < 2` or `lo > hi`.
pub fn lin_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two points");
    assert!(lo <= hi, "lower bound must not exceed upper bound");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> Scenario {
        Scenario::paper_default().duration_secs(900).seed(5)
    }

    #[test]
    fn theta_sweep_produces_one_report_per_theta() {
        let sweep = theta_sweep(&quick_base(), &[0.0, 1.0], None);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].0, 0.0);
        assert_eq!(sweep[1].0, 1.0);
    }

    #[test]
    fn larger_theta_never_reduces_delay() {
        let sweep = theta_sweep(&quick_base(), &[0.0, 2.0], None);
        assert!(
            sweep[1].1.normalized_delay_s >= sweep[0].1.normalized_delay_s - 1.0,
            "Θ=2 delay {} vs Θ=0 delay {}",
            sweep[1].1.normalized_delay_s,
            sweep[0].1.normalized_delay_s
        );
    }

    #[test]
    fn ed_curve_tracks_knob() {
        let points = ed_curve(&quick_base(), &[10_000.0, 500_000.0], |v| {
            SchedulerKind::ETime { v_bytes: v }
        });
        assert_eq!(points.len(), 2);
        assert!(points[0].knob < points[1].knob);
    }

    #[test]
    fn match_delay_picks_closest() {
        let result = match_delay(
            &quick_base(),
            &[0.0, 0.5, 1.5],
            |theta| SchedulerKind::ETrain { theta, k: None },
            30.0,
        );
        let (_, report) = result.expect("non-empty knob list");
        // The chosen report must be at least as close as every other knob.
        for theta in [0.0, 0.5, 1.5] {
            let other = quick_base()
                .scheduler(SchedulerKind::ETrain { theta, k: None })
                .run();
            assert!(
                (report.normalized_delay_s - 30.0).abs()
                    <= (other.normalized_delay_s - 30.0).abs() + 1e-9
            );
        }
    }

    #[test]
    fn match_delay_empty_is_none() {
        let result = match_delay(
            &quick_base(),
            &[],
            |theta| SchedulerKind::ETrain { theta, k: None },
            30.0,
        );
        assert!(result.is_none());
    }

    #[test]
    fn spacing_helpers() {
        let lin = lin_space(0.0, 3.0, 4);
        assert_eq!(lin, vec![0.0, 1.0, 2.0, 3.0]);
        let log = log_space(1.0, 100.0, 3);
        assert!((log[0] - 1.0).abs() < 1e-9);
        assert!((log[1] - 10.0).abs() < 1e-9);
        assert!((log[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive bounds")]
    fn log_space_rejects_zero() {
        let _ = log_space(0.0, 1.0, 3);
    }
}
