use crate::params::RadioParams;
use crate::timeline::Transmission;

/// Closed-form tail-energy wastage `E_tail(Δ)` from the paper (Sec. III-A).
///
/// `gap_s` is the interval Δ between the end of one transmission and the
/// start of the next. The returned energy (joules, above idle) covers the
/// four cases of the paper's piecewise definition:
///
/// 1. `Δ ≤ 0` — the next transmission starts before this one ends: no tail;
/// 2. `0 < Δ ≤ δ_D` — re-used while still in DCH: `p̃_D·Δ`;
/// 3. `δ_D < Δ ≤ T_tail` — re-used in FACH: `p̃_D·δ_D + p̃_F·(Δ − δ_D)`;
/// 4. `Δ > T_tail` — full tail wasted: `p̃_D·δ_D + p̃_F·δ_F`.
///
/// # Examples
///
/// ```
/// use etrain_radio::{tail_energy_j, RadioParams};
///
/// let p = RadioParams::galaxy_s4_3g();
/// assert_eq!(tail_energy_j(&p, -1.0), 0.0);
/// assert!(tail_energy_j(&p, 5.0) < tail_energy_j(&p, 12.0));
/// assert_eq!(tail_energy_j(&p, 100.0), p.full_tail_energy_j());
/// ```
pub fn tail_energy_j(params: &RadioParams, gap_s: f64) -> f64 {
    let pd = params.dch_extra_mw() / 1000.0;
    let pf = params.fach_extra_mw() / 1000.0;
    let dd = params.delta_dch_s();
    let df = params.delta_fach_s();
    if gap_s <= 0.0 {
        0.0
    } else if gap_s <= dd {
        pd * gap_s
    } else if gap_s <= dd + df {
        pd * dd + pf * (gap_s - dd)
    } else {
        pd * dd + pf * df
    }
}

/// Analytic extra energy (above idle, joules) of a whole transmission
/// schedule: active DCH energy during the busy periods plus the tail energy
/// of every inter-transmission gap.
///
/// Overlapping or back-to-back transmissions are merged into busy periods
/// first, mirroring what the radio actually does. The last busy period's
/// tail is charged in full only if it fits before `horizon_s`; otherwise it
/// is truncated at the horizon (matching a measurement that stops sampling).
///
/// This is the closed-form counterpart of
/// [`Timeline::extra_energy_j`](crate::Timeline::extra_energy_j); property
/// tests assert the two agree.
///
/// # Examples
///
/// ```
/// use etrain_radio::{analytic_extra_energy_j, RadioParams, Transmission};
///
/// let p = RadioParams::galaxy_s4_3g();
/// let lone = analytic_extra_energy_j(&p, &[Transmission::new(0.0, 1.0)], 100.0);
/// let expected = 0.7 * 1.0 + p.full_tail_energy_j();
/// assert!((lone - expected).abs() < 1e-9);
/// ```
pub fn analytic_extra_energy_j(
    params: &RadioParams,
    transmissions: &[Transmission],
    horizon_s: f64,
) -> f64 {
    let busy = merge_busy_periods(transmissions, horizon_s);
    let pd = params.dch_extra_mw() / 1000.0;
    let mut energy = 0.0;
    for (idx, &(start, end)) in busy.iter().enumerate() {
        energy += pd * (end - start);
        let gap_end = busy
            .get(idx + 1)
            .map_or(horizon_s, |&(next_start, _)| next_start);
        energy += tail_energy_j(params, gap_end - end);
    }
    energy
}

/// Merges transmissions into disjoint, sorted busy periods clipped to
/// `[0, horizon_s]`.
///
/// Exported so audit code (the simulation oracle) can recompute the busy
/// structure independently of [`crate::Timeline`]'s segment construction.
pub fn merge_busy_periods(transmissions: &[Transmission], horizon_s: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    merge_busy_periods_into(transmissions, horizon_s, &mut out);
    out
}

/// [`merge_busy_periods`] into a caller-owned buffer, so repeated
/// rebuilds (timeline pooling, the oracle's per-run audits) reuse the
/// allocation. The result is bit-for-bit identical to
/// [`merge_busy_periods`]: same clip/filter, same `total_cmp` sort, and
/// the in-place compaction applies the same `start <= last.1` /
/// `last.1.max(end)` merge rule as the two-buffer construction.
pub fn merge_busy_periods_into(
    transmissions: &[Transmission],
    horizon_s: f64,
    out: &mut Vec<(f64, f64)>,
) {
    out.clear();
    out.extend(
        transmissions
            .iter()
            .map(|t| (t.start_s, (t.start_s + t.duration_s).min(horizon_s)))
            .filter(|&(s, e)| e > s && s < horizon_s),
    );
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    // In-place merge: `write` trails the scan and compacts overlapping
    // intervals; `write - 1` is always the last merged interval, exactly
    // like `merged.last_mut()` in the reference formulation.
    let mut write = 0usize;
    for read in 0..out.len() {
        let (start, end) = out[read];
        if write > 0 && start <= out[write - 1].1 {
            let last = &mut out[write - 1];
            last.1 = last.1.max(end);
        } else {
            out[write] = (start, end);
            write += 1;
        }
    }
    out.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RadioParams {
        RadioParams::galaxy_s4_3g()
    }

    #[test]
    fn tail_energy_zero_for_nonpositive_gap() {
        assert_eq!(tail_energy_j(&params(), 0.0), 0.0);
        assert_eq!(tail_energy_j(&params(), -5.0), 0.0);
    }

    #[test]
    fn tail_energy_within_dch_phase() {
        // 4 s into the tail, still in DCH: 0.7 W * 4 s = 2.8 J.
        assert!((tail_energy_j(&params(), 4.0) - 2.8).abs() < 1e-12);
    }

    #[test]
    fn tail_energy_within_fach_phase() {
        // 12 s: full DCH (7 J) + 2 s FACH (0.9 J).
        assert!((tail_energy_j(&params(), 12.0) - 7.9).abs() < 1e-12);
    }

    #[test]
    fn tail_energy_saturates_at_full_tail() {
        let p = params();
        assert_eq!(tail_energy_j(&p, 17.5), p.full_tail_energy_j());
        assert_eq!(tail_energy_j(&p, 1e6), p.full_tail_energy_j());
    }

    #[test]
    fn tail_energy_is_continuous_at_breakpoints() {
        let p = params();
        let eps = 1e-9;
        for bp in [0.0, p.delta_dch_s(), p.tail_time_s()] {
            let below = tail_energy_j(&p, bp - eps);
            let above = tail_energy_j(&p, bp + eps);
            assert!((below - above).abs() < 1e-6, "discontinuity at {bp}");
        }
    }

    #[test]
    fn merge_handles_overlap_and_order() {
        let txs = [
            Transmission::new(10.0, 5.0),
            Transmission::new(0.0, 2.0),
            Transmission::new(12.0, 1.0), // inside the 10..15 busy period
            Transmission::new(15.0, 1.0), // back-to-back extension
        ];
        let merged = merge_busy_periods(&txs, 100.0);
        assert_eq!(merged, vec![(0.0, 2.0), (10.0, 16.0)]);
    }

    #[test]
    fn merge_clips_to_horizon() {
        let txs = [Transmission::new(90.0, 20.0), Transmission::new(200.0, 1.0)];
        let merged = merge_busy_periods(&txs, 100.0);
        assert_eq!(merged, vec![(90.0, 100.0)]);
    }

    #[test]
    fn analytic_energy_two_close_transmissions_share_tail() {
        let p = params();
        // Gap of 5 s: second transmission reuses the DCH tail.
        let e = analytic_extra_energy_j(
            &p,
            &[Transmission::new(0.0, 1.0), Transmission::new(6.0, 1.0)],
            1000.0,
        );
        let expected = 0.7 * 2.0 + tail_energy_j(&p, 5.0) + p.full_tail_energy_j();
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn analytic_energy_empty_schedule_is_zero() {
        assert_eq!(analytic_extra_energy_j(&params(), &[], 1000.0), 0.0);
    }

    #[test]
    fn analytic_energy_truncates_final_tail_at_horizon() {
        let p = params();
        // Transmission ends at 1.0, horizon at 6.0: only 5 s of DCH tail fit.
        let e = analytic_extra_energy_j(&p, &[Transmission::new(0.0, 1.0)], 6.0);
        let expected = 0.7 * 1.0 + tail_energy_j(&p, 5.0);
        assert!((e - expected).abs() < 1e-9);
    }
}
