//! Fig. 4: instantaneous power level at different RRC states for one
//! heartbeat transmission over the 3G interface.
//!
//! Paper result: IDLE before the transmission; promotion to DCH on start;
//! DCH lingering for δ_D = 10 s after the end; FACH for δ_F = 7.5 s; then
//! back to IDLE. The tail is `T_tail = 17.5 s`.

use crate::ExperimentResult;
use etrain_radio::{RadioParams, Timeline, Transmission};
use etrain_sim::Table;

use super::s;

/// Runs the Fig. 4 reproduction.
pub fn run(_quick: bool) -> ExperimentResult {
    let params = RadioParams::galaxy_s4_3g();
    // One WeChat-sized heartbeat at t = 5 s on a 450 kbps uplink.
    let tx = Transmission::new(5.0, 74.0 * 8.0 / 450_000.0);
    let timeline = Timeline::from_transmissions(&params, &[tx], 30.0);

    let mut states = Table::new(
        "Fig. 4 — RRC state walk of one heartbeat",
        &["from_s", "to_s", "state", "power_mw"],
    );
    for seg in timeline.segments() {
        states.push_row_strings(vec![
            s(seg.start_s),
            s(seg.end_s),
            seg.state.to_string(),
            format!("{:.0}", seg.state.power_mw(&params)),
        ]);
    }

    let mut trace = Table::new(
        "Fig. 4 — sampled power (0.5 s, mW)",
        &["time_s", "power_mw"],
    );
    for (t, p) in timeline.sample(0.5).iter() {
        trace.push_row_strings(vec![s(t), format!("{p:.0}")]);
    }

    let mut constants = Table::new("Fig. 4 — model constants", &["parameter", "value"]);
    constants.push_row(&["p_DCH − p_idle", "700 mW"]);
    constants.push_row(&["p_FACH − p_idle", "450 mW"]);
    constants.push_row_strings(vec![
        "delta_DCH".into(),
        format!("{} s", params.delta_dch_s()),
    ]);
    constants.push_row_strings(vec![
        "delta_FACH".into(),
        format!("{} s", params.delta_fach_s()),
    ]);
    constants.push_row_strings(vec!["T_tail".into(), format!("{} s", params.tail_time_s())]);
    constants.push_row_strings(vec![
        "full tail energy".into(),
        format!(
            "{:.2} J (paper measures ~10.91 J)",
            params.full_tail_energy_j()
        ),
    ]);
    ExperimentResult::from_tables(vec![states, trace, constants]).headline_cell(
        "tail_end_s",
        0,
        2,
        "to_s",
        "s",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_walk_is_idle_dch_fach_idle() {
        let tables = run(false).tables;
        let states: Vec<String> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|row| row.split(',').nth(2).unwrap().to_owned())
            .collect();
        assert_eq!(states, vec!["IDLE", "DCH", "FACH", "IDLE"]);
    }

    #[test]
    fn tail_lengths_match_paper() {
        let tables = run(false).tables;
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let dch: f64 = rows[1][1].parse::<f64>().unwrap() - rows[1][0].parse::<f64>().unwrap();
        let fach: f64 = rows[2][1].parse::<f64>().unwrap() - rows[2][0].parse::<f64>().unwrap();
        assert!((dch - 10.0).abs() < 0.1, "DCH {dch}");
        assert!((fach - 7.5).abs() < 0.01, "FACH {fach}");
    }
}
