//! # etrain-svc — the eTrain core as a durable daemon
//!
//! Everything below `etrain-svc` is deterministic and sans-IO: the core
//! consumes explicitly timestamped commands and its state is a pure
//! function of the command stream. This crate is the thin durable shell
//! that turns that property into crash safety:
//!
//! * **Write-ahead journal** ([`Wal`]): every admission, flush decision,
//!   health transition, and heartbeat registration is serialized (via
//!   `etrain-obs`'s checksummed frame format) and fsynced *before* it is
//!   applied. Segments rotate at a size threshold; recovery scans them,
//!   truncates a torn/corrupt tail to the last valid frame, sets aside
//!   unreadable segments, and replays the survivors through
//!   [`ServiceState::apply`] to land on bit-for-bit the pre-crash state.
//! * **Checkpoints** ([`Checkpoint`]): `{records, fingerprint}` pairs —
//!   not snapshots. Recovery always replays the full journal and checks
//!   the FNV-1a state fingerprint at the checkpointed prefix, turning
//!   silent divergence into a hard [`SvcError::CheckpointMismatch`].
//! * **Idempotent submit**: clients attach a request id; duplicates are
//!   answered from the WAL-rebuilt dedup table without a second append,
//!   so a client that crashed between send and ack can safely resend.
//! * **Line-protocol server** ([`Server`]): a std-TCP front end with
//!   per-connection timeouts and a bounded connection count, feeding the
//!   existing `AdmissionConfig` shed policies.
//! * **Fault hook** ([`WalFault`], `ETRAIN_WAL_FAULT`): deterministic
//!   torn/short/corrupt append injection so the chaos supervisor can
//!   prove the recovery path detects and truncates damaged tails.
//!
//! The write-ahead discipline means a crash can leave the journal
//! *ahead* of what any client observed (an appended-but-unacked
//! command), never behind: replay applies it, and the idempotent submit
//! path resolves the client's ambiguity. That one-sided error bar is
//! what the chaos campaign's zero-loss oracle checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod script;
mod server;
mod service;
mod state;
mod wal;

pub use error::SvcError;
pub use server::{
    addr_from_env, execute_line, try_addr_from_env, Server, ServerConfig, FAULT_EXIT_CODE,
    SVC_ADDR_ENV,
};
pub use service::{DurableService, RecoverySummary};
pub use state::{AdmissionSummary, ServiceState, SvcCommand, SvcHealthConfig, SvcOutcome};
pub use wal::{
    fault_from_env, read_checkpoint, recover, write_checkpoint, Append, Checkpoint, FaultKind, Wal,
    WalConfig, WalFault, WalRecovery, WalRecoveryReport, WAL_ENV, WAL_FAULT_ENV,
};

/// Strict `ETRAIN_WAL` reader: `Ok(None)` when unset or empty, the
/// journal directory otherwise, `Err` when the value names an existing
/// non-directory.
///
/// # Errors
///
/// Returns a description of the unusable path.
pub fn try_wal_dir_from_env() -> Result<Option<std::path::PathBuf>, String> {
    match std::env::var(WAL_ENV) {
        Err(_) => Ok(None),
        Ok(raw) if raw.trim().is_empty() => Ok(None),
        Ok(raw) => {
            let path = std::path::PathBuf::from(raw.trim());
            if path.exists() && !path.is_dir() {
                Err(format!(
                    "invalid {WAL_ENV} {:?} (exists but is not a directory)",
                    path.display().to_string()
                ))
            } else {
                Ok(Some(path))
            }
        }
    }
}

/// Lenient `ETRAIN_WAL` reader for library contexts: unusable values
/// warn once on stderr and fall back to `None` (binaries use
/// [`try_wal_dir_from_env`] and fail fast).
pub fn wal_dir_from_env() -> Option<std::path::PathBuf> {
    try_wal_dir_from_env().unwrap_or_else(|reason| {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!("warning: ignoring {reason}; journaling stays off");
        });
        None
    })
}
