//! The deterministic (sans-IO) eTrain core: Heartbeat Monitor + Scheduler
//! wired together, driven by explicit timestamps.

use std::collections::HashMap;

use etrain_hb::{HeartbeatMonitor, TrainStatus};
use etrain_sched::{AppProfile, ETrainConfig, ETrainScheduler, Scheduler, SlotContext};
use etrain_trace::packets::Packet;
use etrain_trace::{CargoAppId, TrainAppId};

use crate::error::CoreError;
use crate::request::{RequestId, TransmitDecision, TransmitRequest};

/// Configuration of the deterministic core.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// The delay-cost bound Θ of Algorithm 1.
    pub theta: f64,
    /// Packets piggybacked per heartbeat; `None` = the paper's k = ∞.
    pub k: Option<usize>,
    /// Scheduler slot length in seconds.
    pub slot_s: f64,
    /// Grace period after a train registers during which it counts as
    /// alive even before its first observed heartbeat, in seconds.
    pub startup_grace_s: f64,
}

impl Default for CoreConfig {
    /// Θ = 0.2, k = ∞, 1 s slots (the paper's deployed settings) and a
    /// 10-minute startup grace.
    fn default() -> Self {
        CoreConfig {
            theta: 0.2,
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
        }
    }
}

/// Cumulative counters of a running eTrain core — the operational
/// statistics a deployment dashboard would chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CoreStats {
    /// Requests submitted since startup.
    pub submitted: usize,
    /// Decisions issued since startup.
    pub decided: usize,
    /// Decisions that piggybacked on a heartbeat.
    pub piggybacked: usize,
    /// Requests cancelled before a decision.
    pub cancelled: usize,
    /// Heartbeats observed across all train apps.
    pub heartbeats: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    id: RequestId,
    submitted_at_s: f64,
    deadline_override_s: Option<f64>,
}

#[derive(Debug, Clone)]
struct TrainRecord {
    name: String,
    registered_at_s: f64,
}

/// The deterministic eTrain system core.
///
/// Drive it with four calls, all carrying explicit timestamps (monotone
/// non-decreasing):
///
/// - [`ETrainCore::register_train`] / [`ETrainCore::register_cargo`] —
///   app registration (cargo apps register their delay-cost profile);
/// - [`ETrainCore::on_heartbeat`] — a train app transmitted a heartbeat
///   (the Xposed-hook trigger); runs a heartbeat slot of Algorithm 1 and
///   returns the piggybacking decisions;
/// - [`ETrainCore::submit`] — a cargo app requests a transmission;
/// - [`ETrainCore::tick`] — a regular scheduler slot.
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Debug)]
pub struct ETrainCore {
    config: CoreConfig,
    profiles: Vec<AppProfile>,
    scheduler: ETrainScheduler,
    monitor: HeartbeatMonitor,
    trains: Vec<TrainRecord>,
    pending: HashMap<u64, PendingRequest>,
    stashed_decisions: Vec<TransmitDecision>,
    stats: CoreStats,
    next_packet_id: u64,
    next_request_id: u64,
    now_s: f64,
}

impl ETrainCore {
    /// Creates a core with no registered apps.
    pub fn new(config: CoreConfig) -> Self {
        ETrainCore {
            scheduler: ETrainScheduler::new(
                ETrainConfig {
                    theta: config.theta,
                    k: config.k,
                    slot_s: config.slot_s,
                },
                Vec::new(),
            ),
            config,
            profiles: Vec::new(),
            monitor: HeartbeatMonitor::new(),
            trains: Vec::new(),
            pending: HashMap::new(),
            stashed_decisions: Vec::new(),
            stats: CoreStats::default(),
            next_packet_id: 0,
            next_request_id: 0,
            now_s: 0.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The current system time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of requests waiting for a transmission decision.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Cumulative operational counters since startup.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Registers a train app. Heartbeats must reference the returned id.
    pub fn register_train(&mut self, name: impl Into<String>) -> TrainAppId {
        let id = TrainAppId(self.trains.len());
        self.trains.push(TrainRecord {
            name: name.into(),
            registered_at_s: self.now_s,
        });
        id
    }

    /// Registers a cargo app with its delay-cost profile, as Android apps
    /// do when subscribing to eTrain's service (paper Sec. V-3).
    ///
    /// Pending requests of previously registered apps are preserved.
    pub fn register_cargo(&mut self, profile: AppProfile) -> CargoAppId {
        let id = CargoAppId(self.profiles.len());
        self.profiles.push(profile);
        // Rebuild the scheduler with the widened profile set, carrying over
        // every pending packet with its original arrival time.
        let mut rebuilt = ETrainScheduler::new(
            ETrainConfig {
                theta: self.config.theta,
                k: self.config.k,
                slot_s: self.config.slot_s,
            },
            self.profiles.clone(),
        );
        let mut carried: Vec<Packet> = Vec::with_capacity(self.pending.len());
        for (&packet_id, _meta) in &self.pending {
            // Recover the packet from the old scheduler's queues.
            for app_idx in 0..self.profiles.len().saturating_sub(1) {
                if let Some(p) = self.scheduler.force_release(CargoAppId(app_idx), packet_id) {
                    carried.push(p);
                    break;
                }
            }
        }
        carried.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        for p in carried {
            rebuilt
                .on_arrival(p, p.arrival_s)
                .expect("carried packet's app is registered");
        }
        self.scheduler = rebuilt;
        id
    }

    /// Name of a registered train app.
    pub fn train_name(&self, train: TrainAppId) -> Option<&str> {
        self.trains.get(train.index()).map(|t| t.name.as_str())
    }

    /// Submits a transmission request for `app` at time `now_s`, returning
    /// its id. Decisions are delivered from [`ETrainCore::tick`] /
    /// [`ETrainCore::on_heartbeat`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownCargoApp`] for unregistered apps and
    /// [`CoreError::TimeWentBackwards`] if `now_s` precedes the system
    /// clock.
    pub fn submit(
        &mut self,
        app: CargoAppId,
        request: TransmitRequest,
        now_s: f64,
    ) -> Result<RequestId, CoreError> {
        self.advance_clock(now_s)?;
        if app.index() >= self.profiles.len() {
            return Err(CoreError::UnknownCargoApp { app });
        }
        let packet_id = self.next_packet_id;
        self.next_packet_id += 1;
        let id = RequestId(self.next_request_id);
        self.next_request_id += 1;
        self.stats.submitted += 1;

        let packet = Packet {
            id: packet_id,
            app,
            arrival_s: now_s,
            size_bytes: request.size_bytes,
        };
        self.pending.insert(
            packet_id,
            PendingRequest {
                id,
                submitted_at_s: now_s,
                deadline_override_s: request.deadline_s,
            },
        );
        let released = self
            .scheduler
            .on_arrival(packet, now_s)
            .map_err(|_| CoreError::UnknownCargoApp { app })?;
        // eTrain always defers on arrival, but honor the trait contract:
        // anything released immediately is stashed for the next tick.
        let stashed: Vec<TransmitDecision> = released
            .into_iter()
            .map(|p| self.decision_for(p, now_s, None))
            .collect();
        self.stashed_decisions.extend(stashed);
        Ok(id)
    }

    /// Notifies the core that `train` transmitted a heartbeat at `now_s`
    /// (the paper's Xposed trigger) and runs a heartbeat slot of
    /// Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownTrainApp`] for unregistered trains and
    /// [`CoreError::TimeWentBackwards`] for non-monotone timestamps.
    pub fn on_heartbeat(
        &mut self,
        train: TrainAppId,
        now_s: f64,
    ) -> Result<Vec<TransmitDecision>, CoreError> {
        self.advance_clock(now_s)?;
        if train.index() >= self.trains.len() {
            return Err(CoreError::UnknownTrainApp { train });
        }
        self.monitor.observe(train, now_s);
        self.stats.heartbeats += 1;
        Ok(self.run_slot(now_s, Some(train)))
    }

    /// Runs a regular scheduler slot at `now_s` and returns the decisions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TimeWentBackwards`] for non-monotone
    /// timestamps.
    pub fn tick(&mut self, now_s: f64) -> Result<Vec<TransmitDecision>, CoreError> {
        self.advance_clock(now_s)?;
        Ok(self.run_slot(now_s, None))
    }

    /// Cancels a pending request (the user deleted a queued post, or the
    /// data became stale before any train departed). Returns `true` if the
    /// request was still pending and is now withdrawn, `false` if it was
    /// already decided or never existed — cancellation after a decision is
    /// a no-op because the cargo app may already be transmitting.
    pub fn cancel(&mut self, request: RequestId) -> bool {
        let Some((&packet_id, _)) = self
            .pending
            .iter()
            .find(|(_, meta)| meta.id == request)
        else {
            return false;
        };
        for app_idx in 0..self.profiles.len() {
            if self
                .scheduler
                .force_release(CargoAppId(app_idx), packet_id)
                .is_some()
            {
                self.pending.remove(&packet_id);
                self.stats.cancelled += 1;
                return true;
            }
        }
        // Metadata existed but the packet was not in any waiting queue —
        // an immediate release is parked in the stashed-decisions path;
        // withdraw it from there too.
        let before = self.stashed_decisions.len();
        self.stashed_decisions.retain(|d| d.request != request);
        if self.stashed_decisions.len() != before {
            self.pending.remove(&packet_id);
            self.stats.cancelled += 1;
            return true;
        }
        false
    }

    /// Whether the scheduler currently considers any train app alive.
    pub fn trains_alive(&self, now_s: f64) -> bool {
        self.trains.iter().enumerate().any(|(idx, record)| {
            match self.monitor.status(TrainAppId(idx), now_s) {
                TrainStatus::Alive => true,
                TrainStatus::Dead => false,
                TrainStatus::Undetermined => {
                    now_s - record.registered_at_s <= self.config.startup_grace_s
                }
            }
        })
    }

    /// The next predicted train departure strictly after `now_s`, if the
    /// monitor has learned a cycle.
    pub fn next_train_departure(&self, now_s: f64) -> Option<(TrainAppId, f64)> {
        self.monitor.next_departure(now_s)
    }

    fn advance_clock(&mut self, now_s: f64) -> Result<(), CoreError> {
        if now_s < self.now_s {
            return Err(CoreError::TimeWentBackwards {
                now_s: self.now_s,
                supplied_s: now_s,
            });
        }
        self.now_s = now_s;
        Ok(())
    }

    fn run_slot(&mut self, now_s: f64, heartbeat: Option<TrainAppId>) -> Vec<TransmitDecision> {
        let mut decisions = std::mem::take(&mut self.stashed_decisions);

        // Per-request deadline overrides: force-release anything that would
        // violate its own deadline by waiting one more slot.
        let critical: Vec<(u64, CargoAppId)> = self
            .pending
            .iter()
            .filter_map(|(&packet_id, meta)| {
                let deadline = meta.deadline_override_s?;
                if now_s + self.config.slot_s - meta.submitted_at_s >= deadline {
                    Some(packet_id)
                } else {
                    None
                }
            })
            .flat_map(|packet_id| {
                (0..self.profiles.len()).map(move |app| (packet_id, CargoAppId(app)))
            })
            .collect();
        for (packet_id, app) in critical {
            if let Some(p) = self.scheduler.force_release(app, packet_id) {
                decisions.push(self.decision_for(p, now_s, None));
            }
        }

        let ctx = SlotContext {
            now_s,
            heartbeat_departing: heartbeat.is_some(),
            predicted_bandwidth_bps: 0.0, // Algorithm 1 is channel-oblivious
            trains_alive: self.trains_alive(now_s),
        };
        let released: Vec<TransmitDecision> = self
            .scheduler
            .on_slot(&ctx)
            .into_iter()
            .map(|p| self.decision_for(p, now_s, heartbeat))
            .collect();
        decisions.extend(released);
        decisions
    }

    fn decision_for(
        &mut self,
        packet: Packet,
        now_s: f64,
        piggybacked_on: Option<TrainAppId>,
    ) -> TransmitDecision {
        let meta = self
            .pending
            .remove(&packet.id)
            .expect("released packet has pending metadata");
        self.stats.decided += 1;
        if piggybacked_on.is_some() {
            self.stats.piggybacked += 1;
        }
        TransmitDecision {
            request: meta.id,
            app: packet.app,
            size_bytes: packet.size_bytes,
            decided_at_s: now_s,
            submitted_at_s: meta.submitted_at_s,
            piggybacked_on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_sched::CostProfile;

    fn core() -> (ETrainCore, TrainAppId, CargoAppId) {
        let mut core = ETrainCore::new(CoreConfig {
            theta: 5.0, // high gate: only heartbeats release in tests
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
        });
        let train = core.register_train("WeChat");
        let cargo = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        (core, train, cargo)
    }

    #[test]
    fn request_rides_the_next_train() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id = core
            .submit(cargo, TransmitRequest::upload(5_000), 10.0)
            .unwrap();
        assert!(core.tick(11.0).unwrap().is_empty());
        assert_eq!(core.pending_requests(), 1);

        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        let d = decisions[0];
        assert_eq!(d.request, id);
        assert_eq!(d.piggybacked_on, Some(train));
        assert_eq!(d.delay_s(), 260.0);
        assert_eq!(core.pending_requests(), 0);
    }

    #[test]
    fn unknown_apps_are_rejected() {
        let (mut core, _, _) = core();
        let err = core
            .submit(CargoAppId(7), TransmitRequest::upload(1), 0.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownCargoApp { .. }));
        let err = core.on_heartbeat(TrainAppId(7), 0.0).unwrap_err();
        assert!(matches!(err, CoreError::UnknownTrainApp { .. }));
    }

    #[test]
    fn time_must_be_monotone() {
        let (mut core, _, cargo) = core();
        core.submit(cargo, TransmitRequest::upload(1), 50.0).unwrap();
        let err = core
            .submit(cargo, TransmitRequest::upload(1), 10.0)
            .unwrap_err();
        assert!(matches!(err, CoreError::TimeWentBackwards { .. }));
    }

    #[test]
    fn per_request_deadline_override_forces_release() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        core.submit(
            cargo,
            TransmitRequest::upload(100).with_deadline(20.0),
            5.0,
        )
        .unwrap();
        assert!(core.tick(10.0).unwrap().is_empty());
        // At t=24 the next slot would pass the 20 s override (5 + 20 = 25).
        let decisions = core.tick(24.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].piggybacked_on, None);
    }

    #[test]
    fn dead_trains_flush_pending_requests() {
        let (mut core, train, cargo) = core();
        // Teach the monitor a 100 s cycle.
        for j in 0..4 {
            core.on_heartbeat(train, j as f64 * 100.0).unwrap();
        }
        core.submit(cargo, TransmitRequest::upload(100), 350.0)
            .unwrap();
        // The train dies (no heartbeat for >2.5 cycles): requests flush.
        let decisions = core.tick(900.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert!(!core.trains_alive(900.0));
    }

    #[test]
    fn startup_grace_keeps_unobserved_trains_alive() {
        let (core, _, _) = core();
        assert!(core.trains_alive(100.0)); // within grace
        assert!(!core.trains_alive(10_000.0)); // grace expired, never seen
    }

    #[test]
    fn no_trains_registered_means_immediate_release() {
        let mut core = ETrainCore::new(CoreConfig::default());
        let cargo = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        core.submit(cargo, TransmitRequest::upload(100), 1.0).unwrap();
        let decisions = core.tick(2.0).unwrap();
        assert_eq!(decisions.len(), 1, "no trains: the scheduler must not defer");
    }

    #[test]
    fn late_cargo_registration_preserves_pending_requests() {
        let (mut core, train, cargo0) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let id0 = core
            .submit(cargo0, TransmitRequest::upload(100), 5.0)
            .unwrap();
        // Second cargo app registers while a request is pending.
        let cargo1 = core.register_cargo(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
        let id1 = core
            .submit(cargo1, TransmitRequest::upload(200), 6.0)
            .unwrap();
        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        let mut ids: Vec<RequestId> = decisions.iter().map(|d| d.request).collect();
        ids.sort();
        assert_eq!(ids, vec![id0, id1]);
    }

    #[test]
    fn monitor_predicts_next_departure() {
        let (mut core, train, _) = core();
        for j in 0..4 {
            core.on_heartbeat(train, j as f64 * 270.0).unwrap();
        }
        let (t, when) = core.next_train_departure(850.0).unwrap();
        assert_eq!(t, train);
        assert!((when - 1080.0).abs() < 1.0);
    }

    #[test]
    fn train_names_are_recorded() {
        let (core, train, _) = core();
        assert_eq!(core.train_name(train), Some("WeChat"));
        assert_eq!(core.train_name(TrainAppId(9)), None);
    }

    #[test]
    fn cancel_withdraws_pending_requests_only() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        let keep = core.submit(cargo, TransmitRequest::upload(100), 5.0).unwrap();
        let drop = core.submit(cargo, TransmitRequest::upload(200), 6.0).unwrap();

        assert!(core.cancel(drop), "pending request can be cancelled");
        assert!(!core.cancel(drop), "second cancel is a no-op");
        assert_eq!(core.pending_requests(), 1);

        let decisions = core.on_heartbeat(train, 270.0).unwrap();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].request, keep);
        assert!(!core.cancel(keep), "decided request cannot be cancelled");
    }

    #[test]
    fn stats_track_the_request_lifecycle() {
        let (mut core, train, cargo) = core();
        core.on_heartbeat(train, 0.0).unwrap();
        core.submit(cargo, TransmitRequest::upload(1), 1.0).unwrap();
        let victim = core.submit(cargo, TransmitRequest::upload(2), 2.0).unwrap();
        assert!(core.cancel(victim));
        core.on_heartbeat(train, 270.0).unwrap();

        let stats = core.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.decided, 1);
        assert_eq!(stats.piggybacked, 1);
        assert_eq!(stats.heartbeats, 2);
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = CoreConfig {
            theta: 3.5,
            k: Some(12),
            slot_s: 0.5,
            startup_grace_s: 120.0,
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: CoreConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
