//! Automatic shrinking: delta-debugging a failing chaos case down to a
//! minimal, serializable repro.
//!
//! The shrinker first freezes the plan's generated traces into explicit
//! packet/heartbeat lists ([`CasePlan::materialize_traces`]), then loops
//! over reduction passes until a fixpoint: halving the horizon (dropping
//! events past it), ddmin over packets and heartbeats, deleting fault
//! windows and alarms, zeroing fault probabilities, and simplifying knobs
//! (retry policy off, bandwidth pinned constant). Every candidate is
//! re-run end to end; a reduction is kept only if the failure class
//! survives ([`CaseFailure::matches`]). The result is a [`ReproCase`] —
//! the minimal case, its failure, and the signature a replay must
//! reproduce — serialized as JSON for `chaos --repro <file>`.

use serde::{Deserialize, Serialize};

use crate::case::{CaseFailure, ChaosCase};

/// A minimal failing case, ready to serialize into a repro artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproCase {
    /// The shrunk case.
    pub case: ChaosCase,
    /// The failure the shrunk case produces.
    pub failure: CaseFailure,
    /// The failure signature a replay must reproduce
    /// (see [`CaseFailure::signature`]).
    pub signature: String,
    /// The shrunk case's discrete event count (packets + heartbeats +
    /// fault windows + alarms).
    pub events: usize,
}

impl ReproCase {
    /// Serializes the repro as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro cases serialize infallibly")
    }

    /// Parses a repro artifact.
    ///
    /// # Errors
    ///
    /// Returns the parse error, rendered, when `json` is not a repro.
    pub fn from_json(json: &str) -> Result<ReproCase, String> {
        serde_json::from_str(json).map_err(|e| format!("not a repro artifact: {e}"))
    }

    /// Re-runs the case and checks the recorded failure class reproduces.
    ///
    /// # Errors
    ///
    /// Returns a description of the divergence when the case now runs
    /// clean or fails differently.
    pub fn replay(&self) -> Result<CaseFailure, String> {
        match self.case.run() {
            Some(failure) if self.failure.matches(&failure) => Ok(failure),
            Some(failure) => Err(format!(
                "failure changed: expected {}, got {}",
                self.signature,
                failure.signature()
            )),
            None => Err(format!(
                "case runs clean; expected {} ({})",
                self.signature, self.failure
            )),
        }
    }
}

/// Shrinks `case` to a minimal reproduction of its failure. Returns
/// `None` when the case does not fail in the first place.
pub fn shrink(case: &ChaosCase) -> Option<ReproCase> {
    let original = case.run()?;
    let fails = |candidate: &ChaosCase| {
        candidate
            .run()
            .is_some_and(|failure| original.matches(&failure))
    };

    let mut best = case.clone();
    // Freeze the implicit workload into explicit lists so the ddmin
    // passes below have elements to delete.
    let mut frozen = best.clone();
    frozen.plan.materialize_traces();
    if fails(&frozen) {
        best = frozen;
    }

    loop {
        let before = best.plan.event_count();

        // Halve the horizon while the failure survives, discarding
        // events the shorter run can never see (an event past the
        // horizon would otherwise trip packet conservation).
        while best.plan.horizon_s >= 120 {
            let mut candidate = best.clone();
            candidate.plan.horizon_s /= 2;
            clamp_to_horizon(&mut candidate);
            if fails(&candidate) {
                best = candidate;
            } else {
                break;
            }
        }

        // ddmin the explicit traces.
        if let Some(packets) = best.plan.packets.clone() {
            best.plan.packets = Some(ddmin(packets, |kept| {
                let mut candidate = best.clone();
                candidate.plan.packets = Some(kept.to_vec());
                fails(&candidate)
            }));
        }
        if let Some(heartbeats) = best.plan.heartbeats.clone() {
            best.plan.heartbeats = Some(ddmin(heartbeats, |kept| {
                let mut candidate = best.clone();
                candidate.plan.heartbeats = Some(kept.to_vec());
                fails(&candidate)
            }));
        }

        // Simplify the fault plan: all of it, then piece by piece.
        if best.plan.faults.is_some() {
            let mut candidate = best.clone();
            candidate.plan.faults = None;
            if fails(&candidate) {
                best = candidate;
            } else {
                for edit in FAULT_EDITS {
                    let mut candidate = best.clone();
                    if let Some(faults) = candidate.plan.faults.as_mut() {
                        if !edit(faults) {
                            continue;
                        }
                    }
                    if fails(&candidate) {
                        best = candidate;
                    }
                }
            }
        }

        // Simplify remaining knobs.
        if best.plan.retry.is_some() {
            let mut candidate = best.clone();
            candidate.plan.retry = None;
            if fails(&candidate) {
                best = candidate;
            }
        }
        if best.plan.constant_bandwidth_bps.is_none() {
            let mut candidate = best.clone();
            candidate.plan.constant_bandwidth_bps = Some(400_000.0);
            if fails(&candidate) {
                best = candidate;
            }
        }

        if best.plan.event_count() >= before {
            break;
        }
    }

    let failure = best.run().expect("every kept reduction still fails");
    let signature = failure.signature();
    let events = best.plan.event_count();
    Some(ReproCase {
        case: best,
        failure,
        signature,
        events,
    })
}

/// In-place fault-plan reductions; each returns `false` when it has
/// nothing to remove.
const FAULT_EDITS: &[fn(&mut etrain_sim::FaultPlan) -> bool] = &[
    |f| {
        let had = !f.outages.is_empty();
        f.outages.clear();
        had
    },
    |f| {
        let had = !f.train_deaths.is_empty();
        f.train_deaths.clear();
        had
    },
    |f| {
        let had = !f.oracle_alarms.is_empty();
        f.oracle_alarms.clear();
        had
    },
    |f| {
        let had = f.loss_probability > 0.0;
        f.loss_probability = 0.0;
        had
    },
    |f| {
        let had = f.heartbeat_drop_probability > 0.0;
        f.heartbeat_drop_probability = 0.0;
        had
    },
];

/// Drops explicit events the shrunk horizon can never see.
fn clamp_to_horizon(case: &mut ChaosCase) {
    let horizon = case.plan.horizon_s as f64;
    if let Some(packets) = case.plan.packets.as_mut() {
        packets.retain(|p| p.arrival_s < horizon);
    }
    if let Some(heartbeats) = case.plan.heartbeats.as_mut() {
        heartbeats.retain(|h| h.time_s < horizon);
    }
    if let Some(faults) = case.plan.faults.as_mut() {
        faults.outages.retain(|w| w.start_s < horizon);
        faults.train_deaths.retain(|w| w.start_s < horizon);
        faults.oracle_alarms.retain(|&t| t < horizon);
    }
}

/// Zeller's ddmin over a list: removes chunks at coarse granularity
/// first, refining toward single elements, keeping any candidate for
/// which `still_fails` holds. `items` must itself be failing.
fn ddmin<T: Clone>(items: Vec<T>, mut still_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items;
    if current.is_empty() {
        return current;
    }
    if still_fails(&[]) {
        return Vec::new();
    }
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if still_fails(&candidate) {
                current = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk_len <= 1 {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Corruption;
    use etrain_sim::{CasePlan, EngineKind, SchedulerKind};

    #[test]
    fn ddmin_minimizes_against_a_known_predicate() {
        // Failing iff the list contains both 3 and 7: the minimum is
        // exactly {3, 7}.
        let items: Vec<u32> = (0..32).collect();
        let reduced = ddmin(items, |kept| kept.contains(&3) && kept.contains(&7));
        assert_eq!(reduced, vec![3, 7]);
        // Failing unconditionally: shrinks to nothing.
        assert!(ddmin((0..8).collect::<Vec<u32>>(), |_| true).is_empty());
    }

    #[test]
    fn a_clean_case_does_not_shrink() {
        let case = ChaosCase::from_seed(0);
        assert!(shrink(&case).is_none());
    }

    #[test]
    fn every_corruption_shrinks_to_a_tiny_repro_that_replays() {
        let mut plan = CasePlan::from_seed(6, false);
        plan.horizon_s = plan.horizon_s.min(900);
        for corruption in Corruption::all() {
            let case = ChaosCase {
                plan: plan.clone(),
                kind: SchedulerKind::Baseline,
                engine: EngineKind::Slot,
                corruption: Some(corruption),
            };
            let repro = shrink(&case)
                .unwrap_or_else(|| panic!("{corruption:?} escaped the oracle entirely"));
            assert!(
                repro.events <= 10,
                "{corruption:?} shrank only to {} events",
                repro.events
            );
            assert!(
                repro.events <= case.event_count(),
                "shrinking must not grow the case"
            );
            let replayed = repro.replay().expect("minimal case replays");
            assert_eq!(replayed, repro.failure);
            // And the artifact itself round-trips and still replays.
            let back = ReproCase::from_json(&repro.to_json()).unwrap();
            assert_eq!(back, repro);
            back.replay().expect("parsed artifact replays");
        }
    }

    #[test]
    fn replay_rejects_a_case_that_no_longer_fails() {
        let clean = ChaosCase::from_seed(0);
        let repro = ReproCase {
            failure: CaseFailure::Panicked {
                payload: "boom".into(),
            },
            signature: "panic".into(),
            events: clean.event_count(),
            case: clean,
        };
        let err = repro.replay().unwrap_err();
        assert!(err.contains("runs clean"), "got: {err}");
    }
}
