//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses single-consumer channels exclusively (the broadcast
//! bus clones one sender per subscriber), so mpsc semantics suffice.

pub mod channel {
    //! Multi-producer single-consumer channels with the `crossbeam`
    //! method surface used by this workspace.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over received messages, blocking between them.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Iterates over already-queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip() {
            let (tx, rx) = unbounded();
            tx.send(3).unwrap();
            assert_eq!(rx.recv().unwrap(), 3);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
        }
    }
}
