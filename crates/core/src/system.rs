//! The threaded eTrain runtime: a real-clock wrapper around
//! [`ETrainCore`] with broadcast decision delivery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use etrain_sched::AppProfile;
use etrain_trace::{CargoAppId, TrainAppId};
use parking_lot::Mutex;

use crate::bus::Bus;
use crate::core_impl::{CoreConfig, ETrainCore};
use crate::error::CoreError;
use crate::request::{
    Admission, RequestId, RetryVerdict, TransmitDecision, TransmitRequest, TxResult,
};

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemConfig {
    /// Configuration of the embedded deterministic core.
    pub core: CoreConfig,
    /// Simulated seconds per real second. `1.0` runs in real time; tests
    /// and demos use large factors so a 270-second heartbeat cycle passes
    /// in milliseconds.
    pub time_scale: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            core: CoreConfig::default(),
            time_scale: 1.0,
        }
    }
}

#[derive(Debug)]
struct Shared {
    core: Mutex<ETrainCore>,
    bus: Bus<TransmitDecision>,
    started: Instant,
    time_scale: f64,
    stopped: AtomicBool,
}

impl Shared {
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * self.time_scale
    }

    fn ensure_running(&self) -> Result<(), CoreError> {
        if self.stopped.load(Ordering::SeqCst) {
            Err(CoreError::SystemStopped)
        } else {
            Ok(())
        }
    }

    fn publish_all(&self, decisions: Vec<TransmitDecision>) {
        for d in decisions {
            self.bus.publish(d);
        }
    }
}

/// The live eTrain system: a scheduler thread ticking at the configured
/// slot cadence, train handles that report heartbeats (the Xposed-hook
/// role), cargo clients that submit requests, and a broadcast bus that
/// delivers [`TransmitDecision`]s one-to-many.
///
/// # Examples
///
/// ```
/// use etrain_core::{ETrainSystem, SystemConfig, TransmitRequest};
/// use etrain_sched::{AppProfile, CostProfile};
///
/// # fn main() -> Result<(), etrain_core::CoreError> {
/// let mut config = SystemConfig::default();
/// config.time_scale = 1000.0; // 1000 simulated seconds per real second
///
/// let system = ETrainSystem::start(config);
/// let train = system.train_handle("WeChat");
/// let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
///
/// client.submit(TransmitRequest::upload(5_000))?;
/// train.heartbeat()?; // a heartbeat departs: the request piggybacks
/// let decision = client.next_decision(std::time::Duration::from_secs(2))
///     .expect("decision should arrive on the heartbeat");
/// assert_eq!(decision.size_bytes, 5_000);
/// system.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ETrainSystem {
    shared: Arc<Shared>,
    ticker: Option<JoinHandle<()>>,
}

impl ETrainSystem {
    /// Starts the system and its scheduler thread.
    ///
    /// # Panics
    ///
    /// Panics if `time_scale` is not strictly positive, or if the
    /// operating system refuses to spawn the scheduler thread.
    pub fn start(config: SystemConfig) -> Self {
        assert!(config.time_scale > 0.0, "time scale must be positive");
        let shared = Arc::new(Shared {
            core: Mutex::new(ETrainCore::new(config.core)),
            bus: Bus::new(),
            started: Instant::now(),
            time_scale: config.time_scale,
            stopped: AtomicBool::new(false),
        });
        // One scheduler slot in real time, bounded below so huge time
        // scales don't busy-spin.
        let tick_real =
            Duration::from_secs_f64((config.core.slot_s / config.time_scale).max(0.001));
        let thread_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("etrain-scheduler".to_owned())
            .spawn(move || {
                while !thread_shared.stopped.load(Ordering::SeqCst) {
                    std::thread::sleep(tick_real);
                    let now = thread_shared.now_s();
                    let decisions = {
                        let mut core = thread_shared.core.lock();
                        // Timer-driven delivery: a slot that provably
                        // cannot release or record anything is skipped
                        // outright — the live counterpart of the
                        // simulator's event kernel retiring quiescent
                        // slots in batches.
                        if core.has_due_work(now) {
                            core.tick(now).unwrap_or_default()
                        } else {
                            Vec::new()
                        }
                    };
                    thread_shared.publish_all(decisions);
                }
            });
        let ticker = match spawned {
            Ok(handle) => handle,
            // No scheduler thread means no system; this is the documented
            // startup panic, not a runtime `expect`.
            Err(e) => panic!("failed to spawn the eTrain scheduler thread: {e}"),
        };
        ETrainSystem {
            shared,
            ticker: Some(ticker),
        }
    }

    /// Current system time in simulated seconds.
    pub fn now_s(&self) -> f64 {
        self.shared.now_s()
    }

    /// Registers a train app and returns its heartbeat handle.
    pub fn train_handle(&self, name: &str) -> TrainHandle {
        let train = self.shared.core.lock().register_train(name);
        TrainHandle {
            train,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Registers a cargo app with its profile and returns a client that
    /// can submit requests and receive decisions.
    pub fn cargo_client(&self, profile: AppProfile) -> CargoClient {
        let app = self.shared.core.lock().register_cargo(profile);
        CargoClient {
            app,
            decisions: self.shared.bus.subscribe(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Subscribes to the raw decision broadcast (all apps).
    pub fn subscribe(&self) -> Receiver<TransmitDecision> {
        self.shared.bus.subscribe()
    }

    /// Snapshot of the core's cumulative operational counters.
    pub fn stats(&self) -> crate::CoreStats {
        self.shared.core.lock().stats()
    }

    /// Stops the scheduler thread, waits for it to exit, then drains every
    /// request still held by the core — queued, stashed or backing off —
    /// into immediate decisions. The drained decisions are broadcast on
    /// the bus (so subscribed clients can still act on them) *and*
    /// returned, so no in-flight work is silently dropped at teardown.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop_and_join();
        let drained = {
            let mut core = self.shared.core.lock();
            core.drain()
        };
        self.shared.publish_all(drained.clone());
        ShutdownReport { drained }
    }

    fn stop_and_join(&mut self) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
    }
}

/// What [`ETrainSystem::shutdown`] surfaced on the way out.
#[derive(Debug, Clone, PartialEq)]
pub struct ShutdownReport {
    /// Decisions for every request the core still held at shutdown
    /// (queued in the scheduler, stashed, or waiting out a retry
    /// backoff), in release order. Apps that care about durability should
    /// transmit these before exiting.
    pub drained: Vec<TransmitDecision>,
}

impl Drop for ETrainSystem {
    /// Signals the scheduler thread to stop and joins it. The join is
    /// bounded by one slot interval, so dropping never blocks long; call
    /// [`ETrainSystem::shutdown`] for an explicit teardown.
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Handle through which a train app reports its heartbeats — the role the
/// Xposed module plays on Android (paper Sec. V-2).
#[derive(Debug)]
pub struct TrainHandle {
    train: TrainAppId,
    shared: Arc<Shared>,
}

impl TrainHandle {
    /// This train's id.
    pub fn id(&self) -> TrainAppId {
        self.train
    }

    /// Reports that a heartbeat is departing right now. The scheduler runs
    /// a heartbeat slot of Algorithm 1 and any piggybacking decisions are
    /// broadcast immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SystemStopped`] after shutdown.
    pub fn heartbeat(&self) -> Result<(), CoreError> {
        self.shared.ensure_running()?;
        let now = self.shared.now_s();
        let decisions = {
            let mut core = self.shared.core.lock();
            core.on_heartbeat(self.train, now)?
        };
        self.shared.publish_all(decisions);
        Ok(())
    }
}

/// A cargo app's connection to eTrain: submit requests, receive decisions.
#[derive(Debug)]
pub struct CargoClient {
    app: CargoAppId,
    decisions: Receiver<TransmitDecision>,
    shared: Arc<Shared>,
}

impl CargoClient {
    /// This cargo app's id.
    pub fn id(&self) -> CargoAppId {
        self.app
    }

    /// Submits a transmission request, returning the typed
    /// [`Admission`] outcome; the decision for an admitted request
    /// arrives later on the broadcast (see [`CargoClient::next_decision`]).
    /// Under bounded admission ([`crate::CoreConfig::admission`]) the
    /// outcome reports load shedding: rejection, an eviction, or an early
    /// force-flush of the oldest queued request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SystemStopped`] after shutdown, or the core's
    /// validation errors.
    pub fn submit(&self, request: TransmitRequest) -> Result<Admission, CoreError> {
        self.shared.ensure_running()?;
        let now = self.shared.now_s();
        self.shared.core.lock().submit(self.app, request, now)
    }

    /// Cancels one of this app's pending requests. Returns `true` when the
    /// request was withdrawn before any decision, `false` when it was
    /// already decided (or unknown).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SystemStopped`] after shutdown.
    pub fn cancel(&self, request: RequestId) -> Result<bool, CoreError> {
        self.shared.ensure_running()?;
        Ok(self.shared.core.lock().cancel(request))
    }

    /// Reports the outcome of acting on a [`TransmitDecision`]. A
    /// [`TxResult::Failed`] report feeds the retry layer: the request backs
    /// off per [`crate::CoreConfig::retry`] and is re-offered to the
    /// scheduler, or abandoned once attempts or the deadline run out.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SystemStopped`] after shutdown, or
    /// [`CoreError::UnknownRequest`] when no decision for `request` is
    /// outstanding (never decided, already reported, or cancelled).
    pub fn report_result(
        &self,
        request: RequestId,
        result: TxResult,
    ) -> Result<RetryVerdict, CoreError> {
        self.shared.ensure_running()?;
        let now = self.shared.now_s();
        self.shared.core.lock().report_result(request, result, now)
    }

    /// Blocks up to `timeout` for the next decision addressed to *this*
    /// app (decisions for other apps are skipped, mirroring Android
    /// broadcast receivers filtering by intent).
    pub fn next_decision(&self, timeout: Duration) -> Option<TransmitDecision> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.checked_duration_since(Instant::now())?;
            match self.decisions.recv_timeout(remaining) {
                Ok(d) if d.app == self.app => return Some(d),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_sched::CostProfile;

    fn fast_config(theta: f64) -> SystemConfig {
        SystemConfig {
            core: CoreConfig {
                theta,
                k: None,
                slot_s: 1.0,
                startup_grace_s: 600.0,
                ..CoreConfig::default()
            },
            time_scale: 1000.0,
        }
    }

    #[test]
    fn end_to_end_heartbeat_piggybacking() {
        let system = ETrainSystem::start(fast_config(50.0));
        let train = system.train_handle("QQ");
        let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));

        let id = client
            .submit(TransmitRequest::upload(4_000))
            .unwrap()
            .id()
            .unwrap();
        train.heartbeat().unwrap();
        let decision = client
            .next_decision(Duration::from_secs(2))
            .expect("heartbeat should trigger a decision");
        assert_eq!(decision.request, id);
        assert_eq!(decision.piggybacked_on, Some(train.id()));
        system.shutdown();
    }

    #[test]
    fn decisions_are_filtered_per_client() {
        let system = ETrainSystem::start(fast_config(50.0));
        let train = system.train_handle("QQ");
        let mail = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
        let weibo = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));

        weibo.submit(TransmitRequest::upload(100)).unwrap();
        train.heartbeat().unwrap();
        assert!(mail.next_decision(Duration::from_millis(300)).is_none());
        assert!(weibo.next_decision(Duration::from_secs(2)).is_some());
        system.shutdown();
    }

    #[test]
    fn submissions_fail_after_shutdown() {
        let system = ETrainSystem::start(fast_config(1.0));
        let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
        let shared = Arc::clone(&system.shared);
        system.shutdown();
        shared.stopped.store(true, Ordering::SeqCst);
        assert_eq!(
            client.submit(TransmitRequest::upload(1)).unwrap_err(),
            CoreError::SystemStopped
        );
    }

    #[test]
    fn ticker_thread_releases_on_cost_breach() {
        // Θ = 0 with no trains registered: the ticker itself must flush
        // the request within a few slots.
        let system = ETrainSystem::start(fast_config(0.0));
        let client = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
        client.submit(TransmitRequest::upload(100)).unwrap();
        let decision = client.next_decision(Duration::from_secs(2));
        assert!(decision.is_some(), "ticker should flush the request");
        system.shutdown();
    }

    #[test]
    fn shutdown_under_load_drains_pending_decisions() {
        // High Θ and no heartbeat: every submission stays queued. Shutdown
        // must surface all of them instead of silently dropping the queue.
        let system = ETrainSystem::start(fast_config(1e9));
        let _train = system.train_handle("QQ");
        let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
        let all = system.subscribe();
        let mut ids = Vec::new();
        for i in 0..5 {
            let admission = client.submit(TransmitRequest::upload(100 + i)).unwrap();
            ids.push(admission.id().unwrap());
        }
        let report = system.shutdown();
        let mut drained: Vec<RequestId> = report.drained.iter().map(|d| d.request).collect();
        drained.sort();
        assert_eq!(drained, ids, "every queued request is drained");
        // The drained decisions were also broadcast to live subscribers.
        for _ in 0..5 {
            assert!(all.recv_timeout(Duration::from_secs(1)).is_ok());
        }
    }

    #[test]
    fn raw_subscription_sees_all_decisions() {
        let system = ETrainSystem::start(fast_config(50.0));
        let train = system.train_handle("QQ");
        let all = system.subscribe();
        let mail = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
        mail.submit(TransmitRequest::upload(1)).unwrap();
        train.heartbeat().unwrap();
        let d = all.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(d.app, mail.id());
        system.shutdown();
    }
}
