//! The simulation oracle: run-time invariant checking over engine output.
//!
//! The paper's headline claims rest on physics invariants (every
//! transmission is followed by a δ_D DCH tail and δ_F FACH tail;
//! piggybacked cargo adds no new tail) and on ordering claims (the online
//! Lyapunov scheduler tracks the offline optimum and dominates the
//! no-piggyback baseline on fault-free traces). A regression in
//! `Timeline::from_transmissions` or a scheduler would silently reshape
//! every figure. The oracle makes those properties checkable on *every*
//! run:
//!
//! 1. **Energy ledger conservation** — the offline timeline rebuilt from
//!    the transmission log integrates to the online radio's
//!    transmission + tail ledger; segment energies agree with the
//!    closed-form analytic model; the transmit ledger equals
//!    busy-time × p̃_D; the idle baseline equals idle-power × horizon.
//! 2. **RRC legality** — timeline segments are contiguous,
//!    non-overlapping, cover exactly `[0, horizon]`, and only demote
//!    DCH→FACH→IDLE after exactly δ_D/δ_F of inactivity (delegated to
//!    [`etrain_radio::audit_segments`], an independent re-derivation).
//! 3. **Packet conservation** — every generated packet is completed,
//!    abandoned, in flight or still deferred *exactly once*; completions
//!    respect causality (arrival ≤ release ≤ tx start < tx end ≤
//!    horizon); abandonments and retries occur only under a lossy
//!    [`FaultPlan`].
//! 4. **Metrics consistency** — the [`RunReport`] derived from the output
//!    matches an independent re-computation of every ratio and
//!    aggregate, and no metric is NaN/∞.
//!
//! The scheduler-ordering claim (eTrain between the offline bound and the
//! baseline) needs *extra runs*, so it is not part of the per-run audit;
//! [`audit_scheduler_ordering`] packages it for the conformance suite and
//! controlled experiments.
//!
//! # Modes
//!
//! [`OracleMode`] threads through [`crate::Scenario`] /
//! [`crate::RunGrid`] and the checked engine entry points:
//!
//! - `Off` — no auditing at all (zero overhead, the default);
//! - `Record` — audit every run, attach the [`OracleOutcome`] to the
//!   report and bump the process-wide [`counters`];
//! - `Strict` — like `Record`, but a violation turns the run into a typed
//!   error ([`ScenarioError::OracleViolation`](crate::ScenarioError)).
//!
//! The mode can also be set process-wide through the `ETRAIN_ORACLE`
//! environment variable (`off` / `record` / `strict`), which
//! `Scenario::paper_default` reads — this is how `repro_all` audits all
//! 28 registry experiments without per-experiment plumbing. The
//! observability layer mirrors the pattern with `ETRAIN_OBS`
//! (`etrain_obs::ObsMode`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use etrain_radio::merge_busy_periods;
use etrain_sched::{AppProfile, OfflineProblem};
use etrain_trace::faults::FaultPlan;
use etrain_trace::heartbeats::Heartbeat;
use etrain_trace::packets::Packet;
use serde::{Deserialize, Serialize};

use crate::engine::EngineOutput;
use crate::metrics::RunReport;
use crate::scenario::{BandwidthSource, Scenario, SchedulerKind};

/// Environment variable selecting the process-wide default oracle mode.
pub const ORACLE_ENV: &str = "ETRAIN_ORACLE";

/// How much auditing a run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OracleMode {
    /// No auditing; zero overhead. The default.
    #[default]
    Off,
    /// Audit every run and attach the outcome to the report; violations
    /// are recorded, not fatal.
    Record,
    /// Audit every run; any violation fails the run with a typed error.
    Strict,
}

impl OracleMode {
    /// Strict `ETRAIN_ORACLE` reader: `Ok(Off)` when unset or empty, the
    /// parsed mode otherwise, and `Err` (with the parse reason) for an
    /// unrecognized value. Binaries call this so `ETRAIN_ORACLE=stric`
    /// fails fast instead of silently auditing nothing.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var(ORACLE_ENV) {
            Err(_) => Ok(OracleMode::Off),
            Ok(raw) if raw.trim().is_empty() => Ok(OracleMode::Off),
            Ok(raw) => raw.parse(),
        }
    }

    /// Reads the process-wide default from `ETRAIN_ORACLE`
    /// (`off`/`record`/`strict`, case-insensitive); anything else — or an
    /// unset variable — is `Off`. An unparseable value warns once on
    /// stderr rather than being swallowed silently (library contexts
    /// cannot fail fast; binaries use [`OracleMode::try_from_env`]).
    pub fn from_env() -> Self {
        OracleMode::try_from_env().unwrap_or_else(|reason| {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: ignoring {reason}; oracle stays off");
            });
            OracleMode::Off
        })
    }

    /// Whether this mode audits at all.
    pub fn is_enabled(self) -> bool {
        self != OracleMode::Off
    }
}

impl std::str::FromStr for OracleMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Ok(OracleMode::Off),
            "record" => Ok(OracleMode::Record),
            "strict" => Ok(OracleMode::Strict),
            other => Err(format!(
                "unknown oracle mode {other:?} (expected off, record or strict)"
            )),
        }
    }
}

impl std::fmt::Display for OracleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OracleMode::Off => "off",
            OracleMode::Record => "record",
            OracleMode::Strict => "strict",
        })
    }
}

/// One violated invariant, with enough context to diagnose it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OracleViolation {
    /// The offline timeline's extra energy disagrees with the online
    /// radio's transmission + tail ledger.
    EnergyImbalance {
        /// Extra energy integrated from the rebuilt timeline, in joules.
        timeline_j: f64,
        /// `transmission_energy_j + tail_energy_j` from the online radio.
        ledger_j: f64,
        /// The tolerance that was exceeded, in joules.
        tolerance_j: f64,
    },
    /// The transmit-energy ledger disagrees with busy-time × p̃_D.
    TransmitEnergyMismatch {
        /// `transmission_energy_j` from the online radio.
        ledger_j: f64,
        /// `busy_time_s × dch_extra_mw / 1000`.
        busy_derived_j: f64,
        /// The tolerance that was exceeded, in joules.
        tolerance_j: f64,
    },
    /// An energy or time field is NaN, infinite, or negative.
    NonFiniteQuantity {
        /// Which field.
        field: String,
        /// Its value.
        value: f64,
    },
    /// The rebuilt RRC timeline violates the demotion rules (wrapped
    /// [`etrain_radio::TimelineAuditError`], rendered).
    IllegalTimeline {
        /// Human-readable description of the radio-layer audit failure.
        detail: String,
    },
    /// Two logged transmissions overlap — a single radio cannot do that.
    OverlappingTransmissions {
        /// Index of the earlier transmission.
        index: usize,
        /// Its end time, in seconds.
        end_s: f64,
        /// The next transmission's start, in seconds.
        next_start_s: f64,
    },
    /// Terminal packet states do not add up to the generated trace.
    PacketConservation {
        /// Packets in the input trace.
        generated: usize,
        /// Completed packets.
        completed: usize,
        /// Abandoned packets.
        abandoned: usize,
        /// Packets in flight at the horizon.
        in_flight: usize,
        /// Packets still deferred inside the scheduler.
        still_deferred: usize,
        /// Packets shed by admission control.
        shed: usize,
    },
    /// A packet reached more than one terminal state.
    DuplicateTerminalState {
        /// The packet id.
        packet_id: u64,
    },
    /// A terminal state references a packet the input trace never
    /// generated.
    UnknownPacket {
        /// The packet id.
        packet_id: u64,
    },
    /// A completed packet's timing is acausal (release before arrival,
    /// transmission before release, end before start, or past the
    /// horizon).
    CausalityViolation {
        /// The packet id.
        packet_id: u64,
        /// Its arrival time, in seconds.
        arrival_s: f64,
        /// Its (final) release time, in seconds.
        release_s: f64,
        /// Its transmission start, in seconds.
        tx_start_s: f64,
        /// Its transmission end, in seconds.
        tx_end_s: f64,
    },
    /// Retries, abandonments or wasted retry energy appeared although the
    /// fault plan cannot lose transmissions.
    UnexpectedFaultArtifact {
        /// What appeared.
        detail: String,
    },
    /// `heartbeats_sent` disagrees with the plan-filtered heartbeat trace.
    HeartbeatCount {
        /// Heartbeats the filtered trace says should depart.
        expected: usize,
        /// Heartbeats the engine reported sending.
        sent: usize,
    },
    /// The transmission log's length is outside its accounting bracket.
    TransmissionCount {
        /// Transmissions logged.
        logged: usize,
        /// Lower bound: completed + abandoned + retried attempts.
        lower: usize,
        /// Upper bound: lower + heartbeats sent + packets in flight.
        upper: usize,
    },
    /// A report metric disagrees with its independent re-computation.
    MetricsMismatch {
        /// Which metric.
        metric: String,
        /// The value in the report.
        reported: f64,
        /// The value the oracle recomputed.
        recomputed: f64,
    },
    /// An online scheduler's energy fell outside its ordering bounds.
    SchedulerOrdering {
        /// Display name of the scheduler that broke the bound.
        scheduler: String,
        /// Its extra energy, in joules.
        extra_energy_j: f64,
        /// The bound it violated, in joules.
        bound_j: f64,
        /// `"above-baseline"` or `"below-offline"`.
        relation: String,
    },
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleViolation::EnergyImbalance {
                timeline_j,
                ledger_j,
                tolerance_j,
            } => write!(
                f,
                "energy ledger imbalance: timeline {timeline_j} J vs online ledger {ledger_j} J (tolerance {tolerance_j} J)"
            ),
            OracleViolation::TransmitEnergyMismatch {
                ledger_j,
                busy_derived_j,
                tolerance_j,
            } => write!(
                f,
                "transmit energy {ledger_j} J disagrees with busy-time derivation {busy_derived_j} J (tolerance {tolerance_j} J)"
            ),
            OracleViolation::NonFiniteQuantity { field, value } => {
                write!(f, "{field} is not a finite non-negative number: {value}")
            }
            OracleViolation::IllegalTimeline { detail } => {
                write!(f, "illegal RRC timeline: {detail}")
            }
            OracleViolation::OverlappingTransmissions {
                index,
                end_s,
                next_start_s,
            } => write!(
                f,
                "transmission #{index} ends at {end_s} s after its successor starts at {next_start_s} s"
            ),
            OracleViolation::PacketConservation {
                generated,
                completed,
                abandoned,
                in_flight,
                still_deferred,
                shed,
            } => write!(
                f,
                "packet conservation broken: {generated} generated vs {completed} completed + {abandoned} abandoned + {in_flight} in flight + {still_deferred} deferred + {shed} shed"
            ),
            OracleViolation::DuplicateTerminalState { packet_id } => {
                write!(f, "packet {packet_id} reached two terminal states")
            }
            OracleViolation::UnknownPacket { packet_id } => {
                write!(f, "packet {packet_id} was never generated")
            }
            OracleViolation::CausalityViolation {
                packet_id,
                arrival_s,
                release_s,
                tx_start_s,
                tx_end_s,
            } => write!(
                f,
                "packet {packet_id} timing is acausal: arrival {arrival_s} s, release {release_s} s, tx [{tx_start_s}, {tx_end_s}] s"
            ),
            OracleViolation::UnexpectedFaultArtifact { detail } => {
                write!(f, "fault artifact without a lossy fault plan: {detail}")
            }
            OracleViolation::HeartbeatCount { expected, sent } => write!(
                f,
                "heartbeat count mismatch: trace expects {expected}, engine sent {sent}"
            ),
            OracleViolation::TransmissionCount {
                logged,
                lower,
                upper,
            } => write!(
                f,
                "transmission log length {logged} outside accounting bracket [{lower}, {upper}]"
            ),
            OracleViolation::MetricsMismatch {
                metric,
                reported,
                recomputed,
            } => write!(
                f,
                "metric {metric} reported as {reported} but recomputes to {recomputed}"
            ),
            OracleViolation::SchedulerOrdering {
                scheduler,
                extra_energy_j,
                bound_j,
                relation,
            } => write!(
                f,
                "{scheduler} extra energy {extra_energy_j} J is {relation} bound {bound_j} J"
            ),
        }
    }
}

impl std::error::Error for OracleViolation {}

/// The result of auditing one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleOutcome {
    /// The mode the audit ran under.
    pub mode: OracleMode,
    /// Individual invariant checks performed.
    pub checks: u64,
    /// Violations found (empty for a clean run).
    pub violations: Vec<OracleViolation>,
}

impl OracleOutcome {
    /// Whether the audit found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Process-wide audit tallies, for end-of-batch summaries (`repro_all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleCounters {
    /// Individual invariant checks performed since process start (or the
    /// last [`reset_counters`]).
    pub checks: u64,
    /// Violations found in the same window.
    pub violations: u64,
}

static CHECKS_TOTAL: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide audit tallies.
pub fn counters() -> OracleCounters {
    OracleCounters {
        checks: CHECKS_TOTAL.load(Ordering::Relaxed),
        violations: VIOLATIONS_TOTAL.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide audit tallies to zero.
pub fn reset_counters() {
    CHECKS_TOTAL.store(0, Ordering::Relaxed);
    VIOLATIONS_TOTAL.store(0, Ordering::Relaxed);
}

/// Adds an outcome to the process-wide tallies.
pub fn record_outcome(outcome: &OracleOutcome) {
    CHECKS_TOTAL.fetch_add(outcome.checks, Ordering::Relaxed);
    VIOLATIONS_TOTAL.fetch_add(outcome.violations.len() as u64, Ordering::Relaxed);
}

/// Per-event float budget for energy comparisons: the online radio and
/// the offline timeline accumulate independently, one rounding step per
/// accounting event.
fn energy_tolerance_j(events: usize) -> f64 {
    1e-9 * (1.0 + events as f64)
}

/// Small helper carrying the growing outcome.
struct Audit {
    checks: u64,
    violations: Vec<OracleViolation>,
}

impl Audit {
    fn new() -> Self {
        Audit {
            checks: 0,
            violations: Vec::new(),
        }
    }

    fn check(&mut self, ok: bool, violation: impl FnOnce() -> OracleViolation) {
        self.checks += 1;
        if !ok {
            self.violations.push(violation());
        }
    }

    fn finish(self, mode: OracleMode) -> OracleOutcome {
        OracleOutcome {
            mode,
            checks: self.checks,
            violations: self.violations,
        }
    }
}

/// Audits the engine-level invariants (energy ledger, RRC legality,
/// packet conservation) of one run.
///
/// `packets` and `heartbeats` are the *input* traces the engine ran on
/// (pre fault filtering); `plan` is the fault plan it ran under. The
/// returned outcome carries `mode = Record`; callers re-tag it.
pub fn audit_engine(
    output: &EngineOutput,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    plan: &FaultPlan,
) -> OracleOutcome {
    let mut audit = Audit::new();
    audit_energy(&mut audit, output);
    audit_rrc(&mut audit, output);
    audit_packets(&mut audit, output, packets, plan);
    audit_heartbeats(&mut audit, output, heartbeats, plan);
    audit.finish(OracleMode::Record)
}

/// Invariant 1: the energy ledger balances across three independent
/// accounting paths (online radio, offline timeline, analytic model).
fn audit_energy(audit: &mut Audit, output: &EngineOutput) {
    for (field, value) in [
        ("transmission_energy_j", output.transmission_energy_j),
        ("tail_energy_j", output.tail_energy_j),
        ("idle_energy_j", output.idle_energy_j),
        ("wasted_retry_energy_j", output.wasted_retry_energy_j),
        ("busy_time_s", output.busy_time_s),
        ("horizon_s", output.horizon_s),
    ] {
        audit.check(value.is_finite() && value >= 0.0, || {
            OracleViolation::NonFiniteQuantity {
                field: field.to_string(),
                value,
            }
        });
    }

    let tol = energy_tolerance_j(output.transmissions.len());
    let ledger_j = output.transmission_energy_j + output.tail_energy_j;
    let timeline_j = output.timeline().extra_energy_j();
    audit.check((timeline_j - ledger_j).abs() <= tol, || {
        OracleViolation::EnergyImbalance {
            timeline_j,
            ledger_j,
            tolerance_j: tol,
        }
    });

    let busy_derived_j = output.busy_time_s * output.radio_params.dch_extra_mw() / 1000.0;
    audit.check(
        (output.transmission_energy_j - busy_derived_j).abs() <= tol,
        || OracleViolation::TransmitEnergyMismatch {
            ledger_j: output.transmission_energy_j,
            busy_derived_j,
            tolerance_j: tol,
        },
    );

    let idle_expected_j = output.radio_params.idle_mw() / 1000.0 * output.horizon_s;
    audit.check(
        (output.idle_energy_j - idle_expected_j).abs() <= tol,
        || OracleViolation::MetricsMismatch {
            metric: "idle_energy_j".to_string(),
            reported: output.idle_energy_j,
            recomputed: idle_expected_j,
        },
    );

    audit.check(
        output.wasted_retry_energy_j <= output.transmission_energy_j + tol,
        || OracleViolation::NonFiniteQuantity {
            field: "wasted_retry_energy_j above transmission_energy_j".to_string(),
            value: output.wasted_retry_energy_j,
        },
    );

    // Busy time equals the merged busy periods of the log.
    let merged = merge_busy_periods(&output.transmissions, output.horizon_s);
    let merged_busy_s: f64 = merged.iter().map(|&(s, e)| e - s).sum();
    audit.check((output.busy_time_s - merged_busy_s).abs() <= tol, || {
        OracleViolation::MetricsMismatch {
            metric: "busy_time_s".to_string(),
            reported: output.busy_time_s,
            recomputed: merged_busy_s,
        }
    });
}

/// Invariant 2: the rebuilt timeline obeys the RRC demotion rules and the
/// transmission log is a legal single-radio schedule.
fn audit_rrc(audit: &mut Audit, output: &EngineOutput) {
    let timeline = output.timeline();
    match timeline.audit(&output.transmissions) {
        Ok(radio_checks) => audit.checks += radio_checks as u64,
        Err(err) => {
            audit.checks += 1;
            audit.violations.push(OracleViolation::IllegalTimeline {
                detail: err.to_string(),
            });
        }
    }

    for (index, pair) in output.transmissions.windows(2).enumerate() {
        let end_s = pair[0].end_s();
        let next_start_s = pair[1].start_s;
        audit.check(end_s <= next_start_s + 1e-9, || {
            OracleViolation::OverlappingTransmissions {
                index,
                end_s,
                next_start_s,
            }
        });
    }
}

/// Invariant 3: packet conservation, uniqueness of terminal states, and
/// causality of completions; fault artifacts only under a lossy plan.
fn audit_packets(audit: &mut Audit, output: &EngineOutput, packets: &[Packet], plan: &FaultPlan) {
    // Multiset accounting: every generated packet id must be consumed by
    // exactly one terminal state, and the leftover must match the
    // scheduler's deferred count.
    let mut remaining: HashMap<u64, usize> = HashMap::new();
    for p in packets {
        *remaining.entry(p.id).or_insert(0) += 1;
    }
    let terminal_ids = output
        .completed
        .iter()
        .map(|c| c.packet.id)
        .chain(output.abandoned.iter().map(|a| a.packet.id))
        .chain(output.in_flight.iter().map(|p| p.id))
        .chain(output.shed.iter().map(|p| p.id));
    for id in terminal_ids {
        match remaining.get_mut(&id) {
            Some(n) if *n > 0 => {
                *n -= 1;
                audit.checks += 1;
            }
            Some(_) => audit.check(false, || OracleViolation::DuplicateTerminalState {
                packet_id: id,
            }),
            None => audit.check(false, || OracleViolation::UnknownPacket { packet_id: id }),
        }
    }
    let leftover: usize = remaining.values().sum();
    audit.check(
        leftover == output.still_deferred
            && output.completed.len()
                + output.abandoned.len()
                + output.in_flight.len()
                + output.still_deferred
                + output.shed.len()
                == packets.len(),
        || OracleViolation::PacketConservation {
            generated: packets.len(),
            completed: output.completed.len(),
            abandoned: output.abandoned.len(),
            in_flight: output.in_flight.len(),
            still_deferred: output.still_deferred,
            shed: output.shed.len(),
        },
    );

    // Causality of every completion.
    let tol = 1e-9;
    for c in &output.completed {
        let ok = c.packet.arrival_s.is_finite()
            && c.release_s.is_finite()
            && c.tx_start_s.is_finite()
            && c.tx_end_s.is_finite()
            && c.packet.arrival_s <= c.release_s + tol
            && c.release_s <= c.tx_start_s + tol
            && c.tx_start_s < c.tx_end_s
            && c.tx_end_s <= output.horizon_s + tol;
        audit.check(ok, || OracleViolation::CausalityViolation {
            packet_id: c.packet.id,
            arrival_s: c.packet.arrival_s,
            release_s: c.release_s,
            tx_start_s: c.tx_start_s,
            tx_end_s: c.tx_end_s,
        });
    }
    for a in &output.abandoned {
        let ok = a.attempts >= 1
            && a.abandoned_at_s.is_finite()
            && a.packet.arrival_s <= a.abandoned_at_s + tol
            && a.abandoned_at_s <= output.horizon_s + tol;
        audit.check(ok, || OracleViolation::CausalityViolation {
            packet_id: a.packet.id,
            arrival_s: a.packet.arrival_s,
            release_s: f64::NAN,
            tx_start_s: f64::NAN,
            tx_end_s: a.abandoned_at_s,
        });
    }

    // Fault artifacts require a plan that can actually lose transfers.
    if plan.loss_probability <= 0.0 {
        audit.check(output.abandoned.is_empty(), || {
            OracleViolation::UnexpectedFaultArtifact {
                detail: format!("{} abandonments", output.abandoned.len()),
            }
        });
        audit.check(output.retries == 0, || {
            OracleViolation::UnexpectedFaultArtifact {
                detail: format!("{} retries", output.retries),
            }
        });
        audit.check(output.wasted_retry_energy_j == 0.0, || {
            OracleViolation::UnexpectedFaultArtifact {
                detail: format!("{} J wasted retry energy", output.wasted_retry_energy_j),
            }
        });
    }

    // Transmission log length sits inside its accounting bracket: every
    // settled cargo attempt logged one transmission; heartbeats and the
    // final in-flight packet account for the rest.
    let lower = output.completed.len() + output.abandoned.len() + output.retries;
    let upper = lower + output.heartbeats_sent + output.in_flight.len();
    let logged = output.transmissions.len();
    audit.check(logged >= lower && logged <= upper, || {
        OracleViolation::TransmissionCount {
            logged,
            lower,
            upper,
        }
    });
}

/// Heartbeat conservation: the engine sends exactly the plan-filtered
/// heartbeats that fall inside the horizon.
fn audit_heartbeats(
    audit: &mut Audit,
    output: &EngineOutput,
    heartbeats: &[Heartbeat],
    plan: &FaultPlan,
) {
    let filtered: Vec<Heartbeat>;
    let surviving: &[Heartbeat] = if plan.is_noop() {
        heartbeats
    } else {
        filtered = plan.apply_to_heartbeats(heartbeats);
        &filtered
    };
    let expected = surviving
        .iter()
        .filter(|hb| hb.time_s <= output.horizon_s)
        .count();
    audit.check(expected == output.heartbeats_sent, || {
        OracleViolation::HeartbeatCount {
            expected,
            sent: output.heartbeats_sent,
        }
    });
}

/// Invariant 4 (report level): every aggregate in the [`RunReport`]
/// matches an independent re-computation from the raw output.
pub fn audit_report(
    report: &RunReport,
    output: &EngineOutput,
    profiles: &[AppProfile],
) -> OracleOutcome {
    let mut audit = Audit::new();

    // Finiteness of every float the report carries.
    for (field, value) in [
        ("extra_energy_j", report.extra_energy_j),
        ("transmission_energy_j", report.transmission_energy_j),
        ("tail_energy_j", report.tail_energy_j),
        ("idle_energy_j", report.idle_energy_j),
        ("total_energy_j", report.total_energy_j),
        ("abandonment_ratio", report.abandonment_ratio),
        ("wasted_retry_energy_j", report.wasted_retry_energy_j),
        ("normalized_delay_s", report.normalized_delay_s),
        ("deadline_violation_ratio", report.deadline_violation_ratio),
        ("busy_time_s", report.busy_time_s),
        ("tail_fraction", report.tail_fraction()),
    ] {
        audit.check(value.is_finite() && value >= 0.0, || {
            OracleViolation::NonFiniteQuantity {
                field: field.to_string(),
                value,
            }
        });
    }

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
    let metric = |audit: &mut Audit, name: &str, reported: f64, recomputed: f64| {
        audit.check(close(reported, recomputed), || {
            OracleViolation::MetricsMismatch {
                metric: name.to_string(),
                reported,
                recomputed,
            }
        });
    };

    metric(
        &mut audit,
        "extra_energy_j",
        report.extra_energy_j,
        output.transmission_energy_j + output.tail_energy_j,
    );
    metric(
        &mut audit,
        "total_energy_j",
        report.total_energy_j,
        report.extra_energy_j + report.idle_energy_j,
    );

    // Independent delay/violation recomputation, in completion order
    // (from_engine aggregates per app first).
    let mut delay_sum = 0.0f64;
    let mut violations = 0usize;
    for c in &output.completed {
        let delay = c.scheduling_delay_s();
        delay_sum += delay;
        if delay >= profiles[c.packet.app.index()].cost.deadline_s() {
            violations += 1;
        }
    }
    let n = output.completed.len();
    let recomputed_delay = if n > 0 { delay_sum / n as f64 } else { 0.0 };
    let recomputed_violation = if n > 0 {
        violations as f64 / n as f64
    } else {
        0.0
    };
    metric(
        &mut audit,
        "normalized_delay_s",
        report.normalized_delay_s,
        recomputed_delay,
    );
    metric(
        &mut audit,
        "deadline_violation_ratio",
        report.deadline_violation_ratio,
        recomputed_violation,
    );

    let settled = n + output.abandoned.len() + output.in_flight.len() + output.still_deferred;
    let recomputed_abandonment = if settled > 0 {
        output.abandoned.len() as f64 / settled as f64
    } else {
        0.0
    };
    metric(
        &mut audit,
        "abandonment_ratio",
        report.abandonment_ratio,
        recomputed_abandonment,
    );

    // Counts carried over verbatim.
    for (name, reported, expected) in [
        ("packets_completed", report.packets_completed, n),
        (
            "packets_unfinished",
            report.packets_unfinished,
            output.in_flight.len() + output.still_deferred,
        ),
        (
            "packets_abandoned",
            report.packets_abandoned,
            output.abandoned.len(),
        ),
        (
            "heartbeats_sent",
            report.heartbeats_sent,
            output.heartbeats_sent,
        ),
        ("retries", report.retries, output.retries),
        ("promotions", report.promotions, output.promotions),
        ("packets_shed", report.packets_shed, output.shed.len()),
        (
            "forced_flushes",
            report.forced_flushes,
            output.forced_flushes,
        ),
        (
            "health_events",
            report.health_events.len(),
            output.health_events.len(),
        ),
        (
            "per_app_packets",
            report.per_app.iter().map(|a| a.packets).sum::<usize>(),
            n,
        ),
    ] {
        metric(&mut audit, name, reported as f64, expected as f64);
    }

    // Ratios live in [0, 1].
    for (name, value) in [
        ("abandonment_ratio", report.abandonment_ratio),
        ("deadline_violation_ratio", report.deadline_violation_ratio),
        ("tail_fraction", report.tail_fraction()),
    ] {
        audit.check((0.0..=1.0).contains(&value), || {
            OracleViolation::NonFiniteQuantity {
                field: format!("{name} outside [0, 1]"),
                value,
            }
        });
    }

    audit.finish(OracleMode::Record)
}

/// Full per-run audit: engine invariants plus report consistency, tagged
/// with `mode` and added to the process-wide [`counters`].
#[allow(clippy::too_many_arguments)]
pub fn audit_run(
    report: &RunReport,
    output: &EngineOutput,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    plan: &FaultPlan,
    profiles: &[AppProfile],
    mode: OracleMode,
) -> OracleOutcome {
    let engine = audit_engine(output, packets, heartbeats, plan);
    let rep = audit_report(report, output, profiles);
    let outcome = OracleOutcome {
        mode,
        checks: engine.checks + rep.checks,
        violations: engine
            .violations
            .into_iter()
            .chain(rep.violations)
            .collect(),
    };
    record_outcome(&outcome);
    outcome
}

/// Result of a scheduler-ordering audit on one controlled instance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct OrderingAudit {
    /// The no-piggyback baseline's extra energy, in joules.
    pub baseline_extra_j: f64,
    /// Online eTrain's extra energy, in joules.
    pub etrain_extra_j: f64,
    /// The offline schedule's objective (extra energy), in joules.
    pub offline_bound_j: f64,
    /// Whether the offline bound is the exact candidate-grid optimum
    /// (instances over 10 packets fall back to the greedy heuristic,
    /// which is not a lower bound).
    pub offline_exact: bool,
}

/// Checks the paper's ordering claim on one controlled instance: online
/// eTrain's extra energy must not exceed the no-piggyback baseline's, and
/// must not fall below the exact offline optimum (minus discretization
/// slack — the online engine schedules on 1 s slots while the offline
/// grid releases exactly at arrivals/heartbeats, so up to 2 % slack in
/// that direction is legitimate, matching the `offline_gap` experiment).
///
/// The instance must use a constant-bandwidth channel and a fault-free
/// plan — the ordering claim is only stated there — and should carry at
/// least one train so piggybacking is possible. Callers (the conformance
/// suite) construct such instances deliberately; this is not a per-run
/// invariant because it requires two extra simulations and an offline
/// solve.
///
/// # Errors
///
/// Returns the first [`OracleViolation::SchedulerOrdering`] found.
#[allow(clippy::result_large_err)]
pub fn audit_scheduler_ordering(
    packets: Vec<Packet>,
    heartbeats: Vec<Heartbeat>,
    profiles: Vec<AppProfile>,
    bandwidth_bps: f64,
    horizon_s: f64,
    theta: f64,
) -> Result<OrderingAudit, OracleViolation> {
    let base = Scenario::paper_default()
        .oracle(OracleMode::Off)
        .duration_secs(horizon_s as u64)
        .profiles(profiles.clone())
        .packets(packets.clone())
        .heartbeats(heartbeats.clone())
        .bandwidth(BandwidthSource::Constant(bandwidth_bps));

    let baseline = base
        .clone()
        .scheduler(SchedulerKind::Baseline)
        .run()
        .extra_energy_j;
    let etrain = base
        .scheduler(SchedulerKind::ETrain { theta, k: None })
        .run()
        .extra_energy_j;

    let problem = OfflineProblem {
        packets,
        heartbeats,
        profiles,
        radio: etrain_radio::RadioParams::galaxy_s4_3g(),
        bandwidth_bps,
        horizon_s,
        cost_budget: f64::MAX,
    };
    let (offline, exact) = problem.solve_best();

    if etrain > baseline + 1e-6 {
        return Err(OracleViolation::SchedulerOrdering {
            scheduler: "eTrain".to_string(),
            extra_energy_j: etrain,
            bound_j: baseline,
            relation: "above-baseline".to_string(),
        });
    }
    if exact && etrain < offline.energy_j * 0.98 - 1e-6 {
        return Err(OracleViolation::SchedulerOrdering {
            scheduler: "eTrain".to_string(),
            extra_energy_j: etrain,
            bound_j: offline.energy_j,
            relation: "below-offline".to_string(),
        });
    }
    Ok(OrderingAudit {
        baseline_extra_j: baseline,
        etrain_extra_j: etrain,
        offline_bound_j: offline.energy_j,
        offline_exact: exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_and_display() {
        assert_eq!("off".parse::<OracleMode>().unwrap(), OracleMode::Off);
        assert_eq!("Record".parse::<OracleMode>().unwrap(), OracleMode::Record);
        assert_eq!(
            " STRICT ".parse::<OracleMode>().unwrap(),
            OracleMode::Strict
        );
        assert!("bogus".parse::<OracleMode>().is_err());
        assert_eq!(OracleMode::Strict.to_string(), "strict");
        assert_eq!(OracleMode::default(), OracleMode::Off);
        assert!(!OracleMode::Off.is_enabled());
        assert!(OracleMode::Record.is_enabled());
    }

    #[test]
    fn violations_render_human_readable() {
        let v = OracleViolation::EnergyImbalance {
            timeline_j: 10.0,
            ledger_j: 11.0,
            tolerance_j: 1e-6,
        };
        assert!(v.to_string().contains("imbalance"), "{v}");
        let v = OracleViolation::SchedulerOrdering {
            scheduler: "eTrain".to_string(),
            extra_energy_j: 5.0,
            bound_j: 4.0,
            relation: "above-baseline".to_string(),
        };
        assert!(v.to_string().contains("above-baseline"), "{v}");
    }

    #[test]
    fn counters_accumulate() {
        let before = counters();
        let outcome = OracleOutcome {
            mode: OracleMode::Record,
            checks: 5,
            violations: vec![OracleViolation::UnknownPacket { packet_id: 1 }],
        };
        record_outcome(&outcome);
        let after = counters();
        assert_eq!(after.checks, before.checks + 5);
        assert_eq!(after.violations, before.violations + 1);
    }

    #[test]
    fn outcome_serde_roundtrip() {
        let outcome = OracleOutcome {
            mode: OracleMode::Strict,
            checks: 42,
            violations: vec![OracleViolation::HeartbeatCount {
                expected: 3,
                sent: 2,
            }],
        };
        let json = serde_json::to_string(&outcome).unwrap();
        let back: OracleOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(outcome, back);
    }
}
