//! Extension: the online-vs-offline gap of the paper's Sec. III
//! formulation.
//!
//! The paper formulates offline tail-energy minimization (Eq. 1), notes it
//! is NP-hard, and designs the online Algorithm 1. This experiment
//! quantifies what the online algorithm leaves on the table: small random
//! instances are solved exactly (exhaustive search over the
//! arrival/heartbeat candidate grid, unbounded delay budget — the pure
//! energy minimum), by the offline greedy heuristic, and by online eTrain
//! at a high Θ, on the same constant-bandwidth channel.

use crate::ExperimentResult;
use etrain_sched::{AppProfile, CostProfile, OfflineProblem};
use etrain_sim::{BandwidthSource, Scenario, SchedulerKind, Table};
use etrain_trace::heartbeats::{synthesize, TrainAppSpec};
use etrain_trace::packets::{CargoAppSpec, CargoWorkload};
use etrain_trace::rng::TruncatedNormal;

use super::j;

const BANDWIDTH_BPS: f64 = 450_000.0;
const HORIZON_S: f64 = 600.0;

/// Runs the offline-gap experiment.
pub fn run(quick: bool) -> ExperimentResult {
    let instances = if quick { 3 } else { 8 };
    let profiles = vec![AppProfile::new("Weibo", CostProfile::weibo(120.0))];
    let trains = vec![TrainAppSpec::wechat().with_phase(30.0)];
    // A sparse workload keeps instances inside the exhaustive limit.
    let workload = CargoWorkload::new(vec![CargoAppSpec::new(
        "Weibo",
        90.0,
        TruncatedNormal::from_mean_min(2_000.0, 100.0),
    )]);

    let mut table = Table::new(
        "Extension — online eTrain vs offline optimum (10-minute instances)",
        &[
            "instance",
            "packets",
            "offline_opt_j",
            "offline_greedy_j",
            "online_etrain_j",
            "online_gap",
        ],
    );
    for seed in 0..instances {
        let packets = workload.generate(HORIZON_S, seed);
        if packets.len() > 8 {
            continue; // keep the exhaustive search tractable
        }
        let heartbeats = synthesize(&trains, HORIZON_S, seed + 100);

        let problem = OfflineProblem {
            packets: packets.clone(),
            heartbeats: heartbeats.clone(),
            profiles: profiles.clone(),
            radio: etrain_radio::RadioParams::galaxy_s4_3g(),
            bandwidth_bps: BANDWIDTH_BPS,
            horizon_s: HORIZON_S,
            cost_budget: f64::MAX, // pure energy minimum
        };
        let optimal = problem.solve_exhaustive().expect("instance within limit");
        let greedy = problem.solve_greedy();

        let online = Scenario::paper_default()
            .duration_secs(HORIZON_S as u64)
            .profiles(profiles.clone())
            .packets(packets.clone())
            .heartbeats(heartbeats)
            .bandwidth(BandwidthSource::Constant(BANDWIDTH_BPS))
            .scheduler(SchedulerKind::ETrain {
                theta: 50.0,
                k: None,
            })
            .run();

        table.push_row_strings(vec![
            seed.to_string(),
            packets.len().to_string(),
            j(optimal.energy_j),
            j(greedy.energy_j),
            j(online.extra_energy_j),
            format!(
                "{:.1}%",
                (online.extra_energy_j / optimal.energy_j - 1.0) * 100.0
            ),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "online_gap_first_instance",
        0,
        0,
        "online_gap",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_never_beats_the_offline_optimum() {
        let tables = run(true).tables;
        for row in tables[0].to_csv().lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let optimal: f64 = cells[2].parse().unwrap();
            let greedy: f64 = cells[3].parse().unwrap();
            let online: f64 = cells[4].parse().unwrap();
            assert!(optimal <= greedy + 1e-6, "optimum above greedy: {row}");
            // The offline optimum is exact *on its candidate grid*; the
            // online engine schedules on 1 s slots and serializes
            // transmissions slightly differently, so allow 2 %
            // discretization slack in this direction.
            assert!(
                online >= optimal * 0.98 - 1e-6,
                "online implausibly below offline optimum: {row}"
            );
        }
    }
}
