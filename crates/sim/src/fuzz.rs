//! Serializable scenario plans for fuzzing and conformance testing.
//!
//! A [`CasePlan`] is the conformance suite's random-scenario generator
//! promoted into a value: every knob is a plain serializable field, and
//! [`CasePlan::from_seed`] derives each one as a pure function of the seed
//! (the exact derivation the differential conformance suite has always
//! used, so existing seeds keep reproducing the same scenarios).
//! [`CasePlan::scenario`] materializes the plan into a runnable
//! [`Scenario`].
//!
//! Because the plan is data rather than code, the chaos campaign can
//! serialize a failing case into a repro artifact and the shrinker can
//! delta-debug it — dropping packets, fault windows, and trains, halving
//! the horizon — while re-materializing a scenario after every edit.

use etrain_sched::RetryPolicy;
use etrain_trace::faults::{hash_unit, FaultPlan};
use etrain_trace::heartbeats::{Heartbeat, TrainAppSpec};
use etrain_trace::packets::Packet;
use serde::{Deserialize, Serialize};

use crate::oracle::OracleMode;
use crate::scenario::{BandwidthSource, Scenario, SchedulerKind};

/// All compared algorithms, with the knob values the paper's comparison
/// figures use, plus the guarded (degradation-ladder) eTrain variant —
/// the axis both the conformance suite and the chaos campaign sweep.
pub fn conformance_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Baseline,
        SchedulerKind::ETrain {
            theta: 0.2,
            k: None,
        },
        SchedulerKind::PerEs { omega: 0.2 },
        SchedulerKind::ETime { v_bytes: 30_000.0 },
        SchedulerKind::Guarded {
            theta: 0.2,
            k: None,
            health: etrain_sched::HealthConfig::default(),
            admission: etrain_sched::AdmissionConfig::unbounded(),
        },
    ]
}

/// Which train apps a plan runs, as serializable data (the
/// [`TrainAppSpec`] lists are derivable, so only the choice is stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainSet {
    /// No train apps: heartbeat-free, eTrain cannot piggyback.
    Empty,
    /// WeChat alone.
    Wechat,
    /// The paper's QQ + WeChat + WhatsApp trio.
    PaperTrio,
}

impl TrainSet {
    /// The train-app specs this choice stands for.
    pub fn specs(&self) -> Vec<TrainAppSpec> {
        match self {
            TrainSet::Empty => vec![],
            TrainSet::Wechat => vec![TrainAppSpec::wechat()],
            TrainSet::PaperTrio => TrainAppSpec::paper_trio(),
        }
    }
}

/// A fully serializable scenario description: the conformance generator's
/// output as data. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CasePlan {
    /// The workload/bandwidth seed.
    pub seed: u64,
    /// Simulated duration in whole seconds.
    pub horizon_s: u64,
    /// Total cargo arrival rate in pkt/s (ignored when
    /// `packets` pins an explicit trace).
    pub lambda: f64,
    /// The train apps (ignored when `heartbeats` pins an explicit trace).
    pub trains: TrainSet,
    /// `Some(bps)` pins a constant-bandwidth channel; `None` uses the
    /// synthetic drive trace.
    pub constant_bandwidth_bps: Option<f64>,
    /// The injected faults; `None` is a fault-free run.
    pub faults: Option<FaultPlan>,
    /// A non-default retry policy, if the case needs one.
    pub retry: Option<RetryPolicy>,
    /// An explicit packet trace (set by the shrinker to freeze and then
    /// thin the workload).
    pub packets: Option<Vec<Packet>>,
    /// An explicit heartbeat trace (set by the shrinker likewise).
    pub heartbeats: Option<Vec<Heartbeat>>,
}

impl CasePlan {
    /// Derives every knob as a pure function of `seed` — the conformance
    /// suite's exact generator, so a failing seed reproduces precisely.
    pub fn from_seed(seed: u64, with_faults: bool) -> CasePlan {
        let u = |salt: u64| hash_unit(seed, salt, 0xc04f);
        let horizon_s = 600 + (u(1) * 1200.0) as u64;
        let lambda = 0.01 + u(2) * 0.12;
        let trains = match (u(3) * 3.0) as usize {
            0 => TrainSet::Empty,
            1 => TrainSet::Wechat,
            _ => TrainSet::PaperTrio,
        };
        let constant_bandwidth_bps = (u(9) < 0.4).then(|| 200_000.0 + u(10) * 600_000.0);
        let faults = with_faults.then(|| {
            let h = horizon_s as f64;
            let mut plan = FaultPlan::seeded(seed ^ 0xfa11)
                .with_loss(0.05 + u(4) * 0.25)
                .with_heartbeat_drops(u(5) * 0.2);
            if u(6) < 0.5 {
                plan = plan.with_outage(h * 0.3, h * 0.3 + 30.0 + u(7) * 60.0);
            }
            if u(8) < 0.3 {
                plan = plan.with_train_death(h * 0.6, h * 0.7);
            }
            plan
        });
        CasePlan {
            seed,
            horizon_s,
            lambda,
            trains,
            constant_bandwidth_bps,
            faults,
            retry: None,
            packets: None,
            heartbeats: None,
        }
    }

    /// Materializes the plan into a runnable scenario (oracle mode `Off`;
    /// callers pick their own audit mode).
    pub fn scenario(&self) -> Scenario {
        let mut scenario = Scenario::paper_default()
            .oracle(OracleMode::Off)
            .duration_secs(self.horizon_s)
            .seed(self.seed)
            .lambda(self.lambda)
            .trains(self.trains.specs());
        if let Some(bps) = self.constant_bandwidth_bps {
            scenario = scenario.bandwidth(BandwidthSource::Constant(bps));
        }
        if let Some(faults) = &self.faults {
            scenario = scenario.faults(faults.clone());
        }
        if let Some(retry) = &self.retry {
            scenario = scenario.retry_policy(*retry);
        }
        if let Some(packets) = &self.packets {
            scenario = scenario.packets(packets.clone());
        }
        if let Some(heartbeats) = &self.heartbeats {
            scenario = scenario.heartbeats(heartbeats.clone());
        }
        scenario
    }

    /// Freezes the plan's generated traces into explicit `packets` /
    /// `heartbeats` lists — the first shrinking move, turning the implicit
    /// workload into data the shrinker can thin element by element. A
    /// frozen plan materializes the identical scenario inputs.
    pub fn materialize_traces(&mut self) {
        let traces = self.scenario().generate_traces();
        self.packets = Some(traces.packets.to_vec());
        self.heartbeats = Some(traces.heartbeats.to_vec());
    }

    /// The case's discrete event count — packets + heartbeats + fault
    /// windows + injected alarms — the size the shrinker minimizes and the
    /// "repro ≤ N events" acceptance bar measures.
    pub fn event_count(&self) -> usize {
        let traces = self.scenario().generate_traces();
        let fault_events = self.faults.as_ref().map_or(0, |plan| {
            plan.outages.len() + plan.train_deaths.len() + plan.oracle_alarms.len()
        });
        traces.packets.len() + traces.heartbeats.len() + fault_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        let a = CasePlan::from_seed(3, true);
        let b = CasePlan::from_seed(3, true);
        assert_eq!(a, b);
        // Across a small seed range, every train-set choice appears.
        let sets: Vec<TrainSet> = (0..32)
            .map(|s| CasePlan::from_seed(s, false).trains)
            .collect();
        assert!(sets.contains(&TrainSet::Empty));
        assert!(sets.contains(&TrainSet::Wechat));
        assert!(sets.contains(&TrainSet::PaperTrio));
    }

    #[test]
    fn materialized_plan_reproduces_the_generated_run() {
        let plan = CasePlan::from_seed(5, true);
        let direct = plan.scenario().run();
        let mut frozen = plan.clone();
        frozen.materialize_traces();
        assert_eq!(direct, frozen.scenario().run());
    }

    #[test]
    fn plans_round_trip_through_json() {
        let mut plan = CasePlan::from_seed(9, true);
        plan.materialize_traces();
        let json = serde_json::to_string(&plan).unwrap();
        let back: CasePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.scenario().run(), back.scenario().run());
    }

    #[test]
    fn event_count_tracks_traces_and_faults() {
        let plan = CasePlan::from_seed(2, true);
        let traces = plan.scenario().generate_traces();
        let base = traces.packets.len() + traces.heartbeats.len();
        assert!(plan.event_count() >= base);
        let no_faults = CasePlan {
            faults: None,
            ..plan.clone()
        };
        assert_eq!(no_faults.event_count(), base);
    }
}
