//! Extension: the paper's Sec. II-B measurement study, end to end.
//!
//! The paper captured raw traffic with Wireshark on five phones and
//! analyzed it offline to find each app's heartbeat cycle (producing
//! Table 1 and Fig. 3). This experiment runs the automated version of
//! that pipeline: synthesize a realistic capture (heartbeat flows buried
//! in foreground bursts and background noise), run the flow classifier,
//! and compare against the capture's ground truth — reporting precision,
//! recall and per-flow cycle error.

use crate::ExperimentResult;
use etrain_hb::{identify_heartbeat_flows, IdentifyConfig};
use etrain_sim::Table;
use etrain_trace::capture::{synthesize_capture, synthesize_ios_capture, CaptureConfig};
use etrain_trace::heartbeats::{CyclePattern, TrainAppSpec};

use super::s;

/// Runs the capture-study experiment.
pub fn run(quick: bool) -> ExperimentResult {
    let duration = if quick { 3600.0 } else { 2.0 * 3600.0 };
    let mut per_flow = Table::new(
        "Capture study — identified heartbeat flows (Android, 3 IM apps)",
        &[
            "app",
            "true_cycle_s",
            "detected_s",
            "folded_s",
            "beats",
            "mean_size_b",
        ],
    );
    let config = CaptureConfig {
        duration_s: duration,
        ..CaptureConfig::default()
    };
    let capture = synthesize_capture(&config, 23);
    let flows = identify_heartbeat_flows(&capture, &IdentifyConfig::default());

    let mut hits = 0usize;
    for flow in &flows {
        let truth = capture.truth.iter().find(|(key, _)| *key == flow.flow);
        let (name, true_cycle) = match truth {
            Some((_, name)) => {
                hits += 1;
                let spec = config
                    .trains
                    .iter()
                    .find(|t| t.name == *name)
                    .expect("truth names a configured train");
                let cycle = match spec.pattern {
                    CyclePattern::Fixed { cycle_s } => cycle_s,
                    _ => f64::NAN,
                };
                (name.clone(), cycle)
            }
            None => ("FALSE POSITIVE".to_owned(), f64::NAN),
        };
        per_flow.push_row_strings(vec![
            name,
            s(true_cycle),
            s(flow.cycle_s),
            flow.folded_cycle_s.map_or("-".to_owned(), s),
            flow.beats.to_string(),
            format!("{:.0}", flow.mean_size_bytes),
        ]);
    }

    let mut summary = Table::new("Capture study — classifier quality", &["metric", "value"]);
    let precision = if flows.is_empty() {
        1.0
    } else {
        hits as f64 / flows.len() as f64
    };
    let recall = hits as f64 / capture.truth.len() as f64;
    summary.push_row_strings(vec!["precision".into(), format!("{precision:.2}")]);
    summary.push_row_strings(vec!["recall".into(), format!("{recall:.2}")]);
    summary.push_row_strings(vec![
        "capture packets".into(),
        capture.packets.len().to_string(),
    ]);

    // iOS: every app shares one APNS connection — one 1800 s flow.
    let ios = synthesize_ios_capture(8.0 * 3600.0, 24);
    let ios_flows = identify_heartbeat_flows(&ios, &IdentifyConfig::default());
    summary.push_row_strings(vec![
        "iOS flows found (expect 1 @ 1800 s)".into(),
        ios_flows
            .iter()
            .map(|f| format!("{:.0}s", f.cycle_s))
            .collect::<Vec<_>>()
            .join(" "),
    ]);

    // RenRen + NetEase on a separate device (Fig. 3(d) apps).
    let sns = synthesize_capture(
        &CaptureConfig {
            trains: vec![TrainAppSpec::renren(), TrainAppSpec::netease()],
            duration_s: duration,
            ..CaptureConfig::default()
        },
        25,
    );
    let sns_flows = identify_heartbeat_flows(&sns, &IdentifyConfig::default());
    summary.push_row_strings(vec![
        "SNS device flows (expect 300 s + adaptive)".into(),
        sns_flows
            .iter()
            .map(|f| format!("{:.0}s", f.cycle_s))
            .collect::<Vec<_>>()
            .join(" "),
    ]);

    ExperimentResult::from_tables(vec![per_flow, summary]).headline_cell(
        "precision",
        1,
        0,
        "value",
        "ratio",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_precision_and_recall_on_default_capture() {
        let tables = run(true).tables;
        let csv = tables[1].to_csv();
        let value = |metric: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(metric))
                .and_then(|l| l.rsplit(',').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::NAN)
        };
        assert_eq!(value("precision"), 1.0);
        assert_eq!(value("recall"), 1.0);
    }

    #[test]
    fn no_false_positive_rows() {
        let tables = run(true).tables;
        assert!(!tables[0].to_csv().contains("FALSE POSITIVE"));
    }
}
