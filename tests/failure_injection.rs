//! Failure-injection tests: the system must degrade gracefully when
//! trains die, the channel collapses, heartbeats jitter, or workloads are
//! degenerate.

use etrain::core::{CoreConfig, ETrainCore, TransmitRequest};
use etrain::sched::{AppProfile, CostProfile, RetryPolicy};
use etrain::sim::{BandwidthSource, FaultPlan, Scenario, SchedulerKind};
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::packets::CargoWorkload;

/// Paper Sec. V-3: "In case when no train app is running, eTrain will stop
/// its scheduler to avoid cargo apps' indefinite waiting."
#[test]
fn train_death_mid_run_flushes_cargo() {
    // Every train's daemon dies at t = 1200 s of a 3600 s run.
    let report = Scenario::paper_default()
        .duration_secs(3600)
        .scheduler(SchedulerKind::ETrain {
            theta: 1e9, // gate never opens: trains are the only outlet
            k: None,
        })
        .faults(FaultPlan::seeded(2).with_train_death(1200.0, 3600.0))
        .seed(2)
        .run();
    // Nothing may be stranded: once the trains are gone the scheduler
    // stops deferring (the engine signals trains_alive = false).
    assert_eq!(
        report.packets_unfinished, 0,
        "cargo stranded after train death"
    );
}

/// A lossy channel costs retries and wasted joules, but the retry layer
/// still delivers everything that fits in the horizon.
#[test]
fn lossy_channel_retries_to_completion() {
    let report = Scenario::paper_default()
        .duration_secs(3600)
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .faults(FaultPlan::seeded(11).with_loss(0.25))
        .retry_policy(RetryPolicy::default())
        .seed(3)
        .run();
    assert!(report.retries > 0, "a 25% lossy channel must retry");
    assert!(report.wasted_retry_energy_j > 0.0);
    assert!(
        report.packets_completed > 0,
        "retries should still deliver most packets"
    );
    assert_eq!(
        report.abandonment_ratio, 0.0,
        "default policy has attempts to spare at 25% loss"
    );
}

/// A coverage hole stretches transfers across its far edge instead of
/// dropping them: accounting stays exact.
#[test]
fn bandwidth_outage_stretches_transfers() {
    let base = Scenario::paper_default()
        .duration_secs(2400)
        .scheduler(SchedulerKind::Baseline)
        .seed(5);
    let clean = base.clone().run();
    let holed = base
        .faults(FaultPlan::seeded(5).with_outage(600.0, 1200.0))
        .run();
    assert!(
        holed.normalized_delay_s >= clean.normalized_delay_s,
        "a 10-minute hole cannot speed transfers up"
    );
    assert_eq!(
        holed.packets_completed + holed.packets_unfinished + holed.packets_abandoned,
        clean.packets_completed + clean.packets_unfinished,
        "the outage must not lose packets"
    );
}

/// Chaos: train death + coverage hole + lossy channel in one run. The run
/// must terminate, conserve packets, and keep every metric finite.
#[test]
fn chaos_run_survives_combined_faults() {
    let plan = FaultPlan::seeded(77)
        .with_loss(0.4)
        .with_heartbeat_drops(0.2)
        .with_outage(300.0, 700.0)
        .with_train_death(900.0, 1500.0)
        .with_periodic_outages(1600.0, 60.0, 400.0, 2400.0);
    let report = Scenario::paper_default()
        .duration_secs(2400)
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .faults(plan)
        .retry_policy(RetryPolicy {
            max_attempts: 3,
            give_up_age_s: 400.0,
            ..RetryPolicy::default()
        })
        .seed(9)
        .run();
    let generated = CargoWorkload::paper_default(0.08).generate(2400.0, 9).len();
    assert_eq!(
        report.packets_completed + report.packets_abandoned + report.packets_unfinished,
        generated,
        "chaos must not create or destroy packets"
    );
    assert!(report.retries > 0, "40% loss must trigger retries");
    assert!(report.extra_energy_j.is_finite());
    assert!(report.normalized_delay_s.is_finite());
    assert!(report.abandonment_ratio <= 1.0);
}

#[test]
fn channel_collapse_slows_but_loses_nothing() {
    // An 8 kbps channel (the generator's fade floor) for the entire run.
    let report = Scenario::paper_default()
        .duration_secs(1800)
        .lambda(0.02)
        .bandwidth(BandwidthSource::Constant(8_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.5,
            k: None,
        })
        .seed(4)
        .run();
    // Large cloud packets take ~100 s each at 1 kB/s: some work must spill
    // past the horizon, but accounting stays consistent.
    let generated = CargoWorkload::paper_default(0.02).generate(1800.0, 4).len();
    assert_eq!(
        report.packets_completed + report.packets_unfinished,
        generated
    );
    assert!(report.busy_time_s > 100.0, "slow channel keeps radio busy");
}

#[test]
fn heavy_heartbeat_jitter_does_not_break_alignment() {
    let jittered: Vec<TrainAppSpec> = TrainAppSpec::paper_trio()
        .into_iter()
        .map(|t| t.with_jitter(30.0))
        .collect();
    let base = Scenario::paper_default().duration_secs(2400).seed(6);
    let clean = base
        .clone()
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .run();
    let noisy = base
        .trains(jittered)
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .run();
    // The scheduler reacts to *observed* departures, so ±30 s jitter must
    // not change energy by more than 20 %.
    let drift = (noisy.extra_energy_j - clean.extra_energy_j).abs() / clean.extra_energy_j;
    assert!(drift < 0.2, "jitter drift {:.1}%", drift * 100.0);
}

#[test]
fn zero_workload_runs_clean() {
    let report = Scenario::paper_default()
        .duration_secs(1800)
        .workload(CargoWorkload::new(Vec::new()))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.2,
            k: None,
        })
        .seed(1)
        .run();
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.normalized_delay_s, 0.0);
    assert!(report.extra_energy_j > 0.0, "heartbeats still cost energy");
}

#[test]
fn burst_arrivals_are_conserved() {
    // 200 packets arriving in the same second.
    let packets: Vec<_> = (0..200)
        .map(|i| etrain::trace::packets::Packet {
            id: i,
            app: etrain::trace::CargoAppId(1),
            arrival_s: 10.0,
            size_bytes: 1_000,
        })
        .collect();
    let report = Scenario::paper_default()
        .duration_secs(1200)
        .packets(packets)
        .bandwidth(BandwidthSource::Constant(1_000_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.5,
            k: None,
        })
        .seed(1)
        .run();
    assert_eq!(report.packets_completed + report.packets_unfinished, 200);
}

/// The live core refuses inconsistent inputs instead of corrupting state.
#[test]
fn core_rejects_bad_inputs_and_survives() {
    let mut core = ETrainCore::new(CoreConfig::default());
    let app = core.register_cargo(AppProfile::new("W", CostProfile::weibo(60.0)));

    // Unknown train, unknown app, time travel — all reported as errors.
    assert!(core
        .on_heartbeat(etrain::trace::TrainAppId(3), 1.0)
        .is_err());
    assert!(core
        .submit(
            etrain::trace::CargoAppId(9),
            TransmitRequest::upload(1),
            2.0
        )
        .is_err());
    core.submit(app, TransmitRequest::upload(1), 50.0).unwrap();
    assert!(core.submit(app, TransmitRequest::upload(1), 10.0).is_err());

    // The core still works afterwards.
    let decisions = core.tick(60.0).expect("clock still monotone");
    assert_eq!(decisions.len(), 1, "no trains: immediate release");
}

#[test]
fn enormous_single_packet_does_not_wedge_the_engine() {
    let packets = vec![etrain::trace::packets::Packet {
        id: 0,
        app: etrain::trace::CargoAppId(2),
        arrival_s: 1.0,
        size_bytes: 500_000_000, // 500 MB on a phone link
    }];
    let report = Scenario::paper_default()
        .duration_secs(600)
        .packets(packets)
        .scheduler(SchedulerKind::Baseline)
        .seed(1)
        .run();
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.packets_unfinished, 1);
    assert!(report.extra_energy_j.is_finite());
}
