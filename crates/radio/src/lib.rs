//! # etrain-radio — 3G UMTS RRC radio and tail-energy substrate
//!
//! This crate reproduces the radio model the eTrain paper measures on a
//! Samsung Galaxy S4 over a TD-SCDMA (UMTS family) network (paper Sec. II-C,
//! Fig. 4). The paper's entire evaluation derives from this model, so it is
//! the bottom-most substrate of the reproduction.
//!
//! ## The model
//!
//! The radio resource control (RRC) layer keeps the interface in one of three
//! power states:
//!
//! - **IDLE** — baseline power, no dedicated channel;
//! - **DCH** (Dedicated Channel) — high power, used while transmitting and
//!   for δ_D seconds afterwards;
//! - **FACH** (Forward Access Channel) — moderate power, held for δ_F
//!   seconds after DCH before demoting back to IDLE.
//!
//! The period after a transmission ends until the radio demotes to IDLE is
//! the **tail** (length `T_tail = δ_D + δ_F`); its energy is wasted unless a
//! subsequent transmission re-uses it. With the paper's parameters
//! (p̃_D = 700 mW, p̃_F = 450 mW, δ_D = 10 s, δ_F = 7.5 s) a full tail costs
//! 700·10 + 450·7.5 mJ ≈ 10.375 J — the paper reports ≈ 10.91 J measured.
//!
//! ## What the crate provides
//!
//! - [`RadioParams`] — validated parameter set with the paper's defaults;
//! - [`tail_energy_j`] — the closed-form `E_tail(Δ)` from the paper;
//! - [`Timeline`] — an offline state timeline built from a set of
//!   transmissions, with exact piecewise energy integration;
//! - [`PowerTrace`] — a sampled power trace (the software analogue of the
//!   Monsoon power monitor the paper captures at 0.1 s resolution);
//! - [`Radio`] — an online state machine for event-driven simulation,
//!   accounting energy incrementally.
//!
//! The analytic model and the timeline integrator are independent
//! implementations cross-checked by property tests.
//!
//! ## Example
//!
//! ```
//! use etrain_radio::{RadioParams, Timeline, Transmission, tail_energy_j};
//!
//! let params = RadioParams::galaxy_s4_3g();
//! // A lone transmission pays the full tail:
//! assert!((tail_energy_j(&params, 60.0) - params.full_tail_energy_j()).abs() < 1e-9);
//!
//! // Two transmissions 5 s apart share a tail:
//! let timeline = Timeline::from_transmissions(
//!     &params,
//!     &[Transmission::new(0.0, 0.2), Transmission::new(5.2, 0.2)],
//!     60.0,
//! );
//! assert!(timeline.extra_energy_j() < 2.0 * params.full_tail_energy_j());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery;
mod error;
mod online;
mod params;
mod power;
mod profile;
mod tail;
mod timeline;

pub use battery::Battery;
pub use error::RadioError;
pub use online::Radio;
pub use params::{RadioParams, RadioParamsBuilder};
pub use power::PowerTrace;
pub use profile::{TailPhase, TailProfile};
pub use tail::{
    analytic_extra_energy_j, merge_busy_periods, merge_busy_periods_into, tail_energy_j,
};
pub use timeline::{
    audit_segments, RrcState, StateSegment, Timeline, TimelineAuditError, TimelinePool,
    Transmission,
};
