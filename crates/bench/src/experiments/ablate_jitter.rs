//! Ablation: sensitivity to heartbeat jitter.
//!
//! The paper's measurements found heartbeat cycles deterministic
//! (Sec. II-B) and the scheduler assumes it can ride them exactly. This
//! ablation perturbs every heartbeat departure by a uniform ±jitter and
//! measures how eTrain's energy/delay degrade. Because the scheduler is
//! notified of *actual* departures (the Xposed hook fires when the
//! heartbeat really leaves), moderate jitter should barely matter — the
//! result quantifies that robustness.

use crate::ExperimentResult;
use etrain_sim::{SchedulerKind, Table};
use etrain_trace::heartbeats::TrainAppSpec;

use super::{j, paper_base, s};

/// Runs the jitter ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let jitters: &[f64] = if quick {
        &[0.0, 10.0]
    } else {
        &[0.0, 2.0, 10.0, 30.0, 60.0]
    };

    let mut table = Table::new(
        "Ablation — heartbeat jitter (Θ = 2, k = ∞)",
        &["jitter_s", "energy_j", "delay_s", "heartbeats"],
    );
    for &jitter in jitters {
        let trains: Vec<TrainAppSpec> = TrainAppSpec::paper_trio()
            .into_iter()
            .map(|spec| spec.with_jitter(jitter))
            .collect();
        let report = base
            .clone()
            .trains(trains)
            .scheduler(SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            })
            .run();
        table.push_row_strings(vec![
            format!("{jitter:.0}"),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            report.heartbeats_sent.to_string(),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "energy_at_max_jitter",
        0,
        -1,
        "energy_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_jitter_changes_little() {
        let tables = run(true).tables;
        let energies: Vec<f64> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        let spread = (energies[1] - energies[0]).abs() / energies[0];
        assert!(
            spread < 0.15,
            "10 s jitter should move energy <15 %, got {:.1}%",
            spread * 100.0
        );
    }
}
