//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/type surface used by `benches/perf.rs` with a
//! minimal wall-clock harness: each benchmark runs a small fixed number
//! of iterations and prints the mean time per iteration. There is no
//! statistical analysis — the goal is that bench targets compile, run
//! fast under `cargo test`/`cargo bench`, and print plausible numbers.

use std::time::Instant;

/// Iterations per benchmark. Kept tiny because `cargo test` also runs
/// `harness = false` bench targets.
const DEFAULT_ITERS: u64 = 10;

/// How per-iteration inputs are sized for [`Bencher::iter_batched`].
/// The shim runs every batch size identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `routine`, executed `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / u128::from(iters.max(1));
    println!("bench {id:<48} {per_iter:>12} ns/iter ({iters} iters)");
}

impl Criterion {
    /// Runs a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, DEFAULT_ITERS, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            iters: DEFAULT_ITERS,
        }
    }
}

/// A named group with its own iteration count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (mapped to iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.iters, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("shim/smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= DEFAULT_ITERS);
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut seen = Vec::new();
        group.bench_function("batched", |b| {
            b.iter_batched(
                Vec::<u8>::new,
                |v| seen.push(v.len()),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(seen.len(), 3);
    }
}
