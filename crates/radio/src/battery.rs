//! Battery accounting: joules → battery-life terms.
//!
//! The paper frames tail waste in battery terms (Sec. II-D): "Given a
//! battery capacity of 1700 mAh with voltage 3.7 V, if the battery life is
//! 10 hours, the smartphone will spend at least 6 % of its battery
//! capacity on sending heartbeats of only one app." This module provides
//! that conversion so experiment reports can speak the same language.

use serde::{Deserialize, Serialize};

/// A battery described by capacity and nominal voltage.
///
/// # Examples
///
/// ```
/// use etrain_radio::Battery;
///
/// // The paper's reference battery: 1700 mAh at 3.7 V ≈ 22.6 kJ.
/// let battery = Battery::paper_reference();
/// assert!((battery.capacity_j() - 22_644.0).abs() < 1.0);
///
/// // One WeChat-like app sends >12 heartbeats/h; over 10 h that is
/// // ≥ 120 tails ≈ 1245 J ≈ 5.5 % of the battery — the paper's "at
/// // least 6 %" claim.
/// let fraction = battery.fraction_of_capacity(120.0 * 10.375);
/// assert!(fraction > 0.05 && fraction < 0.07);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_mah: f64,
    voltage_v: f64,
}

impl Battery {
    /// Creates a battery of `capacity_mah` milliamp-hours at `voltage_v`
    /// volts.
    ///
    /// # Panics
    ///
    /// Panics if either value is not strictly positive.
    pub fn new(capacity_mah: f64, voltage_v: f64) -> Self {
        assert!(capacity_mah > 0.0, "capacity must be positive");
        assert!(voltage_v > 0.0, "voltage must be positive");
        Battery {
            capacity_mah,
            voltage_v,
        }
    }

    /// The paper's reference battery: 1700 mAh at 3.7 V (Sec. II-D).
    pub fn paper_reference() -> Self {
        Battery::new(1700.0, 3.7)
    }

    /// Rated capacity in milliamp-hours.
    pub fn capacity_mah(&self) -> f64 {
        self.capacity_mah
    }

    /// Nominal voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Total energy content in joules (`mAh · 3.6 · V`).
    pub fn capacity_j(&self) -> f64 {
        self.capacity_mah * 3.6 * self.voltage_v
    }

    /// The fraction of the battery consumed by `energy_j` joules, in
    /// `[0, ∞)` (can exceed 1 for energy beyond one charge).
    pub fn fraction_of_capacity(&self, energy_j: f64) -> f64 {
        energy_j / self.capacity_j()
    }

    /// How long `energy_j` would power the phone at the given average
    /// standby power, expressed in hours — the "hours of standby time"
    /// equivalence the paper uses for Fig. 1(a) ("roughly 10 hours of
    /// standby time").
    ///
    /// # Panics
    ///
    /// Panics if `standby_mw` is not strictly positive.
    pub fn standby_hours_equivalent(&self, energy_j: f64, standby_mw: f64) -> f64 {
        assert!(standby_mw > 0.0, "standby power must be positive");
        energy_j / (standby_mw / 1000.0) / 3600.0
    }

    /// Battery life in hours when the device draws `average_mw` on
    /// average.
    ///
    /// # Panics
    ///
    /// Panics if `average_mw` is not strictly positive.
    pub fn life_hours(&self, average_mw: f64) -> f64 {
        assert!(average_mw > 0.0, "average power must be positive");
        self.capacity_j() / (average_mw / 1000.0) / 3600.0
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::paper_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_capacity_matches_paper_arithmetic() {
        let b = Battery::paper_reference();
        // 1700 mAh · 3.6 · 3.7 V = 22 644 J.
        assert!((b.capacity_j() - 22_644.0).abs() < 1e-9);
    }

    #[test]
    fn fig1a_standby_equivalence() {
        // Paper Fig. 1(a): ~2000 J of heartbeats "corresponds to roughly
        // 10 hours of standby time". That implies a ~55 mW standby draw.
        let b = Battery::paper_reference();
        let hours = b.standby_hours_equivalent(2000.0, 55.0);
        assert!((hours - 10.1).abs() < 0.2, "hours {hours}");
    }

    #[test]
    fn heartbeat_battery_share() {
        // Sec. II-D: one app, >12 heartbeats/h, 10 h battery life → ≥ 6 %.
        let b = Battery::paper_reference();
        let heartbeat_energy = 12.0 * 10.0 * 10.91; // paper's measured tail
        assert!(b.fraction_of_capacity(heartbeat_energy) >= 0.055);
    }

    #[test]
    fn life_scales_inversely_with_power() {
        let b = Battery::paper_reference();
        assert!((b.life_hours(100.0) - 2.0 * b.life_hours(200.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0, 3.7);
    }
}
