//! The common scheduler interface driven by the simulator and by the live
//! eTrain system.

use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;

/// Error produced by scheduler operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// A packet referenced a cargo app that was never registered.
    UnknownApp {
        /// The unknown app id.
        app: CargoAppId,
    },
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::UnknownApp { app } => {
                write!(f, "packet references unregistered cargo app {app}")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// Everything a scheduler may observe at a slot boundary.
///
/// The fields deliberately mirror what each algorithm is *allowed* to know
/// in the paper's comparison:
///
/// - eTrain reads `heartbeat_departing` (from the Heartbeat Monitor) and
///   `trains_alive`, and ignores bandwidth — the paper argues channel
///   obliviousness is an advantage (Sec. IV);
/// - PerES and eTime read `predicted_bandwidth_bps` — a *noisy* estimate
///   (the simulator supplies the previous slot's average), modelling the
///   difficulty of instantaneous channel prediction;
/// - the baseline reads nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotContext {
    /// The slot's start time in seconds.
    pub now_s: f64,
    /// Whether at least one train-app heartbeat departs at this slot.
    pub heartbeat_departing: bool,
    /// The (noisy) bandwidth estimate available to prediction-based
    /// schedulers, in bits per second.
    pub predicted_bandwidth_bps: f64,
    /// Whether any train app is still alive. When false, eTrain stops
    /// deferring to avoid indefinite waiting (paper Sec. V-3).
    pub trains_alive: bool,
}

/// A transmission scheduler: decides *when* queued cargo packets are
/// released to the FIFO transmission queue `Q_TX`.
///
/// Driving contract (upheld by `etrain-sim` and `etrain-core`):
///
/// 1. [`Scheduler::on_arrival`] is called once per packet, at its arrival
///    time; the return value is any packets to transmit immediately.
/// 2. [`Scheduler::on_slot`] is called at every multiple of
///    [`Scheduler::slot_s`], with time monotonically increasing across
///    calls; the return value joins `Q_TX` in order.
/// 3. A packet is returned exactly once (schedulers own their queues).
pub trait Scheduler: std::fmt::Debug + Send {
    /// The scheduler's display name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Offers an arriving packet. Returns packets to release immediately
    /// (the baseline strategy); deferring schedulers enqueue and return
    /// nothing.
    ///
    /// # Errors
    ///
    /// Implementations return [`SchedulerError::UnknownApp`] for packets of
    /// unregistered apps.
    fn on_arrival(&mut self, packet: Packet, now_s: f64) -> Result<Vec<Packet>, SchedulerError>;

    /// Slot boundary at `ctx.now_s`: returns the packets selected for
    /// transmission in this slot.
    fn on_slot(&mut self, ctx: &SlotContext) -> Vec<Packet>;

    /// Failure feedback: `packet` was released for transmission but the
    /// transfer failed, and the retry layer has decided to try again. The
    /// scheduler re-admits it — crucially keeping the packet's *original*
    /// `arrival_s`, so its delay cost φ_u(t − t_a) keeps growing and
    /// Algorithm 1's greedy rule prioritises it correctly on re-decision.
    ///
    /// The default delegates to [`Scheduler::on_arrival`], which is correct
    /// for every built-in scheduler: each treats the re-offered packet as a
    /// queued packet with its historical arrival time.
    ///
    /// # Errors
    ///
    /// Implementations return [`SchedulerError::UnknownApp`] for packets of
    /// unregistered apps.
    fn on_tx_failure(&mut self, packet: Packet, now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        self.on_arrival(packet, now_s)
    }

    /// The slot length this scheduler operates on, in seconds (1 s for
    /// eTrain and PerES, 60 s for eTime — paper Sec. VI-A).
    fn slot_s(&self) -> f64 {
        1.0
    }

    /// Whether a slot call with `heartbeat_departing = false` and the
    /// given `trains_alive` would be a **complete no-op** right now: no
    /// packets released, no internal state changed, no observability
    /// events buffered — for *any* `now_s` and bandwidth estimate. The
    /// event kernel uses this certificate to skip inert slot boundaries
    /// in bulk; a scheduler that over-claims quiescence breaks the
    /// slot/event differential guarantee, so the default is the always
    /// safe `false` (never skip).
    ///
    /// Implementations must only consult state that slot calls could
    /// change: if `slot_quiescent` returns `true`, it must keep returning
    /// `true` (for the same `trains_alive`) until an arrival, retry, or
    /// heartbeat-flagged slot intervenes.
    fn slot_quiescent(&self, _trains_alive: bool) -> bool {
        false
    }

    /// Alarm feedback: an invariant monitor (the simulation oracle, or an
    /// external health check) observed a violation at `now_s`. Resilient
    /// schedulers demote themselves; the default ignores the alarm, which
    /// is correct for the paper's unguarded algorithms.
    fn on_oracle_violation(&mut self, _now_s: f64) {}

    /// The degradation-ladder transitions recorded so far, in time order.
    /// Non-degrading schedulers report none.
    fn health_transitions(&self) -> Vec<crate::health::HealthTransition> {
        Vec::new()
    }

    /// Drains the packets this scheduler shed under admission control
    /// (each is a terminal outcome: the packet was never, and will never
    /// be, released). Non-shedding schedulers return none.
    fn take_shed(&mut self) -> Vec<Packet> {
        Vec::new()
    }

    /// Packets released early by the force-flush-oldest shed policy
    /// (these packets *are* transmitted; the count is bookkeeping).
    fn forced_flushes(&self) -> usize {
        0
    }

    /// Selects between the cached hot decision path (`false`, the
    /// default) and a retained from-scratch reference recompute (`true`)
    /// where a scheduler keeps both. The two paths are bit-for-bit
    /// interchangeable; the reference exists as the equivalence oracle
    /// and the `hotpath_speedup` baseline. The default ignores the
    /// request, which is correct for schedulers with a single path.
    fn set_reference_decisions(&mut self, _reference: bool) {}

    /// Turns structured-event buffering on or off. While enabled, the
    /// scheduler buffers one [`etrain_obs::Event`] per observable decision
    /// for the driver to drain via [`Scheduler::take_obs_events`]. The
    /// default ignores the request, which is correct for schedulers that
    /// emit nothing.
    fn set_obs_enabled(&mut self, _enabled: bool) {}

    /// Drains the `(time_s, event)` pairs buffered since the last drain,
    /// in decision order. Drivers call this after every `on_arrival` /
    /// `on_slot` / `on_tx_failure` so events land in the journal in
    /// causal order. Non-instrumented schedulers return none.
    fn take_obs_events(&mut self) -> Vec<(f64, etrain_obs::Event)> {
        Vec::new()
    }

    /// Number of packets currently deferred.
    fn pending(&self) -> usize;

    /// Total bytes currently deferred.
    fn pending_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let err = SchedulerError::UnknownApp { app: CargoAppId(3) };
        assert_eq!(
            err.to_string(),
            "packet references unregistered cargo app cargo#3"
        );
    }
}
