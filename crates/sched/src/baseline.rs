//! The paper's default baseline: "no energy-saving scheduling intelligence
//! is imposed and all data is scheduled for transmission immediately after
//! arrival" (Sec. VI-A).

use etrain_trace::packets::Packet;

use crate::api::{Scheduler, SchedulerError, SlotContext};
use crate::queue::{AppProfile, WaitingQueues};

/// Transmit-on-arrival scheduler.
///
/// Packets are released from [`BaselineScheduler::on_arrival`] directly, so
/// they incur zero scheduling delay; [`Scheduler::on_slot`] never returns
/// anything. App profiles are still validated so misconfigured workloads
/// fail identically across schedulers.
#[derive(Debug)]
pub struct BaselineScheduler {
    queues: WaitingQueues,
}

impl BaselineScheduler {
    /// Creates a baseline scheduler for the registered app profiles.
    pub fn new(profiles: Vec<AppProfile>) -> Self {
        BaselineScheduler {
            queues: WaitingQueues::new(profiles),
        }
    }
}

impl Scheduler for BaselineScheduler {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn on_arrival(&mut self, packet: Packet, _now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        // Validate the app id by bouncing through the queue, then release.
        self.queues.push(packet)?;
        Ok(self.queues.drain_all())
    }

    fn on_slot(&mut self, _ctx: &SlotContext) -> Vec<Packet> {
        Vec::new()
    }

    fn slot_quiescent(&self, _trains_alive: bool) -> bool {
        // Slots never release or mutate anything here: all scheduling
        // happens on arrival.
        true
    }

    fn pending(&self) -> usize {
        0
    }

    fn pending_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::CargoAppId;

    #[test]
    fn releases_immediately() {
        let mut s = BaselineScheduler::new(AppProfile::paper_trio(30.0));
        let p = Packet {
            id: 0,
            app: CargoAppId(1),
            arrival_s: 3.0,
            size_bytes: 100,
        };
        let released = s.on_arrival(p, 3.0).unwrap();
        assert_eq!(released, vec![p]);
        assert_eq!(s.pending(), 0);
        assert!(s
            .on_slot(&SlotContext {
                now_s: 4.0,
                heartbeat_departing: true,
                predicted_bandwidth_bps: 1e6,
                trains_alive: true,
            })
            .is_empty());
    }

    #[test]
    fn rejects_unknown_app() {
        let mut s = BaselineScheduler::new(AppProfile::paper_trio(30.0));
        let p = Packet {
            id: 0,
            app: CargoAppId(5),
            arrival_s: 0.0,
            size_bytes: 1,
        };
        assert!(s.on_arrival(p, 0.0).is_err());
    }
}
