//! The replayable service state: deterministic core + dedup table +
//! health rung, all a pure function of the journaled command stream.
//!
//! Everything the daemon must survive a crash with lives here, and every
//! mutation enters through [`ServiceState::apply`] with a serializable
//! [`SvcCommand`]. Recovery therefore *is* replay: feed the journal back
//! through `apply` and the pending queues, the idempotency table, and the
//! health ladder come back bit-for-bit — verified by
//! [`ServiceState::fingerprint`] against the last clean checkpoint.

use std::collections::HashMap;

use etrain_core::{
    Admission, CommandOutcome, CoreCommand, CoreConfig, CoreStats, ETrainCore, RequestId,
    TransmitDecision, TransmitRequest, TxResult,
};
use etrain_sched::{audit_transitions, HealthState, HealthTransition, TransitionCause};
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

use crate::error::SvcError;

/// One journaled mutation of the service.
///
/// Most traffic wraps a [`CoreCommand`] unchanged; the service adds
/// exactly one verb of its own — idempotent submission keyed by a
/// client-supplied id, so a client that crashed between sending and
/// hearing the answer can safely resend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SvcCommand {
    /// A core mutation, applied verbatim.
    Core(CoreCommand),
    /// An idempotent submission. The first occurrence of `client_id`
    /// submits and caches the admission outcome; the service never
    /// journals a duplicate (the dedup check happens *before* the
    /// write-ahead append), so on replay each `client_id` appears at
    /// most once.
    SubmitIdem {
        /// Client-chosen request key, unique per logical submission.
        client_id: String,
        /// The submitting cargo app.
        app: CargoAppId,
        /// The request metadata.
        request: TransmitRequest,
        /// Submission time in seconds.
        now_s: f64,
    },
}

impl SvcCommand {
    /// Stable machine-readable name of the command, for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            SvcCommand::Core(c) => c.kind(),
            SvcCommand::SubmitIdem { .. } => "submit_idem",
        }
    }
}

/// The cached outcome of an idempotent submission — a serializable
/// mirror of [`Admission`], so a resend can be answered from the table
/// without re-entering the core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionSummary {
    /// Admitted with this id.
    Admitted {
        /// The issued request id.
        id: RequestId,
    },
    /// Admitted; an earlier request was evicted to make room.
    AdmittedWithEviction {
        /// The issued request id.
        id: RequestId,
        /// The evicted request.
        evicted: RequestId,
    },
    /// Admitted; the oldest queued request was force-flushed.
    AdmittedWithFlush {
        /// The issued request id.
        id: RequestId,
        /// The early-release decision for the flushed request.
        flushed: TransmitDecision,
    },
    /// The shed policy rejected the submission outright.
    Rejected,
}

impl AdmissionSummary {
    fn from_admission(admission: &Admission) -> Self {
        match admission {
            Admission::Admitted { id } => AdmissionSummary::Admitted { id: *id },
            Admission::AdmittedWithEviction { id, evicted } => {
                AdmissionSummary::AdmittedWithEviction {
                    id: *id,
                    evicted: *evicted,
                }
            }
            Admission::AdmittedWithFlush { id, flushed } => AdmissionSummary::AdmittedWithFlush {
                id: *id,
                flushed: *flushed,
            },
            Admission::Rejected => AdmissionSummary::Rejected,
        }
    }

    /// The admitted request id, if any.
    pub fn id(&self) -> Option<RequestId> {
        match self {
            AdmissionSummary::Admitted { id }
            | AdmissionSummary::AdmittedWithEviction { id, .. }
            | AdmissionSummary::AdmittedWithFlush { id, .. } => Some(*id),
            AdmissionSummary::Rejected => None,
        }
    }
}

/// What applying one [`SvcCommand`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SvcOutcome {
    /// A wrapped core command's outcome.
    Core(CommandOutcome),
    /// A first-time idempotent submission.
    Submitted {
        /// The admission outcome, as cached in the dedup table.
        summary: AdmissionSummary,
    },
    /// A duplicate idempotent submission, answered from the table with
    /// no state change and no journal append.
    Duplicate {
        /// The originally cached outcome.
        summary: AdmissionSummary,
    },
}

/// Tuning of the service-level health rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvcHealthConfig {
    /// Consecutive failed transmission reports that demote one rung.
    pub failure_threshold: usize,
    /// Consecutive heartbeats without an intervening failure that
    /// promote one rung.
    pub clean_heartbeats: usize,
}

impl Default for SvcHealthConfig {
    fn default() -> Self {
        SvcHealthConfig {
            failure_threshold: 3,
            clean_heartbeats: 5,
        }
    }
}

/// The service's replayable state.
///
/// The health rung here deliberately mirrors `GuardedScheduler`'s ladder
/// (same states, same causes, same audit) but is driven purely by the
/// command stream — failed `ReportResult`s demote, clean `Heartbeat`s
/// promote — so that a recovered daemon lands on the same rung as the
/// crashed one without any out-of-band signal.
#[derive(Debug)]
pub struct ServiceState {
    core: ETrainCore,
    health_cfg: SvcHealthConfig,
    dedup: HashMap<String, AdmissionSummary>,
    health: HealthState,
    transitions: Vec<HealthTransition>,
    failure_streak: usize,
    clean_streak: usize,
    applied: u64,
}

impl ServiceState {
    /// A fresh state over a fresh core.
    pub fn new(config: CoreConfig, health: SvcHealthConfig) -> Self {
        ServiceState {
            core: ETrainCore::new(config),
            health_cfg: health,
            dedup: HashMap::new(),
            health: HealthState::Healthy,
            transitions: Vec::new(),
            failure_streak: 0,
            clean_streak: 0,
            applied: 0,
        }
    }

    /// Applies one command. Deterministic: the same command sequence
    /// from the same initial state always produces the same final state
    /// — including erroring commands, which mutate (at most the core
    /// clock) and error identically on the live path and on replay.
    ///
    /// # Errors
    ///
    /// Propagates core rejections ([`SvcError::Core`]).
    pub fn apply(&mut self, command: &SvcCommand) -> Result<SvcOutcome, SvcError> {
        let outcome = match command {
            SvcCommand::Core(core_cmd) => {
                let outcome = self.core.apply(core_cmd)?;
                self.update_health(core_cmd, &outcome);
                SvcOutcome::Core(outcome)
            }
            SvcCommand::SubmitIdem {
                client_id,
                app,
                request,
                now_s,
            } => {
                if let Some(cached) = self.dedup.get(client_id) {
                    // Replay safety: the journal never holds a duplicate,
                    // but apply() stays total over arbitrary streams.
                    return Ok(SvcOutcome::Duplicate { summary: *cached });
                }
                let admission = self.core.submit(*app, *request, *now_s)?;
                let summary = AdmissionSummary::from_admission(&admission);
                self.dedup.insert(client_id.clone(), summary);
                SvcOutcome::Submitted { summary }
            }
        };
        self.applied += 1;
        Ok(outcome)
    }

    /// Answers an idempotent submission from the dedup table, if this
    /// `client_id` was already applied. The durable service consults
    /// this *before* journaling, so duplicates cost no append.
    pub fn cached_submission(&self, client_id: &str) -> Option<AdmissionSummary> {
        self.dedup.get(client_id).copied()
    }

    fn update_health(&mut self, command: &CoreCommand, _outcome: &CommandOutcome) {
        match command {
            CoreCommand::ReportResult {
                result: TxResult::Failed,
                now_s,
                ..
            } => {
                self.clean_streak = 0;
                self.failure_streak += 1;
                if self.failure_streak >= self.health_cfg.failure_threshold {
                    let failures = self.failure_streak;
                    self.failure_streak = 0;
                    let next = match self.health {
                        HealthState::Healthy => Some(HealthState::Degraded),
                        HealthState::Degraded => Some(HealthState::Fallback),
                        HealthState::Fallback => None,
                    };
                    if let Some(next) = next {
                        self.transition(
                            *now_s,
                            next,
                            TransitionCause::RepeatedTxFailures { failures },
                        );
                    }
                }
            }
            CoreCommand::ReportResult {
                result: TxResult::Delivered,
                ..
            } => {
                self.failure_streak = 0;
            }
            CoreCommand::Heartbeat { now_s, .. } if self.health != HealthState::Healthy => {
                self.clean_streak += 1;
                if self.clean_streak >= self.health_cfg.clean_heartbeats {
                    let streak = self.clean_streak;
                    self.clean_streak = 0;
                    let next = match self.health {
                        HealthState::Fallback => HealthState::Degraded,
                        HealthState::Degraded | HealthState::Healthy => HealthState::Healthy,
                    };
                    self.transition(
                        *now_s,
                        next,
                        TransitionCause::Recovered {
                            clean_heartbeats: streak,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn transition(&mut self, at_s: f64, to: HealthState, cause: TransitionCause) {
        if to == self.health {
            return;
        }
        self.transitions.push(HealthTransition {
            at_s,
            from: self.health,
            to,
            cause,
        });
        self.health = to;
    }

    /// The current health rung.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// The recorded rung transitions, in time order. Always passes
    /// [`audit_transitions`]; [`ServiceState::audit`] re-checks.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Runs the structural ladder audit over the recorded transitions.
    pub fn audit(&self) -> Vec<String> {
        audit_transitions(&self.transitions)
    }

    /// Commands applied since construction (erroring commands excluded).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The underlying core's cumulative statistics.
    pub fn stats(&self) -> CoreStats {
        self.core.stats()
    }

    /// Direct read access to the deterministic core.
    pub fn core(&self) -> &ETrainCore {
        &self.core
    }

    /// Number of distinct idempotency keys recorded.
    pub fn dedup_len(&self) -> usize {
        self.dedup.len()
    }

    /// A deterministic FNV-1a fingerprint over the *entire* recoverable
    /// state: the core fingerprint, the dedup table (sorted by key), the
    /// health rung with both streak counters, every recorded transition,
    /// and the applied-command count. Two states that applied the same
    /// command stream fingerprint identically; this is the value
    /// checkpoints record and crash recovery verifies.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        mix(&self.core.fingerprint().to_le_bytes());
        let mut keys: Vec<&String> = self.dedup.keys().collect();
        keys.sort();
        for key in keys {
            mix(key.as_bytes());
            let summary = &self.dedup[key];
            match serde_json::to_string(summary) {
                Ok(json) => mix(json.as_bytes()),
                Err(_) => mix(b"<unserializable>"),
            }
        }
        mix(self.health.to_string().as_bytes());
        mix(&(self.failure_streak as u64).to_le_bytes());
        mix(&(self.clean_streak as u64).to_le_bytes());
        for t in &self.transitions {
            mix(t.to_string().as_bytes());
        }
        mix(&self.applied.to_le_bytes());
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_core::TransmitRequest;
    use etrain_sched::{AppProfile, CostProfile};
    use etrain_trace::TrainAppId;

    fn fast_config() -> CoreConfig {
        CoreConfig {
            theta: 5.0,
            ..CoreConfig::default()
        }
    }

    fn state() -> ServiceState {
        ServiceState::new(fast_config(), SvcHealthConfig::default())
    }

    fn setup(s: &mut ServiceState) {
        s.apply(&SvcCommand::Core(CoreCommand::RegisterTrain {
            name: "WeChat".into(),
        }))
        .unwrap();
        s.apply(&SvcCommand::Core(CoreCommand::RegisterCargo {
            profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
        }))
        .unwrap();
    }

    fn submit(id: &str, now_s: f64) -> SvcCommand {
        SvcCommand::SubmitIdem {
            client_id: id.into(),
            app: CargoAppId(0),
            request: TransmitRequest::upload(4_000),
            now_s,
        }
    }

    #[test]
    fn idempotent_submit_caches_and_replays_from_table() {
        let mut s = state();
        setup(&mut s);
        let first = s.apply(&submit("c-1", 1.0)).unwrap();
        let SvcOutcome::Submitted { summary } = first else {
            panic!("expected first-time submission, got {first:?}");
        };
        let id = summary.id().unwrap();
        let before = s.fingerprint();
        let dup = s.apply(&submit("c-1", 2.0)).unwrap();
        let SvcOutcome::Duplicate { summary: cached } = dup else {
            panic!("expected duplicate, got {dup:?}");
        };
        assert_eq!(cached.id(), Some(id));
        assert_eq!(s.fingerprint(), before, "a duplicate must not change state");
        assert_eq!(s.dedup_len(), 1);
    }

    #[test]
    fn failure_streak_walks_the_ladder_and_heartbeats_recover_it() {
        let mut s = state();
        setup(&mut s);
        // Admit and decide enough requests to have things to fail.
        let mut now = 0.0;
        let mut req_ids = Vec::new();
        for i in 0..6 {
            now += 1.0;
            let out = s.apply(&submit(&format!("c-{i}"), now)).unwrap();
            let SvcOutcome::Submitted { summary } = out else {
                panic!()
            };
            req_ids.push(summary.id().unwrap());
        }
        now += 1.0;
        s.apply(&SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(0),
            now_s: now,
        }))
        .unwrap();
        // Three consecutive failures demote to Degraded, three more to
        // Fallback.
        for id in req_ids.iter().take(6) {
            now += 1.0;
            let _ = s.apply(&SvcCommand::Core(CoreCommand::ReportResult {
                request: *id,
                result: TxResult::Failed,
                now_s: now,
            }));
        }
        assert_eq!(s.health(), HealthState::Fallback);
        // Ten clean heartbeats climb back to Healthy.
        for _ in 0..10 {
            now += 1.0;
            s.apply(&SvcCommand::Core(CoreCommand::Heartbeat {
                train: TrainAppId(0),
                now_s: now,
            }))
            .unwrap();
        }
        assert_eq!(s.health(), HealthState::Healthy);
        assert_eq!(s.transitions().len(), 4);
        assert!(s.audit().is_empty(), "{:?}", s.audit());
    }

    #[test]
    fn replay_reconstructs_fingerprint_bit_for_bit() {
        let mut live = state();
        setup(&mut live);
        let mut log = vec![
            SvcCommand::Core(CoreCommand::RegisterTrain {
                name: "WeChat".into(),
            }),
            SvcCommand::Core(CoreCommand::RegisterCargo {
                profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
            }),
        ];
        for (i, now) in [(0, 1.0), (1, 2.0), (2, 3.0)] {
            let cmd = submit(&format!("k-{i}"), now);
            live.apply(&cmd).unwrap();
            log.push(cmd);
        }
        let hb = SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(0),
            now_s: 10.0,
        });
        live.apply(&hb).unwrap();
        log.push(hb);

        let mut replayed = state();
        for cmd in &log {
            replayed.apply(cmd).unwrap();
        }
        assert_eq!(replayed.fingerprint(), live.fingerprint());
        assert_eq!(replayed.applied(), live.applied());
        assert_eq!(replayed.stats(), live.stats());
    }

    #[test]
    fn erroring_commands_replay_deterministically() {
        // An unknown-train heartbeat errors but still advances the core
        // clock (validation happens after advance_clock) — what matters
        // for recovery is that replay mutates and errors *identically*.
        let mut live = state();
        setup(&mut live);
        let bad = SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(9),
            now_s: 1.0,
        });
        assert!(live.apply(&bad).is_err());

        let mut replayed = state();
        setup(&mut replayed);
        assert!(replayed.apply(&bad).is_err());
        assert_eq!(replayed.fingerprint(), live.fingerprint());

        // A time-went-backwards rejection fails before any mutation, so
        // it really does leave the state untouched.
        let before = live.fingerprint();
        let stale = SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(0),
            now_s: -1.0,
        });
        assert!(live.apply(&stale).is_err());
        assert_eq!(live.fingerprint(), before);
    }

    #[test]
    fn commands_round_trip_through_json() {
        let cmds = [
            submit("abc", 3.5),
            SvcCommand::Core(CoreCommand::Tick { now_s: 9.0 }),
        ];
        for cmd in &cmds {
            let json = serde_json::to_string(cmd).unwrap();
            let back: SvcCommand = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, cmd, "{json}");
        }
        assert_eq!(cmds[0].kind(), "submit_idem");
        assert_eq!(cmds[1].kind(), "tick");
    }
}
