//! The durable service: write-ahead journal in front of the replayable
//! state.
//!
//! Ordering discipline (the whole point of the crate):
//!
//! 1. **Dedup check** — an idempotent submission whose `client_id` is
//!    already in the table is answered from it, with no append and no
//!    state change.
//! 2. **Append** — the command is framed, checksummed, and (by default)
//!    fsynced *before* it takes effect.
//! 3. **Apply** — the command mutates the [`ServiceState`].
//!
//! A crash between 2 and 3 is harmless: replay applies the journaled
//! command, so the recovered daemon is *ahead* of what the client heard,
//! never behind — and the idempotent submit path lets the client resend
//! safely to find out what happened. A crash *during* 2 leaves a torn
//! tail that recovery truncates; the command never happened, matching
//! the client's timeout.

use std::path::PathBuf;

use etrain_core::CoreConfig;
use etrain_trace::CargoAppId;

use crate::error::SvcError;
use crate::state::{ServiceState, SvcCommand, SvcHealthConfig, SvcOutcome};
use crate::wal::{
    read_checkpoint, recover, write_checkpoint, Append, Checkpoint, Wal, WalConfig,
    WalRecoveryReport,
};

/// What recovery found, repaired, and verified when opening the service.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySummary {
    /// The WAL scan-and-repair report.
    pub wal: WalRecoveryReport,
    /// Journal records replayed into the state (including ones that
    /// deterministically errored and therefore changed nothing).
    pub replayed: u64,
    /// Replayed commands that errored (deterministically, exactly as
    /// they did pre-crash).
    pub replay_errors: u64,
    /// Records covered by the checkpoint that was verified, if any.
    pub checkpoint_verified: Option<u64>,
    /// The state fingerprint after full replay.
    pub fingerprint: u64,
}

/// [`ServiceState`] behind a write-ahead log.
#[derive(Debug)]
pub struct DurableService {
    wal: Wal,
    wal_dir: PathBuf,
    state: ServiceState,
}

impl DurableService {
    /// Opens (or creates) the service at `wal.dir`: scans and repairs
    /// the journal, replays it into a fresh state, verifies the replay
    /// against the last clean checkpoint, and resumes appending.
    ///
    /// # Errors
    ///
    /// I/O failures, an undecodable verified record, or a checkpoint
    /// whose fingerprint the replay contradicts
    /// ([`SvcError::CheckpointMismatch`] /
    /// [`SvcError::CheckpointAhead`]).
    pub fn open(
        wal: WalConfig,
        core: CoreConfig,
        health: SvcHealthConfig,
    ) -> Result<(Self, RecoverySummary), SvcError> {
        std::fs::create_dir_all(&wal.dir)?;
        let recovery = recover(&wal.dir)?;
        let checkpoint = read_checkpoint(&wal.dir);
        let mut state = ServiceState::new(core, health);
        let mut replay_errors = 0u64;
        let mut checkpoint_verified = None;
        let total = recovery.commands.len() as u64;
        if let Some(ckpt) = checkpoint {
            if ckpt.records > total {
                return Err(SvcError::CheckpointAhead {
                    records: ckpt.records,
                    replayed: total,
                });
            }
        }
        for (i, command) in recovery.commands.iter().enumerate() {
            if state.apply(command).is_err() {
                replay_errors += 1;
            }
            let replayed = i as u64 + 1;
            if let Some(ckpt) = checkpoint {
                if ckpt.records == replayed {
                    let actual = state.fingerprint();
                    if actual != ckpt.fingerprint {
                        return Err(SvcError::CheckpointMismatch {
                            records: ckpt.records,
                            expected: ckpt.fingerprint,
                            actual,
                        });
                    }
                    checkpoint_verified = Some(ckpt.records);
                }
            }
        }
        // A checkpoint over zero records verifies against the fresh state.
        if let Some(ckpt) = checkpoint {
            if ckpt.records == 0 {
                let actual = state.fingerprint();
                if actual != ckpt.fingerprint {
                    return Err(SvcError::CheckpointMismatch {
                        records: 0,
                        expected: ckpt.fingerprint,
                        actual,
                    });
                }
                checkpoint_verified = Some(0);
            }
        }
        let summary = RecoverySummary {
            wal: recovery.report.clone(),
            replayed: total,
            replay_errors,
            checkpoint_verified,
            fingerprint: state.fingerprint(),
        };
        let wal_dir = wal.dir.clone();
        let wal = Wal::open(wal, &recovery)?;
        Ok((
            DurableService {
                wal,
                wal_dir,
                state,
            },
            summary,
        ))
    }

    /// Journals, then applies, one command (the write-ahead discipline
    /// described at module level). Idempotent submissions short-circuit
    /// on the dedup table without touching the journal.
    ///
    /// # Errors
    ///
    /// [`SvcError::FaultInjected`] when the armed fault hook fired (the
    /// state was *not* mutated; the caller must crash), I/O failures,
    /// and deterministic core rejections (which *are* journaled — replay
    /// repeats them identically).
    pub fn apply(&mut self, command: SvcCommand) -> Result<SvcOutcome, SvcError> {
        if let SvcCommand::SubmitIdem { client_id, .. } = &command {
            if let Some(summary) = self.state.cached_submission(client_id) {
                return Ok(SvcOutcome::Duplicate { summary });
            }
        }
        match self.wal.append(&command)? {
            Append::Ok => {}
            Append::FaultInjected => {
                return Err(SvcError::FaultInjected {
                    at_record: self.wal.records(),
                })
            }
        }
        self.state.apply(&command)
    }

    /// Convenience wrapper for the idempotent submit verb.
    ///
    /// # Errors
    ///
    /// As [`DurableService::apply`].
    pub fn submit_idem(
        &mut self,
        client_id: impl Into<String>,
        app: CargoAppId,
        request: etrain_core::TransmitRequest,
        now_s: f64,
    ) -> Result<SvcOutcome, SvcError> {
        self.apply(SvcCommand::SubmitIdem {
            client_id: client_id.into(),
            app,
            request,
            now_s,
        })
    }

    /// Writes a clean checkpoint covering everything journaled so far:
    /// `(records, fingerprint)` atomically replacing the previous one.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, SvcError> {
        self.wal.sync()?;
        let checkpoint = Checkpoint {
            records: self.wal.records(),
            fingerprint: self.state.fingerprint(),
        };
        write_checkpoint(&self.wal_dir, checkpoint)?;
        Ok(checkpoint)
    }

    /// The replayable state (read-only; mutations go through
    /// [`DurableService::apply`]).
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Journal records durably appended over the service's lifetime.
    pub fn records(&self) -> u64 {
        self.wal.records()
    }

    /// The state fingerprint (see [`ServiceState::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.state.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FaultKind, WalFault};
    use etrain_core::{CoreCommand, TransmitRequest};
    use etrain_sched::{AppProfile, CostProfile};
    use etrain_trace::TrainAppId;
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("etrain-svc-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_core() -> CoreConfig {
        CoreConfig {
            theta: 5.0,
            ..CoreConfig::default()
        }
    }

    fn open(dir: &Path) -> (DurableService, RecoverySummary) {
        let mut cfg = WalConfig::new(dir);
        cfg.fsync = false; // tests don't need real durability
        DurableService::open(cfg, fast_core(), SvcHealthConfig::default()).unwrap()
    }

    fn register(svc: &mut DurableService) {
        svc.apply(SvcCommand::Core(CoreCommand::RegisterTrain {
            name: "WeChat".into(),
        }))
        .unwrap();
        svc.apply(SvcCommand::Core(CoreCommand::RegisterCargo {
            profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
        }))
        .unwrap();
    }

    #[test]
    fn crash_and_recover_is_bit_for_bit() {
        let dir = tmp_dir("recover");
        let (mut svc, summary) = open(&dir);
        assert_eq!(summary.replayed, 0);
        register(&mut svc);
        svc.submit_idem("c-1", CargoAppId(0), TransmitRequest::upload(2_000), 1.0)
            .unwrap();
        svc.apply(SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(0),
            now_s: 5.0,
        }))
        .unwrap();
        let live_fp = svc.fingerprint();
        let live_records = svc.records();
        drop(svc); // SIGKILL stand-in

        let (recovered, summary) = open(&dir);
        assert_eq!(summary.replayed, live_records);
        assert_eq!(summary.replay_errors, 0);
        assert_eq!(recovered.fingerprint(), live_fp);
        assert_eq!(summary.fingerprint, live_fp);
    }

    #[test]
    fn checkpoint_is_verified_on_recovery() {
        let dir = tmp_dir("ckpt");
        let (mut svc, _) = open(&dir);
        register(&mut svc);
        let ckpt = svc.checkpoint().unwrap();
        svc.apply(SvcCommand::Core(CoreCommand::Tick { now_s: 1.0 }))
            .unwrap();
        drop(svc);
        let (_, summary) = open(&dir);
        assert_eq!(summary.checkpoint_verified, Some(ckpt.records));
        assert_eq!(summary.replayed, ckpt.records + 1);
    }

    #[test]
    fn corrupted_history_fails_checkpoint_verification() {
        let dir = tmp_dir("ckptbad");
        let (mut svc, _) = open(&dir);
        register(&mut svc);
        svc.checkpoint().unwrap();
        drop(svc);
        // Forge a checkpoint claiming a different past.
        write_checkpoint(
            &dir,
            Checkpoint {
                records: 2,
                fingerprint: 0x1234,
            },
        )
        .unwrap();
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = false;
        let err = DurableService::open(cfg, fast_core(), SvcHealthConfig::default()).unwrap_err();
        assert!(matches!(err, SvcError::CheckpointMismatch { .. }), "{err}");
    }

    #[test]
    fn checkpoint_ahead_of_journal_is_rejected() {
        let dir = tmp_dir("ckptahead");
        let (mut svc, _) = open(&dir);
        register(&mut svc);
        drop(svc);
        write_checkpoint(
            &dir,
            Checkpoint {
                records: 99,
                fingerprint: 0,
            },
        )
        .unwrap();
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = false;
        let err = DurableService::open(cfg, fast_core(), SvcHealthConfig::default()).unwrap_err();
        assert!(matches!(err, SvcError::CheckpointAhead { .. }), "{err}");
    }

    #[test]
    fn duplicate_submit_survives_crash_without_double_apply() {
        let dir = tmp_dir("dup");
        let (mut svc, _) = open(&dir);
        register(&mut svc);
        let first = svc
            .submit_idem("key", CargoAppId(0), TransmitRequest::upload(1_000), 1.0)
            .unwrap();
        let SvcOutcome::Submitted { summary } = first else {
            panic!("{first:?}")
        };
        let id = summary.id().unwrap();
        drop(svc);
        // The client never heard the answer; after restart it resends.
        let (mut svc, _) = open(&dir);
        let dup = svc
            .submit_idem("key", CargoAppId(0), TransmitRequest::upload(1_000), 2.0)
            .unwrap();
        let SvcOutcome::Duplicate { summary } = dup else {
            panic!("resend after recovery must hit the dedup table: {dup:?}")
        };
        assert_eq!(summary.id(), Some(id));
        assert_eq!(svc.state().stats().submitted, 1, "no double apply");
        // And the duplicate wrote nothing: a third open replays the same
        // record count.
        let records = svc.records();
        drop(svc);
        let (_, summary) = open(&dir);
        assert_eq!(summary.replayed, records);
    }

    #[test]
    fn fault_injection_crashes_before_apply_and_recovery_truncates() {
        let dir = tmp_dir("fault");
        let mut cfg = WalConfig::new(&dir);
        cfg.fsync = false;
        cfg.fault = Some(WalFault {
            at_record: 2,
            kind: FaultKind::Torn,
        });
        let (mut svc, _) =
            DurableService::open(cfg, fast_core(), SvcHealthConfig::default()).unwrap();
        register(&mut svc);
        let fp_before = svc.fingerprint();
        let err = svc
            .apply(SvcCommand::Core(CoreCommand::Tick { now_s: 1.0 }))
            .unwrap_err();
        assert!(matches!(err, SvcError::FaultInjected { .. }), "{err}");
        assert_eq!(svc.fingerprint(), fp_before, "faulted append never applies");
        drop(svc); // crash
        let (recovered, summary) = open(&dir);
        assert_eq!(summary.replayed, 2, "only the clean prefix replays");
        assert!(summary.wal.truncated_bytes > 0);
        assert_eq!(recovered.fingerprint(), fp_before);
    }

    #[test]
    fn deterministic_errors_replay_identically() {
        let dir = tmp_dir("errs");
        let (mut svc, _) = open(&dir);
        register(&mut svc);
        // Unknown train: journaled, rejected, state unchanged.
        let err = svc.apply(SvcCommand::Core(CoreCommand::Heartbeat {
            train: TrainAppId(7),
            now_s: 1.0,
        }));
        assert!(err.is_err());
        let fp = svc.fingerprint();
        drop(svc);
        let (recovered, summary) = open(&dir);
        assert_eq!(summary.replay_errors, 1);
        assert_eq!(recovered.fingerprint(), fp);
    }
}
