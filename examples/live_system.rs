//! The live eTrain system (paper Sec. V), time-scaled so a full hour of
//! heartbeat cycles runs in about a second of wall-clock time:
//!
//! - three train apps report heartbeats on their measured cycles (the role
//!   of the paper's Xposed hook);
//! - a Mail client and a Weibo client register profiles, submit requests
//!   and receive transmission decisions over the broadcast bus.
//!
//! ```text
//! cargo run --release --example live_system
//! ```

use std::time::Duration;

use etrain::core::{CoreConfig, ETrainSystem, SystemConfig, TransmitRequest};
use etrain::sched::{AppProfile, CostProfile};

fn main() {
    let config = SystemConfig {
        core: CoreConfig {
            theta: 5.0, // defer aggressively; trains release everything
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
            ..CoreConfig::default()
        },
        time_scale: 3600.0, // one simulated hour per real second
    };
    let system = ETrainSystem::start(config);

    let qq = system.train_handle("QQ");
    let wechat = system.train_handle("WeChat");
    let mail = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
    let weibo = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));

    println!("=== live eTrain system (time scale 3600x) ===\n");

    // The apps generate some traffic, then heartbeats depart.
    let mail_req = mail
        .submit(TransmitRequest::upload(5_000))
        .expect("system running")
        .id()
        .expect("unbounded admission admits");
    let weibo_req = weibo
        .submit(TransmitRequest::upload(2_000))
        .expect("system running")
        .id()
        .expect("unbounded admission admits");
    println!(
        "submitted {mail_req} (5 KB mail) and {weibo_req} (2 KB weibo post) at t={:.1}s",
        system.now_s()
    );

    std::thread::sleep(Duration::from_millis(50)); // ~3 simulated minutes
    qq.heartbeat().expect("system running");
    println!("QQ heartbeat departed at t={:.1}s", system.now_s());

    for client in [&mail, &weibo] {
        match client.next_decision(Duration::from_secs(2)) {
            Some(decision) => println!(
                "  {} -> transmit {} ({} B) after {:.1}s, piggybacked on {:?}",
                match client.id().index() {
                    0 => "Mail ",
                    _ => "Weibo",
                },
                decision.request,
                decision.size_bytes,
                decision.delay_s(),
                decision.piggybacked_on,
            ),
            None => println!("  no decision delivered (unexpected)"),
        }
    }

    // A second round riding WeChat's heartbeat.
    let late = weibo
        .submit(TransmitRequest::upload(1_200))
        .expect("system running")
        .id()
        .expect("unbounded admission admits");
    std::thread::sleep(Duration::from_millis(30));
    wechat.heartbeat().expect("system running");
    if let Some(decision) = weibo.next_decision(Duration::from_secs(2)) {
        println!(
            "late post {late} rode {:?} after {:.1}s",
            decision.piggybacked_on,
            decision.delay_s()
        );
    }

    let report = system.shutdown();
    println!(
        "\nsystem shut down cleanly ({} in-flight decisions drained)",
        report.drained.len()
    );
}
