//! Request and decision types exchanged between cargo apps and eTrain.

use etrain_trace::{CargoAppId, TrainAppId};
use serde::{Deserialize, Serialize};

/// Unique identifier of a submitted transmit request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Transfer direction of a request. Downloads cover the paper's prefetching
/// use case ("when a cargo app ... wants to download some data (mainly for
/// prefetching purpose)", Sec. V-4); both directions wake the radio, so the
/// scheduler treats them identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Send data to a server.
    Upload,
    /// Fetch/prefetch data from a server.
    Download,
}

/// The meta-data a cargo app submits with a transmission request
/// (paper Sec. V-4: "contains meta-data about the transmission, e.g., size
/// of the data packet and its deadline for delivery").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmitRequest {
    /// Payload size in bytes.
    pub size_bytes: u64,
    /// Transfer direction.
    pub direction: Direction,
    /// Optional per-request deadline override in seconds (falls back to
    /// the app profile's deadline when `None`).
    pub deadline_s: Option<f64>,
}

impl TransmitRequest {
    /// Creates an upload request of `size_bytes` with no deadline override.
    pub fn upload(size_bytes: u64) -> Self {
        TransmitRequest {
            size_bytes,
            direction: Direction::Upload,
            deadline_s: None,
        }
    }

    /// Creates a download/prefetch request of `size_bytes`.
    pub fn download(size_bytes: u64) -> Self {
        TransmitRequest {
            size_bytes,
            direction: Direction::Download,
            deadline_s: None,
        }
    }

    /// Sets a per-request deadline, returning the modified request.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }
}

/// A transmission decision broadcast by the scheduler to cargo apps
/// ("eTrain also delivers the transmission decisions (about when and which
/// packet should be transmitted) ... using the broadcast module", Sec. V-4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmitDecision {
    /// The request to transmit now.
    pub request: RequestId,
    /// The cargo app that owns the request.
    pub app: CargoAppId,
    /// Payload size in bytes (echoed so the transport layer needs no
    /// lookup).
    pub size_bytes: u64,
    /// When the decision was made, in seconds since system start.
    pub decided_at_s: f64,
    /// When the request was submitted, in seconds since system start.
    pub submitted_at_s: f64,
    /// The train whose heartbeat this decision piggybacks on, if the
    /// decision was made at a heartbeat.
    pub piggybacked_on: Option<TrainAppId>,
}

impl TransmitDecision {
    /// The request's scheduling delay: decision time − submission time.
    pub fn delay_s(&self) -> f64 {
        self.decided_at_s - self.submitted_at_s
    }
}

/// Outcome of submitting a transmission request under bounded admission
/// (see [`crate::CoreConfig::admission`]). With the default unbounded
/// configuration every submission is [`Admission::Admitted`]; once a queue
/// capacity is configured, the active shed policy decides how an overflow
/// is resolved and that resolution is reported here, typed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The request was admitted; a [`TransmitDecision`] will follow from a
    /// later tick or heartbeat.
    Admitted {
        /// Id of the newly admitted request.
        id: RequestId,
    },
    /// The queue was full; the drop-lowest-value policy shed the queued
    /// request whose current delay cost was cheapest to make room.
    AdmittedWithEviction {
        /// Id of the newly admitted request.
        id: RequestId,
        /// The previously queued request that was shed (it will never
        /// receive a decision).
        evicted: RequestId,
    },
    /// The queue was full; the force-flush-oldest policy released the
    /// oldest queued request for immediate transmission to make room.
    AdmittedWithFlush {
        /// Id of the newly admitted request.
        id: RequestId,
        /// The early-release decision for the flushed request. It must be
        /// acted on (transmitted) like any broadcast decision.
        flushed: TransmitDecision,
    },
    /// The queue was full and the reject-new policy dropped this request;
    /// no id was issued. Resubmit after backing off.
    Rejected,
}

impl Admission {
    /// The id of the admitted request, or `None` when it was rejected.
    pub fn id(&self) -> Option<RequestId> {
        match self {
            Admission::Admitted { id }
            | Admission::AdmittedWithEviction { id, .. }
            | Admission::AdmittedWithFlush { id, .. } => Some(*id),
            Admission::Rejected => None,
        }
    }

    /// Whether the request entered the system (possibly at another
    /// request's expense).
    pub fn is_admitted(&self) -> bool {
        self.id().is_some()
    }
}

/// Outcome of a transmission attempt, reported back by the cargo app (or
/// the transport layer acting on its behalf) after acting on a
/// [`TransmitDecision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxResult {
    /// The transfer completed; the request is closed.
    Delivered,
    /// The transfer failed mid-flight (radio lost the channel, server
    /// reset, …); the energy is spent and the core decides whether to
    /// retry.
    Failed,
}

/// The core's verdict on a reported [`TxResult::Failed`] (or
/// acknowledgement of a [`TxResult::Delivered`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryVerdict {
    /// The delivery was recorded; nothing further happens.
    Delivered,
    /// The request re-enters the scheduler after a backoff; a fresh
    /// [`TransmitDecision`] will be issued at or after `resume_at_s`.
    RetryScheduled {
        /// Earliest time the request is re-offered to the scheduler, in
        /// seconds.
        resume_at_s: f64,
    },
    /// The retry policy gave up (attempts exhausted or deadline-aware
    /// give-up); the request is closed without delivery.
    Abandoned,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let up = TransmitRequest::upload(100).with_deadline(30.0);
        assert_eq!(up.direction, Direction::Upload);
        assert_eq!(up.deadline_s, Some(30.0));
        let down = TransmitRequest::download(5);
        assert_eq!(down.direction, Direction::Download);
        assert_eq!(down.deadline_s, None);
    }

    #[test]
    fn decision_delay() {
        let d = TransmitDecision {
            request: RequestId(1),
            app: CargoAppId(0),
            size_bytes: 10,
            decided_at_s: 42.0,
            submitted_at_s: 40.0,
            piggybacked_on: Some(TrainAppId(2)),
        };
        assert_eq!(d.delay_s(), 2.0);
        assert_eq!(RequestId(1).to_string(), "req#1");
    }
}
