//! Live energy metering: the runtime analogue of the paper's power-monitor
//! + PowerTool rig (Sec. VI-D, Fig. 9).
//!
//! The meter consumes the same event stream the system produces —
//! heartbeat departures and transmission decisions — and maintains *two*
//! radio models side by side:
//!
//! - the **actual** radio, driven by transmissions at their decided times
//!   (piggybacked cargo lands right after its heartbeat);
//! - a **counterfactual** baseline radio, driven as if every request had
//!   been transmitted the moment it was submitted.
//!
//! The difference is the energy eTrain has saved so far — the statistic a
//! production deployment would surface to the user (the paper's Luna
//! Weibo app shipped to 100+ users; a savings counter is the natural
//! product feature on top).

use etrain_radio::{analytic_extra_energy_j, RadioParams, Transmission};

use crate::request::TransmitDecision;

/// Accumulates actual-vs-baseline radio energy from system events.
///
/// Events may arrive in any order (decisions are timestamped); energy is
/// evaluated lazily over the recorded schedules.
///
/// # Examples
///
/// ```
/// use etrain_core::{EnergyMeter, TransmitDecision, RequestId};
/// use etrain_radio::RadioParams;
/// use etrain_trace::{CargoAppId, TrainAppId};
///
/// let mut meter = EnergyMeter::new(RadioParams::galaxy_s4_3g(), 450_000.0);
/// meter.record_heartbeat(0.0, 74);
/// meter.record_heartbeat(270.0, 74);
/// meter.record_decision(&TransmitDecision {
///     request: RequestId(0),
///     app: CargoAppId(0),
///     size_bytes: 5_000,
///     decided_at_s: 270.0,          // piggybacked on the 270 s heartbeat
///     submitted_at_s: 100.0,        // the baseline would have sent it here
///     piggybacked_on: Some(TrainAppId(0)),
/// });
/// let saved = meter.saved_j(400.0);
/// assert!(saved > 5.0, "one avoided tail is ~10 J, got {saved}");
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    params: RadioParams,
    bandwidth_bps: f64,
    actual: Vec<Transmission>,
    baseline: Vec<Transmission>,
    heartbeats: usize,
    decisions: usize,
    piggybacked: usize,
}

impl EnergyMeter {
    /// Creates a meter assuming the given radio and a nominal uplink
    /// bandwidth for converting sizes to transmission durations.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive.
    pub fn new(params: RadioParams, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        EnergyMeter {
            params,
            bandwidth_bps,
            actual: Vec::new(),
            baseline: Vec::new(),
            heartbeats: 0,
            decisions: 0,
            piggybacked: 0,
        }
    }

    fn duration_s(&self, size_bytes: u64) -> f64 {
        size_bytes as f64 * 8.0 / self.bandwidth_bps
    }

    /// Records a heartbeat departure (heartbeats happen identically in
    /// both worlds).
    pub fn record_heartbeat(&mut self, time_s: f64, size_bytes: u64) {
        let tx = Transmission::new(time_s, self.duration_s(size_bytes));
        self.actual.push(tx);
        self.baseline.push(tx);
        self.heartbeats += 1;
    }

    /// Records a transmission decision: the actual world transmits at the
    /// decision time, the counterfactual baseline at the submission time.
    pub fn record_decision(&mut self, decision: &TransmitDecision) {
        let duration = self.duration_s(decision.size_bytes);
        self.actual
            .push(Transmission::new(decision.decided_at_s, duration));
        self.baseline
            .push(Transmission::new(decision.submitted_at_s, duration));
        self.decisions += 1;
        if decision.piggybacked_on.is_some() {
            self.piggybacked += 1;
        }
    }

    /// Extra radio energy of the actual schedule up to `now_s`, in joules.
    pub fn actual_j(&self, now_s: f64) -> f64 {
        analytic_extra_energy_j(&self.params, &self.actual, now_s)
    }

    /// Extra radio energy the transmit-on-arrival baseline would have
    /// spent up to `now_s`, in joules.
    pub fn baseline_j(&self, now_s: f64) -> f64 {
        analytic_extra_energy_j(&self.params, &self.baseline, now_s)
    }

    /// Energy saved so far: baseline − actual, in joules.
    pub fn saved_j(&self, now_s: f64) -> f64 {
        self.baseline_j(now_s) - self.actual_j(now_s)
    }

    /// Decisions recorded so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Heartbeats recorded so far.
    pub fn heartbeats(&self) -> usize {
        self.heartbeats
    }

    /// Fraction of decisions that piggybacked on a heartbeat, in `[0, 1]`
    /// (0 when no decision has been recorded).
    pub fn piggyback_ratio(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.piggybacked as f64 / self.decisions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use etrain_trace::{CargoAppId, TrainAppId};

    fn decision(submitted: f64, decided: f64, piggy: bool) -> TransmitDecision {
        TransmitDecision {
            request: RequestId(0),
            app: CargoAppId(0),
            size_bytes: 5_000,
            decided_at_s: decided,
            submitted_at_s: submitted,
            piggybacked_on: piggy.then_some(TrainAppId(0)),
        }
    }

    fn meter() -> EnergyMeter {
        EnergyMeter::new(RadioParams::galaxy_s4_3g(), 450_000.0)
    }

    #[test]
    fn piggybacking_is_measured_as_saving() {
        let mut m = meter();
        m.record_heartbeat(0.0, 74);
        m.record_heartbeat(270.0, 74);
        m.record_decision(&decision(100.0, 270.0, true));
        // Baseline: 3 isolated tails; actual: 2 (cargo shares the 270 s
        // heartbeat's busy period).
        let saved = m.saved_j(500.0);
        let full_tail = RadioParams::galaxy_s4_3g().full_tail_energy_j();
        assert!(
            (saved - full_tail).abs() < 1.0,
            "saving should be ~one tail ({full_tail}), got {saved}"
        );
        assert_eq!(m.piggyback_ratio(), 1.0);
    }

    #[test]
    fn immediate_decisions_save_nothing() {
        let mut m = meter();
        m.record_decision(&decision(50.0, 50.0, false));
        assert!(m.saved_j(200.0).abs() < 1e-9);
        assert_eq!(m.piggyback_ratio(), 0.0);
    }

    #[test]
    fn heartbeats_alone_are_energy_neutral() {
        let mut m = meter();
        m.record_heartbeat(0.0, 100);
        m.record_heartbeat(300.0, 100);
        assert_eq!(m.saved_j(600.0), 0.0);
        assert!(m.actual_j(600.0) > 0.0);
        assert_eq!(m.heartbeats(), 2);
    }

    #[test]
    fn deferral_without_sharing_can_cost_nothing_extra() {
        // Deferring into empty air (no heartbeat nearby) just moves the
        // tail; saved energy ≈ 0, never negative beyond rounding.
        let mut m = meter();
        m.record_decision(&decision(10.0, 100.0, false));
        assert!(m.saved_j(300.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_of_two_requests_saves_one_gap() {
        let mut m = meter();
        m.record_decision(&decision(10.0, 100.0, false));
        m.record_decision(&decision(60.0, 100.0, false));
        // Baseline pays tails at 10 and 60 (50 s apart: two full tails);
        // actual pays one merged busy period at 100.
        let saved = m.saved_j(300.0);
        let full_tail = RadioParams::galaxy_s4_3g().full_tail_energy_j();
        assert!(saved > 0.9 * full_tail, "saved {saved}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = EnergyMeter::new(RadioParams::galaxy_s4_3g(), 0.0);
    }
}
