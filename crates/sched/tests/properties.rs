//! Property tests for the scheduling layer: conservation, causality and
//! bound-respect for every algorithm under arbitrary arrival sequences.

use etrain_sched::{
    AppProfile, BaselineScheduler, ETimeConfig, ETimeScheduler, ETrainConfig, ETrainScheduler,
    PerEsConfig, PerEsScheduler, Scheduler, SlotContext,
};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Algo {
    Baseline,
    ETrain { theta: f64, k: Option<usize> },
    PerEs { omega: f64 },
    ETime { v_bytes: f64 },
}

fn build(algo: Algo) -> Box<dyn Scheduler> {
    let profiles = AppProfile::paper_trio(45.0);
    match algo {
        Algo::Baseline => Box::new(BaselineScheduler::new(profiles)),
        Algo::ETrain { theta, k } => Box::new(ETrainScheduler::new(
            ETrainConfig {
                theta,
                k,
                slot_s: 1.0,
            },
            profiles,
        )),
        Algo::PerEs { omega } => Box::new(PerEsScheduler::new(
            PerEsConfig {
                omega,
                ..PerEsConfig::default()
            },
            profiles,
        )),
        Algo::ETime { v_bytes } => Box::new(ETimeScheduler::new(
            ETimeConfig {
                v_bytes,
                slot_s: 60.0,
            },
            profiles,
        )),
    }
}

fn arb_algo() -> impl Strategy<Value = Algo> {
    prop_oneof![
        Just(Algo::Baseline),
        (
            0.0f64..8.0,
            prop_oneof![Just(None), (1usize..16).prop_map(Some)]
        )
            .prop_map(|(theta, k)| Algo::ETrain { theta, k }),
        (0.01f64..5.0).prop_map(|omega| Algo::PerEs { omega }),
        (0.0f64..100_000.0).prop_map(|v_bytes| Algo::ETime { v_bytes }),
    ]
}

/// (inter-arrival gap, app index, size) triples.
fn arb_arrivals() -> impl Strategy<Value = Vec<(f64, usize, u64)>> {
    prop::collection::vec((0.1f64..40.0, 0usize..3, 100u64..50_000), 0..50)
}

/// Slot schedule: which slots carry a heartbeat.
fn arb_heartbeat_slots() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(prop::bool::weighted(0.05), 600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and causality: every packet is released exactly once
    /// or still pending; no release precedes its arrival slot.
    #[test]
    fn conservation_and_causality(
        algo in arb_algo(),
        arrivals in arb_arrivals(),
        hb_slots in arb_heartbeat_slots(),
    ) {
        let mut sched = build(algo);
        let slot_s = sched.slot_s();

        // Materialize packets.
        let mut packets = Vec::new();
        let mut t = 0.0;
        for (i, (gap, app, size)) in arrivals.iter().enumerate() {
            t += gap;
            packets.push(Packet {
                id: i as u64,
                app: CargoAppId(*app),
                arrival_s: t,
                size_bytes: *size,
            });
        }

        let horizon = 600.0;
        let mut released: Vec<(f64, Packet)> = Vec::new();
        let mut next = 0usize;
        let mut slot_t = 0.0;
        let mut slot_idx = 0usize;
        while slot_t < horizon {
            while next < packets.len() && packets[next].arrival_s <= slot_t {
                let p = packets[next];
                for r in sched.on_arrival(p, p.arrival_s).expect("registered app") {
                    released.push((p.arrival_s, r));
                }
                next += 1;
            }
            let ctx = SlotContext {
                now_s: slot_t,
                heartbeat_departing: hb_slots.get(slot_idx).copied().unwrap_or(false),
                predicted_bandwidth_bps: 400_000.0,
                trains_alive: true,
            };
            for r in sched.on_slot(&ctx) {
                released.push((slot_t, r));
            }
            slot_t += slot_s;
            slot_idx += 1;
        }

        // No duplicates.
        let mut ids: Vec<u64> = released.iter().map(|(_, p)| p.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate release");

        // Conservation: released + pending = offered (`next` counts the
        // packets actually handed to the scheduler).
        prop_assert_eq!(released.len() + sched.pending(), next);

        // Causality: release time >= arrival time.
        for (when, p) in &released {
            prop_assert!(*when + 1e-9 >= p.arrival_s,
                "packet {} released at {} before arrival {}", p.id, when, p.arrival_s);
        }

        // pending_bytes is consistent with pending count (both zero together).
        prop_assert_eq!(sched.pending() == 0, sched.pending_bytes() == 0);
    }

    /// eTrain's piggyback bound: a heartbeat slot releases at most k
    /// packets; a non-heartbeat slot at most 1.
    #[test]
    fn etrain_respects_k_bound(
        k in 1usize..8,
        n_packets in 1usize..30,
    ) {
        let mut sched = ETrainScheduler::new(
            ETrainConfig { theta: 0.0, k: Some(k), slot_s: 1.0 },
            AppProfile::paper_trio(45.0),
        );
        for i in 0..n_packets {
            let p = Packet {
                id: i as u64,
                app: CargoAppId(i % 3),
                arrival_s: 0.0,
                size_bytes: 1_000,
            };
            sched.on_arrival(p, 0.0).expect("registered app");
        }
        let hb_ctx = SlotContext {
            now_s: 10.0,
            heartbeat_departing: true,
            predicted_bandwidth_bps: 1e6,
            trains_alive: true,
        };
        prop_assert!(sched.on_slot(&hb_ctx).len() <= k);
        let plain_ctx = SlotContext { now_s: 11.0, heartbeat_departing: false, ..hb_ctx };
        prop_assert!(sched.on_slot(&plain_ctx).len() <= 1);
    }

    /// Instantaneous cost P(t) is monotone in time while the queue is
    /// untouched (costs only age upward).
    #[test]
    fn queue_cost_monotone_in_time(
        ages in prop::collection::vec(0.0f64..200.0, 1..10),
        probe in 0.0f64..500.0,
    ) {
        let mut sched = ETrainScheduler::new(
            // Astronomically high Θ: the gate never opens, the queue only ages.
            ETrainConfig { theta: 1e18, k: None, slot_s: 1.0 },
            AppProfile::paper_trio(45.0),
        );
        for (i, age) in ages.iter().enumerate() {
            let p = Packet {
                id: i as u64,
                app: CargoAppId(i % 3),
                arrival_s: *age,
                size_bytes: 1_000,
            };
            sched.on_arrival(p, *age).expect("registered app");
        }
        let t0 = 200.0 + probe;
        prop_assert!(sched.total_cost(t0 + 10.0) >= sched.total_cost(t0) - 1e-9);
    }
}

proptest! {
    /// Backoff extremes: even when `backoff_factor^(n-1)` overflows f64 to
    /// infinity, the undelayed backoff clamps to `max_backoff_s` and stays
    /// finite and monotone for every attempt count up to `u32::MAX`.
    #[test]
    fn retry_backoff_clamps_under_overflow(
        base in 0.001f64..1e6,
        factor in 1.0f64..1e6,
        cap_mult in 1.0f64..1e3,
        attempts in prop::collection::vec(1u32..=u32::MAX, 1..16),
    ) {
        let policy = etrain_sched::RetryPolicy {
            base_backoff_s: base,
            backoff_factor: factor,
            max_backoff_s: base * cap_mult,
            ..etrain_sched::RetryPolicy::default()
        };
        prop_assert!(policy.validate().is_ok());
        for &n in &attempts {
            // factor^(n-1) reaches inf long before n = u32::MAX for any
            // factor > 1; the min() against the cap must absorb that.
            let d = policy.backoff_s(n);
            prop_assert!(d.is_finite(), "attempt {n}: got {d}");
            prop_assert!(d <= policy.max_backoff_s + 1e-12, "attempt {n}: {d}");
            prop_assert!(d >= 0.0);
            if n < u32::MAX {
                prop_assert!(policy.backoff_s(n + 1) >= d - 1e-12, "monotone at {n}");
            }
        }
    }

    /// Deadline-aware give-up: whenever `decide` schedules a retry, the
    /// packet's age at that retry is within `give_up_age_s` — the policy
    /// never schedules an attempt past its own deadline, for any jitter,
    /// age and backoff geometry (including overflowing factors).
    #[test]
    fn retry_never_schedules_past_the_deadline(
        base in 0.001f64..1e4,
        factor in 1.0f64..1e6,
        cap_mult in 1.0f64..1e3,
        jitter in 0.0f64..=1.0,
        give_up in 0.1f64..1e6,
        failed in 1u32..=u32::MAX,
        now in 0.0f64..1e6,
        arrival_back in 0.0f64..1e6,
        unit in 0.0f64..1.0,
    ) {
        let policy = etrain_sched::RetryPolicy {
            base_backoff_s: base,
            backoff_factor: factor,
            max_backoff_s: base * cap_mult,
            jitter_frac: jitter,
            max_attempts: u32::MAX,
            give_up_age_s: give_up,
        };
        prop_assert!(policy.validate().is_ok());
        let arrival = now - arrival_back;
        match policy.decide(failed, now, arrival, unit) {
            etrain_sched::RetryDecision::RetryAfter(delay) => {
                prop_assert!(delay.is_finite() && delay >= 0.0, "delay {delay}");
                let age_at_retry = now + delay - arrival;
                prop_assert!(
                    age_at_retry <= give_up + 1e-9,
                    "age {age_at_retry} exceeds give-up {give_up}"
                );
            }
            etrain_sched::RetryDecision::Abandon => {}
        }
    }
}
