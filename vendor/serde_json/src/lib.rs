//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the `serde` shim's [`Value`] tree to JSON text and parses it
//! back. Floats print via Rust's shortest-roundtrip `Display`, which
//! gives the same guarantee as serde_json's `float_roundtrip` feature:
//! `from_str(&to_string(x)) == x` bit-for-bit for finite floats.

pub use serde::{Number, Value};

use std::fmt;

/// Error raised by JSON parsing or by value→type conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::FromValueError> for Error {
    fn from(e: serde::FromValueError) -> Self {
        Error::new(e.message())
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(out: &mut String, n: &Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // Rust's f64 Display is shortest-roundtrip; ensure the
                // token still *parses* as a float (serde_json prints
                // "1.0", not "1", for whole floats).
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => number_into(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(n)));
            }
        }
        text.parse::<f64>()
            .map(|n| Value::Number(Number::F64(n)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
    }

    #[test]
    fn float_bit_for_bit_round_trip() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            #[allow(clippy::excessive_precision)]
            123456789.123456789,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} nul-ish \u{1}";
        let s = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u32>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let pairs: Vec<(u64, String)> = from_str("[[1,\"a\"],[2,\"b\"]]").unwrap();
        assert_eq!(pairs, vec![(1, "a".to_string()), (2, "b".to_string())]);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("troo").is_err());
    }
}
