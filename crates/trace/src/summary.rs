//! Descriptive statistics for traces — what a measurement study reports
//! about its inputs before using them.

use serde::{Deserialize, Serialize};

use crate::bandwidth::BandwidthTrace;
use crate::packets::Packet;

/// Summary statistics of a packet trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSummary {
    /// Number of packets.
    pub count: usize,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Trace span (first to last arrival) in seconds (0 for < 2 packets).
    pub span_s: f64,
    /// Mean arrival rate over the span, packets per second.
    pub rate_pps: f64,
    /// Size percentiles `[p10, p50, p90]` in bytes.
    pub size_percentiles: [u64; 3],
    /// Per-app packet counts, indexed by app id.
    pub per_app_counts: Vec<usize>,
}

/// Summarizes a packet trace.
///
/// # Examples
///
/// ```
/// use etrain_trace::packets::CargoWorkload;
/// use etrain_trace::summary::summarize_packets;
///
/// let packets = CargoWorkload::paper_default(0.08).generate(3600.0, 1);
/// let s = summarize_packets(&packets);
/// assert!((s.rate_pps - 0.08).abs() < 0.03);
/// assert_eq!(s.per_app_counts.len(), 3);
/// ```
pub fn summarize_packets(packets: &[Packet]) -> PacketSummary {
    let count = packets.len();
    let total_bytes = packets.iter().map(|p| p.size_bytes).sum();
    let span_s = match (packets.first(), packets.last()) {
        (Some(first), Some(last)) if count >= 2 => last.arrival_s - first.arrival_s,
        _ => 0.0,
    };
    let rate_pps = if span_s > 0.0 {
        count as f64 / span_s
    } else {
        0.0
    };
    let mut sizes: Vec<u64> = packets.iter().map(|p| p.size_bytes).collect();
    sizes.sort_unstable();
    let pick = |q: f64| -> u64 {
        if sizes.is_empty() {
            0
        } else {
            sizes[((sizes.len() - 1) as f64 * q).round() as usize]
        }
    };
    let apps = packets
        .iter()
        .map(|p| p.app.index())
        .max()
        .map_or(0, |m| m + 1);
    let mut per_app_counts = vec![0usize; apps];
    for p in packets {
        per_app_counts[p.app.index()] += 1;
    }
    PacketSummary {
        count,
        total_bytes,
        span_s,
        rate_pps,
        size_percentiles: [pick(0.1), pick(0.5), pick(0.9)],
        per_app_counts,
    }
}

/// Summary statistics of a bandwidth trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSummary {
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Mean bandwidth in bits per second.
    pub mean_bps: f64,
    /// Bandwidth percentiles `[p10, p50, p90]` in bits per second.
    pub percentiles_bps: [f64; 3],
    /// Coefficient of variation (std/mean) — the burstiness the
    /// prediction-based schedulers struggle with.
    pub coefficient_of_variation: f64,
}

/// Summarizes a bandwidth trace.
///
/// # Examples
///
/// ```
/// use etrain_trace::bandwidth::wuhan_drive_synthetic;
/// use etrain_trace::summary::summarize_bandwidth;
///
/// let s = summarize_bandwidth(&wuhan_drive_synthetic(1));
/// assert_eq!(s.duration_s, 7200.0);
/// assert!(s.coefficient_of_variation > 0.3, "drive traces are bursty");
/// ```
pub fn summarize_bandwidth(trace: &BandwidthTrace) -> BandwidthSummary {
    let samples = trace.samples_bps();
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    BandwidthSummary {
        duration_s: trace.duration_s(),
        mean_bps: mean,
        percentiles_bps: [pick(0.1), pick(0.5), pick(0.9)],
        coefficient_of_variation: var.sqrt() / mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packets::CargoWorkload;
    use crate::CargoAppId;

    #[test]
    fn packet_summary_on_handmade_trace() {
        let packets: Vec<Packet> = (0..5)
            .map(|i| Packet {
                id: i,
                app: CargoAppId((i % 2) as usize),
                arrival_s: i as f64 * 10.0,
                size_bytes: (i + 1) * 100,
            })
            .collect();
        let s = summarize_packets(&packets);
        assert_eq!(s.count, 5);
        assert_eq!(s.total_bytes, 1500);
        assert_eq!(s.span_s, 40.0);
        assert_eq!(s.per_app_counts, vec![3, 2]);
        assert_eq!(s.size_percentiles[1], 300); // median
    }

    #[test]
    fn empty_and_singleton_traces() {
        let s = summarize_packets(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.rate_pps, 0.0);
        assert_eq!(s.size_percentiles, [0, 0, 0]);

        let one = [Packet {
            id: 0,
            app: CargoAppId(0),
            arrival_s: 5.0,
            size_bytes: 42,
        }];
        let s = summarize_packets(&one);
        assert_eq!(s.count, 1);
        assert_eq!(s.span_s, 0.0);
        assert_eq!(s.size_percentiles, [42, 42, 42]);
    }

    #[test]
    fn generated_trace_statistics_are_sane() {
        let packets = CargoWorkload::paper_default(0.08).generate(7200.0, 2);
        let s = summarize_packets(&packets);
        assert!((s.rate_pps - 0.08).abs() < 0.02);
        // Weibo (app 1) is the most frequent: 1/20 s rate.
        assert!(s.per_app_counts[1] > s.per_app_counts[0]);
        assert!(s.per_app_counts[1] > s.per_app_counts[2]);
        // p10 ≤ p50 ≤ p90.
        assert!(s.size_percentiles[0] <= s.size_percentiles[1]);
        assert!(s.size_percentiles[1] <= s.size_percentiles[2]);
    }

    #[test]
    fn bandwidth_summary_percentiles_ordered() {
        let trace = crate::bandwidth::wuhan_drive_synthetic(3);
        let s = summarize_bandwidth(&trace);
        assert!(s.percentiles_bps[0] <= s.percentiles_bps[1]);
        assert!(s.percentiles_bps[1] <= s.percentiles_bps[2]);
        assert!(s.mean_bps >= trace.min_bps() && s.mean_bps <= trace.max_bps());
    }

    #[test]
    fn constant_trace_has_zero_variation() {
        let s = summarize_bandwidth(&BandwidthTrace::constant(1e6));
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.percentiles_bps, [1e6, 1e6, 1e6]);
    }
}
