//! # etrain-hb — the Heartbeat Monitor
//!
//! On Android, eTrain locates the heartbeat-sending code of each train app
//! with an Xposed hook on `AlarmManager`/`BroadcastReceiver` and is notified
//! at the exact moment a heartbeat leaves the device (paper Sec. V-2). That
//! mechanism cannot exist in a simulation, so this crate implements the same
//! capability from the observable side: given the *timestamps* of a train
//! app's transmissions, it
//!
//! 1. **detects** the app's heartbeat cycle (fixed cycles like WeChat's
//!    270 s, or adaptive doubling cycles like NetEase's 60→480 s — paper
//!    Table 1 / Fig. 3), robust to bounded jitter;
//! 2. **predicts** future "train departure times"
//!    `t_s(h_{i,j}) = t_s(h_{i,0}) + cycle_i × j` (paper Sec. III-C), which
//!    is what the scheduler consumes;
//! 3. **tracks liveness**, so the scheduler stops deferring packets when a
//!    train app dies ("In case when no train app is running, eTrain will
//!    stop its scheduler to avoid cargo apps' indefinite waiting", Sec. V-3).
//!
//! # Example
//!
//! ```
//! use etrain_hb::{CycleDetector, DetectedPattern};
//!
//! let mut detector = CycleDetector::new();
//! for i in 0..6 {
//!     detector.observe(10.0 + i as f64 * 270.0); // WeChat-like
//! }
//! match detector.detect() {
//!     DetectedPattern::Fixed { cycle_s, .. } => assert!((cycle_s - 270.0).abs() < 1.0),
//!     other => panic!("expected fixed cycle, got {other:?}"),
//! }
//! assert!((detector.predict_next().unwrap() - (10.0 + 6.0 * 270.0)).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod change;
mod detect;
mod fold;
mod identify;
mod monitor;

pub use change::ChangeDetector;
pub use detect::{CycleDetector, DetectedPattern};
pub use fold::estimate_period;
pub use identify::{identify_heartbeat_flows, HeartbeatFlow, IdentifyConfig};
pub use monitor::{HeartbeatMonitor, TrainStatus};
