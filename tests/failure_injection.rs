//! Failure-injection tests: the system must degrade gracefully when
//! trains die, the channel collapses, heartbeats jitter, or workloads are
//! degenerate.

use etrain::core::{CoreConfig, ETrainCore, TransmitRequest};
use etrain::sched::{AppProfile, CostProfile};
use etrain::sim::{BandwidthSource, Scenario, SchedulerKind};
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::packets::CargoWorkload;

/// Paper Sec. V-3: "In case when no train app is running, eTrain will stop
/// its scheduler to avoid cargo apps' indefinite waiting."
#[test]
fn train_death_mid_run_flushes_cargo() {
    // One train whose daemon dies halfway: heartbeats only in the first
    // 1200 s of a 3600 s run.
    let dying_train = TrainAppSpec::fixed("Dying", 300.0, 300, 0.0);
    let heartbeats: Vec<_> =
        etrain::trace::heartbeats::synthesize(&[dying_train], 1200.0, 1);
    let report = Scenario::paper_default()
        .duration_secs(3600)
        .heartbeats(heartbeats)
        .scheduler(SchedulerKind::ETrain {
            theta: 1e9, // gate never opens: trains are the only outlet
            k: None,
        })
        .seed(2)
        .run();
    // Nothing may be stranded: once the train is gone the scheduler stops
    // deferring (the engine signals trains_alive = false).
    assert_eq!(
        report.packets_unfinished, 0,
        "cargo stranded after train death"
    );
}

#[test]
fn channel_collapse_slows_but_loses_nothing() {
    // An 8 kbps channel (the generator's fade floor) for the entire run.
    let report = Scenario::paper_default()
        .duration_secs(1800)
        .lambda(0.02)
        .bandwidth(BandwidthSource::Constant(8_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.5,
            k: None,
        })
        .seed(4)
        .run();
    // Large cloud packets take ~100 s each at 1 kB/s: some work must spill
    // past the horizon, but accounting stays consistent.
    let generated = CargoWorkload::paper_default(0.02).generate(1800.0, 4).len();
    assert_eq!(
        report.packets_completed + report.packets_unfinished,
        generated
    );
    assert!(report.busy_time_s > 100.0, "slow channel keeps radio busy");
}

#[test]
fn heavy_heartbeat_jitter_does_not_break_alignment() {
    let jittered: Vec<TrainAppSpec> = TrainAppSpec::paper_trio()
        .into_iter()
        .map(|t| t.with_jitter(30.0))
        .collect();
    let base = Scenario::paper_default().duration_secs(2400).seed(6);
    let clean = base.clone().scheduler(SchedulerKind::ETrain { theta: 2.0, k: None }).run();
    let noisy = base
        .trains(jittered)
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .run();
    // The scheduler reacts to *observed* departures, so ±30 s jitter must
    // not change energy by more than 20 %.
    let drift = (noisy.extra_energy_j - clean.extra_energy_j).abs() / clean.extra_energy_j;
    assert!(drift < 0.2, "jitter drift {:.1}%", drift * 100.0);
}

#[test]
fn zero_workload_runs_clean() {
    let report = Scenario::paper_default()
        .duration_secs(1800)
        .workload(CargoWorkload::new(Vec::new()))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.2,
            k: None,
        })
        .seed(1)
        .run();
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.normalized_delay_s, 0.0);
    assert!(report.extra_energy_j > 0.0, "heartbeats still cost energy");
}

#[test]
fn burst_arrivals_are_conserved() {
    // 200 packets arriving in the same second.
    let packets: Vec<_> = (0..200)
        .map(|i| etrain::trace::packets::Packet {
            id: i,
            app: etrain::trace::CargoAppId(1),
            arrival_s: 10.0,
            size_bytes: 1_000,
        })
        .collect();
    let report = Scenario::paper_default()
        .duration_secs(1200)
        .packets(packets)
        .bandwidth(BandwidthSource::Constant(1_000_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 0.5,
            k: None,
        })
        .seed(1)
        .run();
    assert_eq!(report.packets_completed + report.packets_unfinished, 200);
}

/// The live core refuses inconsistent inputs instead of corrupting state.
#[test]
fn core_rejects_bad_inputs_and_survives() {
    let mut core = ETrainCore::new(CoreConfig::default());
    let app = core.register_cargo(AppProfile::new("W", CostProfile::weibo(60.0)));

    // Unknown train, unknown app, time travel — all reported as errors.
    assert!(core.on_heartbeat(etrain::trace::TrainAppId(3), 1.0).is_err());
    assert!(core
        .submit(etrain::trace::CargoAppId(9), TransmitRequest::upload(1), 2.0)
        .is_err());
    core.submit(app, TransmitRequest::upload(1), 50.0).unwrap();
    assert!(core.submit(app, TransmitRequest::upload(1), 10.0).is_err());

    // The core still works afterwards.
    let decisions = core.tick(60.0).expect("clock still monotone");
    assert_eq!(decisions.len(), 1, "no trains: immediate release");
}

#[test]
fn enormous_single_packet_does_not_wedge_the_engine() {
    let packets = vec![etrain::trace::packets::Packet {
        id: 0,
        app: etrain::trace::CargoAppId(2),
        arrival_s: 1.0,
        size_bytes: 500_000_000, // 500 MB on a phone link
    }];
    let report = Scenario::paper_default()
        .duration_secs(600)
        .packets(packets)
        .scheduler(SchedulerKind::Baseline)
        .seed(1)
        .run();
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.packets_unfinished, 1);
    assert!(report.extra_energy_j.is_finite());
}
