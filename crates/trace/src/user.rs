//! User behaviour traces.
//!
//! The paper records the behaviour of 100+ Luna Weibo users as 4-tuples
//! `(User ID, Behavior type, Time, Packet Size)` and classifies users by
//! activeness (Sec. VI-D-4): *active* users produce more than 20 upload
//! events per "app use", *moderate* users 10–20, *inactive* users fewer than
//! 10. Most app uses last 5–10 minutes; for Fig. 11 all traces are
//! normalized to exactly 10 minutes (longer traces truncated, shorter ones
//! extended).
//!
//! Those traces are proprietary, so this module generates statistically
//! equivalent ones: sessions of 5–10 minutes with the per-category upload
//! counts, a mix of small text posts and occasional picture posts, plus
//! browse events that do not upload data.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::packets::Packet;
use crate::rng::{seeded, TruncatedNormal};
use crate::CargoAppId;

/// User activeness category (paper Sec. VI-D-4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activeness {
    /// More than 20 upload events per app use.
    Active,
    /// Between 10 and 20 upload events per app use.
    Moderate,
    /// Fewer than 10 upload events per app use.
    Inactive,
}

impl Activeness {
    /// The inclusive range of upload events per app use for this category.
    pub fn upload_range(self) -> (u32, u32) {
        match self {
            Activeness::Active => (21, 40),
            Activeness::Moderate => (10, 20),
            Activeness::Inactive => (2, 9),
        }
    }

    /// All categories, in the order the paper reports them.
    pub fn all() -> [Activeness; 3] {
        [
            Activeness::Active,
            Activeness::Moderate,
            Activeness::Inactive,
        ]
    }
}

impl std::fmt::Display for Activeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activeness::Active => "active",
            Activeness::Moderate => "moderate",
            Activeness::Inactive => "inactive",
        };
        f.write_str(name)
    }
}

/// Behaviour type recorded in a user trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BehaviorType {
    /// The user posted content (generates an uplink packet).
    Upload,
    /// The user browsed the timeline (no uplink data; kept in the trace for
    /// fidelity with the paper's record format).
    Browse,
}

impl std::fmt::Display for BehaviorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BehaviorType::Upload => "upload",
            BehaviorType::Browse => "browse",
        };
        f.write_str(name)
    }
}

/// One record of the paper's 4-tuple trace format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserBehaviorRecord {
    /// The user the record belongs to.
    pub user_id: u32,
    /// What the user did.
    pub behavior: BehaviorType,
    /// Event time within the app use, in seconds.
    pub time_s: f64,
    /// Uplink packet size in bytes (0 for browse events).
    pub size_bytes: u64,
}

/// One "app use": a contiguous period during which the user actively uses
/// the app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppUseTrace {
    /// The user's id.
    pub user_id: u32,
    /// The user's activeness category.
    pub activeness: Activeness,
    /// Time-sorted behaviour records.
    pub records: Vec<UserBehaviorRecord>,
    /// Length of the app use in seconds.
    pub duration_s: f64,
}

impl AppUseTrace {
    /// Number of upload events in the trace.
    pub fn upload_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.behavior == BehaviorType::Upload)
            .count()
    }

    /// Total uploaded bytes.
    pub fn upload_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.behavior == BehaviorType::Upload)
            .map(|r| r.size_bytes)
            .sum()
    }

    /// Normalizes the trace to exactly `target_s` seconds the way the paper
    /// prepares Fig. 11 inputs: records beyond the target are dropped, and
    /// shorter traces keep their records with the duration extended (the
    /// paper fills the gap with synthetic heartbeats, which the replay layer
    /// adds).
    pub fn normalized_to(mut self, target_s: f64) -> AppUseTrace {
        self.records.retain(|r| r.time_s < target_s);
        self.duration_s = target_s;
        self
    }
}

/// Generates one app use for `user_id` in the given activeness category.
///
/// Sessions last 5–10 minutes. Upload events are uniformly spread over the
/// session; ~15 % of uploads are picture posts (mean 80 KB, min 10 KB), the
/// rest are text posts (mean 2 KB, min 100 B — the Luna Weibo size model).
/// Browse events are added at roughly one per 20 s.
///
/// # Examples
///
/// ```
/// use etrain_trace::user::{generate_app_use, Activeness};
///
/// let trace = generate_app_use(3, Activeness::Active, 42);
/// assert!(trace.upload_count() > 20);
/// assert!(trace.duration_s >= 300.0 && trace.duration_s <= 600.0);
/// ```
pub fn generate_app_use(user_id: u32, activeness: Activeness, seed: u64) -> AppUseTrace {
    let mut rng = seeded(seed ^ u64::from(user_id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let duration_s = rng.gen_range(300.0..=600.0);
    let (lo, hi) = activeness.upload_range();
    let uploads = rng.gen_range(lo..=hi);
    let text = TruncatedNormal::from_mean_min(2_000.0, 100.0);
    let picture = TruncatedNormal::from_mean_min(80_000.0, 10_000.0);

    let mut records = Vec::new();
    for _ in 0..uploads {
        let is_picture = rng.gen_bool(0.15);
        let size = if is_picture {
            picture.sample(&mut rng)
        } else {
            text.sample(&mut rng)
        };
        records.push(UserBehaviorRecord {
            user_id,
            behavior: BehaviorType::Upload,
            time_s: rng.gen_range(0.0..duration_s),
            size_bytes: size.round().max(1.0) as u64,
        });
    }
    let browses = (duration_s / 20.0) as u32;
    for _ in 0..browses {
        records.push(UserBehaviorRecord {
            user_id,
            behavior: BehaviorType::Browse,
            time_s: rng.gen_range(0.0..duration_s),
            size_bytes: 0,
        });
    }
    records.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    AppUseTrace {
        user_id,
        activeness,
        records,
        duration_s,
    }
}

/// Lazy per-class packet synthesis: streams the upload packets of one
/// synthetic app use straight into `out`, skipping the [`AppUseTrace`]
/// materialization entirely.
///
/// Produces **bit-for-bit** the packets of the reference pipeline
///
/// ```text
/// generate_app_use(user_id, activeness, seed)
///     .normalized_to(target_s)            // drop records past the target
///   → keep uploads, sort by arrival, assign dense ids   (replay layer)
/// ```
///
/// because [`generate_app_use`] draws every upload record *before* any
/// browse record — skipping browse generation consumes no shared RNG
/// state — and both pipelines order tied arrivals by draw order (stable
/// sorts). The fleet simulator calls this once per device into a reusable
/// per-worker scratch buffer, so simulating 10⁶ devices never builds 10⁶
/// record vectors.
///
/// `out` is cleared first; on return it is sorted by `arrival_s` with ids
/// dense from 0, ready for the simulator.
///
/// # Examples
///
/// ```
/// use etrain_trace::user::{upload_packets_into, Activeness};
/// use etrain_trace::CargoAppId;
///
/// let mut scratch = Vec::new();
/// upload_packets_into(3, Activeness::Active, 42, 600.0, CargoAppId(0), &mut scratch);
/// assert!(scratch.len() > 20);
/// assert!(scratch.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
/// ```
pub fn upload_packets_into(
    user_id: u32,
    activeness: Activeness,
    seed: u64,
    target_s: f64,
    app: CargoAppId,
    out: &mut Vec<Packet>,
) {
    let mut rng = seeded(seed ^ u64::from(user_id).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let duration_s = rng.gen_range(300.0..=600.0);
    let (lo, hi) = activeness.upload_range();
    let uploads = rng.gen_range(lo..=hi);
    let text = TruncatedNormal::from_mean_min(2_000.0, 100.0);
    let picture = TruncatedNormal::from_mean_min(80_000.0, 10_000.0);

    out.clear();
    for _ in 0..uploads {
        let is_picture = rng.gen_bool(0.15);
        let size = if is_picture {
            picture.sample(&mut rng)
        } else {
            text.sample(&mut rng)
        };
        let time_s = rng.gen_range(0.0..duration_s);
        // normalized_to() truncation, applied at draw time.
        if time_s < target_s {
            out.push(Packet {
                id: 0,
                app,
                arrival_s: time_s,
                size_bytes: (size.round().max(1.0) as u64).max(1),
            });
        }
    }
    out.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    for (i, p) in out.iter_mut().enumerate() {
        p.id = i as u64;
    }
}

/// Generates a cohort of users: `per_category` users in each activeness
/// category, each with one app use, ids assigned densely from 0.
pub fn generate_cohort(per_category: u32, seed: u64) -> Vec<AppUseTrace> {
    let mut traces = Vec::new();
    let mut user_id = 0;
    for category in Activeness::all() {
        for _ in 0..per_category {
            traces.push(generate_app_use(user_id, category, seed));
            user_id += 1;
        }
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_counts_match_categories() {
        for (seed, category) in [
            (1, Activeness::Active),
            (2, Activeness::Moderate),
            (3, Activeness::Inactive),
        ] {
            for user in 0..20 {
                let trace = generate_app_use(user, category, seed);
                let (lo, hi) = category.upload_range();
                let n = trace.upload_count() as u32;
                assert!(
                    n >= lo && n <= hi,
                    "{category} user {user} has {n} uploads, expected {lo}..={hi}"
                );
            }
        }
    }

    #[test]
    fn categories_are_ordered_by_activity() {
        // Averaged over a cohort, active users upload more than moderate,
        // who upload more than inactive.
        let mean_uploads = |cat| {
            (0..30)
                .map(|u| generate_app_use(u, cat, 99).upload_count())
                .sum::<usize>() as f64
                / 30.0
        };
        let a = mean_uploads(Activeness::Active);
        let m = mean_uploads(Activeness::Moderate);
        let i = mean_uploads(Activeness::Inactive);
        assert!(a > m && m > i, "a={a} m={m} i={i}");
    }

    #[test]
    fn records_are_sorted_and_in_session() {
        let trace = generate_app_use(0, Activeness::Active, 5);
        assert!(trace.records.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(trace
            .records
            .iter()
            .all(|r| r.time_s >= 0.0 && r.time_s < trace.duration_s));
    }

    #[test]
    fn browse_events_carry_no_bytes() {
        let trace = generate_app_use(1, Activeness::Moderate, 8);
        for r in &trace.records {
            match r.behavior {
                BehaviorType::Browse => assert_eq!(r.size_bytes, 0),
                BehaviorType::Upload => assert!(r.size_bytes >= 100),
            }
        }
    }

    #[test]
    fn normalization_truncates_and_extends() {
        let trace = generate_app_use(2, Activeness::Active, 13);
        let normalized = trace.clone().normalized_to(600.0);
        assert_eq!(normalized.duration_s, 600.0);
        assert!(normalized.records.iter().all(|r| r.time_s < 600.0));
        let short = trace.normalized_to(100.0);
        assert_eq!(short.duration_s, 100.0);
        assert!(short.records.iter().all(|r| r.time_s < 100.0));
    }

    #[test]
    fn lazy_upload_packets_match_materialized_pipeline_bitwise() {
        // Reference pipeline: materialize the full trace, normalize,
        // filter uploads, sort, assign dense ids — exactly what the replay
        // layer's `to_packets(generate_app_use(..).normalized_to(..))`
        // does (re-stated here because the replay layer lives upstack).
        let reference = |user: u32, cat: Activeness, seed: u64, target: f64| -> Vec<Packet> {
            let trace = generate_app_use(user, cat, seed).normalized_to(target);
            let mut packets: Vec<Packet> = trace
                .records
                .iter()
                .filter(|r| r.behavior == BehaviorType::Upload)
                .map(|r| Packet {
                    id: 0,
                    app: CargoAppId(0),
                    arrival_s: r.time_s,
                    size_bytes: r.size_bytes.max(1),
                })
                .collect();
            packets.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
            for (i, p) in packets.iter_mut().enumerate() {
                p.id = i as u64;
            }
            packets
        };
        let mut scratch = Vec::new();
        for cat in Activeness::all() {
            for (user, seed, target) in [(0u32, 42u64, 600.0), (17, 7, 600.0), (3, 99, 450.0)] {
                upload_packets_into(user, cat, seed, target, CargoAppId(0), &mut scratch);
                let expected = reference(user, cat, seed, target);
                assert_eq!(scratch.len(), expected.len(), "{cat} user {user}");
                for (a, b) in scratch.iter().zip(&expected) {
                    assert_eq!(a.id, b.id);
                    assert_eq!(a.app, b.app);
                    assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
                    assert_eq!(a.size_bytes, b.size_bytes);
                }
            }
        }
    }

    #[test]
    fn cohort_has_unique_user_ids() {
        use std::collections::HashSet;
        let cohort = generate_cohort(10, 4);
        assert_eq!(cohort.len(), 30);
        let ids: HashSet<u32> = cohort.iter().map(|t| t.user_id).collect();
        assert_eq!(ids.len(), 30);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activeness::Active.to_string(), "active");
        assert_eq!(BehaviorType::Upload.to_string(), "upload");
    }
}
