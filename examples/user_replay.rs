//! Replay generated Luna-Weibo user traces through the *live* eTrain core,
//! per activeness category — the paper's controlled-experiment pipeline
//! (Sec. VI-D-4) in miniature.
//!
//! ```text
//! cargo run --release --example user_replay
//! ```

use etrain::apps::{replay, CargoAppModel};
use etrain::core::CoreConfig;
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::user::{generate_app_use, Activeness};

fn main() {
    let trains = TrainAppSpec::paper_trio();
    let weibo = CargoAppModel::weibo().with_deadline(30.0);
    let config = CoreConfig {
        theta: 20.0, // the paper's Fig. 11 operating point
        k: Some(20),
        slot_s: 1.0,
        startup_grace_s: 600.0,
        ..CoreConfig::default()
    };

    println!("=== 10-minute app-use replays through the live eTrain core ===\n");
    for category in Activeness::all() {
        let mut uploads = 0;
        let mut stranded = 0;
        let mut piggy = 0.0;
        let mut delay = 0.0;
        let users = 5;
        for user in 0..users {
            let trace = generate_app_use(user, category, 7).normalized_to(600.0);
            let outcome = replay::replay_through_core(&trace, &weibo, &trains, config);
            uploads += outcome.decisions.len();
            // Uploads arriving after the window's last train would ride the
            // *next* heartbeat, beyond the 10-minute measurement window.
            stranded += outcome.undelivered;
            piggy += outcome.piggyback_ratio;
            delay += outcome.mean_delay_s;
        }
        let n = f64::from(users);
        println!(
            "{category:<9} users: {:>5.1} uploads/use, {:>4.1}% piggybacked, {:>5.1}s mean delay, {} awaiting next train",
            uploads as f64 / n,
            piggy / n * 100.0,
            delay / n,
            stranded,
        );
    }
    println!(
        "\nActive users generate more cargo per app use, so more of their\n\
         traffic rides heartbeat tails — the mechanism behind Fig. 11."
    );
}
