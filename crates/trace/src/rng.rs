//! Seeded random distributions used by every trace generator.
//!
//! Only `rand`'s core uniform generator is used; the exponential,
//! normal and truncated-normal distributions needed by the paper's workload
//! model are implemented here (Box–Muller + inversion), avoiding an extra
//! `rand_distr` dependency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Creates the deterministic RNG used throughout the workspace.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = etrain_trace::rng::seeded(7);
/// let mut b = etrain_trace::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples an exponential variate with the given mean via inversion.
///
/// Used for Poisson inter-arrival times (paper Sec. VI-A: cargo packet
/// arrivals follow independent Poisson processes).
///
/// # Panics
///
/// Panics if `mean` is not strictly positive.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal distribution truncated from below, matching the paper's packet
/// size model ("drawn from truncated Normal Distribution with mean and
/// minimum ...", Sec. VI-A).
///
/// The paper specifies only the mean and the minimum; the standard deviation
/// defaults to `(mean - min) / 2` so that roughly 95 % of the untruncated
/// mass lies above the minimum.
///
/// # Examples
///
/// ```
/// use etrain_trace::rng::{seeded, TruncatedNormal};
///
/// // The paper's eTrain Mail size model: mean 5 KB, minimum 1 KB.
/// let sizes = TruncatedNormal::from_mean_min(5_000.0, 1_000.0);
/// let mut rng = seeded(1);
/// for _ in 0..100 {
///     assert!(sizes.sample(&mut rng) >= 1_000.0);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedNormal {
    mean: f64,
    std_dev: f64,
    min: f64,
}

impl TruncatedNormal {
    /// Creates a distribution with explicit mean, standard deviation and
    /// lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative, if any parameter is non-finite, or
    /// if `min > mean` (the truncation would reject most of the mass and the
    /// effective mean would drift far from `mean`).
    pub fn new(mean: f64, std_dev: f64, min: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && min.is_finite(),
            "truncated normal parameters must be finite"
        );
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        assert!(min <= mean, "minimum must not exceed the mean");
        TruncatedNormal { mean, std_dev, min }
    }

    /// Creates a distribution from the paper's `(mean, minimum)` pairs with
    /// the default `std_dev = (mean - min) / 2`.
    pub fn from_mean_min(mean: f64, min: f64) -> Self {
        TruncatedNormal::new(mean, (mean - min) / 2.0, min)
    }

    /// The (untruncated) mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// The lower truncation bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Draws one sample (rejection from the underlying normal; the
    /// acceptance rate is ≥ 95 % for [`TruncatedNormal::from_mean_min`]
    /// parameterizations, with a clamping fallback after 64 rejections).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        for _ in 0..64 {
            let x = self.mean + self.std_dev * standard_normal(rng);
            if x >= self.min {
                return x;
            }
        }
        self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = seeded(42);
        let n = 20_000;
        let mean = 12.5;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn truncated_normal_respects_minimum_and_mean() {
        let dist = TruncatedNormal::from_mean_min(5_000.0, 1_000.0);
        let mut rng = seeded(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 1_000.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        // Truncation pushes the mean slightly up; stay within 5 %.
        assert!((mean - 5_000.0).abs() / 5_000.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn truncated_normal_zero_std_is_constant() {
        let dist = TruncatedNormal::new(10.0, 0.0, 5.0);
        let mut rng = seeded(9);
        assert_eq!(dist.sample(&mut rng), 10.0);
    }

    #[test]
    #[should_panic(expected = "minimum must not exceed the mean")]
    fn truncated_normal_rejects_min_above_mean() {
        let _ = TruncatedNormal::new(1.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_zero_mean() {
        let mut rng = seeded(1);
        let _ = exponential(&mut rng, 0.0);
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let dist = TruncatedNormal::from_mean_min(2_000.0, 100.0);
        let mut a = seeded(11);
        let mut b = seeded(11);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }
}
