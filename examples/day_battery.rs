//! A day in the pocket: 24 hours of diurnally modulated traffic, with the
//! energy eTrain saves converted into the paper's battery terms
//! (1700 mAh @ 3.7 V — Sec. II-D).
//!
//! ```text
//! cargo run --release --example day_battery
//! ```

use etrain::radio::Battery;
use etrain::sim::{Scenario, SchedulerKind};
use etrain::trace::diurnal::{generate_diurnal, DiurnalProfile, DAY_S};
use etrain::trace::packets::CargoWorkload;

fn main() {
    let packets = generate_diurnal(
        &CargoWorkload::paper_default(0.04),
        DiurnalProfile::evening_heavy(),
        0.0, // the day starts at midnight
        DAY_S,
        11,
    );
    println!(
        "=== 24 h, {} packets (evening-heavy), 3 IM train apps, 3G ===\n",
        packets.len()
    );

    let base = Scenario::paper_default()
        .duration_secs(DAY_S as u64)
        .packets(packets)
        .seed(11);
    let baseline = base.clone().scheduler(SchedulerKind::Baseline).run();
    let etrain = base
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .run();

    let battery = Battery::paper_reference();
    let saved = baseline.extra_energy_j - etrain.extra_energy_j;
    println!("baseline radio energy   {:>8.0} J", baseline.extra_energy_j);
    println!("eTrain radio energy     {:>8.0} J", etrain.extra_energy_j);
    println!("saved                   {:>8.0} J", saved);
    println!(
        "  = {:.1} % of a {:.0} mAh battery per day",
        battery.fraction_of_capacity(saved) * 100.0,
        battery.capacity_mah()
    );
    println!(
        "  = {:.1} extra hours of 55 mW standby",
        battery.standby_hours_equivalent(saved, 55.0)
    );
    println!(
        "\ncost: {:.0} s average delay on delay-tolerant traffic ({} deadline violations of {} packets)",
        etrain.normalized_delay_s,
        (etrain.deadline_violation_ratio * etrain.packets_completed as f64).round(),
        etrain.packets_completed,
    );
}
