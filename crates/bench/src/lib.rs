//! # etrain-bench — per-figure/table reproduction harness
//!
//! One experiment module per table and figure of the paper's evaluation,
//! each printing the same rows/series the paper reports. Every experiment
//! is exposed both as a library function (so integration tests can
//! smoke-run it) and as a binary:
//!
//! ```text
//! cargo run -p etrain-bench --release --bin fig7a          # full fidelity
//! cargo run -p etrain-bench --release --bin fig7a -- --quick
//! cargo run -p etrain-bench --release --bin repro_all      # everything
//! ```
//!
//! `--quick` shrinks horizons/sweeps for CI-speed smoke runs; the shapes
//! remain, the absolute numbers lose precision.
//!
//! The mapping from experiment id to paper artifact lives in `DESIGN.md`;
//! measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

pub mod experiments;

use etrain_sim::Table;

/// An experiment that reproduces one paper artifact.
pub struct Experiment {
    /// Short id (`fig7a`, `table1`, ...).
    pub id: &'static str,
    /// The paper artifact it reproduces.
    pub artifact: &'static str,
    /// Runs the experiment; `quick` trades fidelity for speed.
    pub run: fn(quick: bool) -> Vec<Table>,
}

/// All experiments in paper order, followed by the ablations.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1a",
            artifact: "Fig. 1(a): 4-hour standby energy vs number of IM apps",
            run: experiments::fig1a::run,
        },
        Experiment {
            id: "fig1b",
            artifact: "Fig. 1(b): heartbeat size and timing of three IM apps",
            run: experiments::fig1b::run,
        },
        Experiment {
            id: "fig2",
            artifact: "Fig. 2: piggybacking toy example (five 5 KB e-mails)",
            run: experiments::fig2::run,
        },
        Experiment {
            id: "fig3",
            artifact: "Fig. 3: heartbeat cycles with data traffic; NetEase doubling",
            run: experiments::fig3::run,
        },
        Experiment {
            id: "table1",
            artifact: "Table 1: detected heartbeat cycles per app and device",
            run: experiments::table1::run,
        },
        Experiment {
            id: "fig4",
            artifact: "Fig. 4: instantaneous power across RRC states for one heartbeat",
            run: experiments::fig4::run,
        },
        Experiment {
            id: "fig6",
            artifact: "Fig. 6: delay-cost profile functions f1, f2, f3",
            run: experiments::fig6::run,
        },
        Experiment {
            id: "fig7a",
            artifact: "Fig. 7(a): impact of the cost bound Θ",
            run: experiments::fig7a::run,
        },
        Experiment {
            id: "fig7b",
            artifact: "Fig. 7(b): E-D panel for k = 2..16",
            run: experiments::fig7b::run,
        },
        Experiment {
            id: "fig8a",
            artifact: "Fig. 8(a): E-D panel, eTrain vs PerES vs eTime vs baseline",
            run: experiments::fig8a::run,
        },
        Experiment {
            id: "fig8b",
            artifact: "Fig. 8(b): energy vs arrival rate λ at matched delay",
            run: experiments::fig8b::run,
        },
        Experiment {
            id: "fig10a",
            artifact: "Fig. 10(a): controlled experiment, impact of train apps",
            run: experiments::fig10a::run,
        },
        Experiment {
            id: "fig10b",
            artifact: "Fig. 10(b): controlled experiment, impact of Θ",
            run: experiments::fig10b::run,
        },
        Experiment {
            id: "fig10c",
            artifact: "Fig. 10(c): controlled experiment, impact of the deadline",
            run: experiments::fig10c::run,
        },
        Experiment {
            id: "fig11",
            artifact: "Fig. 11: energy saving by user activeness",
            run: experiments::fig11::run,
        },
        Experiment {
            id: "ablate_k",
            artifact: "Ablation: finite k vs the paper's deployed k = infinity",
            run: experiments::ablate_k::run,
        },
        Experiment {
            id: "ablate_jitter",
            artifact: "Ablation: heartbeat jitter sensitivity",
            run: experiments::ablate_jitter::run,
        },
        Experiment {
            id: "ablate_prediction",
            artifact: "Ablation: oracle bandwidth for PerES/eTime",
            run: experiments::ablate_prediction::run,
        },
        Experiment {
            id: "ablate_radio",
            artifact: "Ablation: 3G long tails vs WiFi-like short tails",
            run: experiments::ablate_radio::run,
        },
        Experiment {
            id: "ablate_dormancy",
            artifact: "Ablation: eTrain vs fast dormancy (promotion cost)",
            run: experiments::ablate_dormancy::run,
        },
        Experiment {
            id: "ablate_faults",
            artifact: "Ablation: lossy channel and outages (retries, wasted joules, abandonment)",
            run: experiments::ablate_faults::run,
        },
        Experiment {
            id: "offline_gap",
            artifact: "Extension: online eTrain vs the Sec. III offline optimum",
            run: experiments::offline_gap::run,
        },
        Experiment {
            id: "capture_study",
            artifact: "Extension: Sec. II-B capture analysis (Wireshark methodology)",
            run: experiments::capture_study::run,
        },
        Experiment {
            id: "ext_day",
            artifact: "Extension: 24-hour diurnal battery projection (3G vs LTE DRX)",
            run: experiments::ext_day::run,
        },
        Experiment {
            id: "ext_grid",
            artifact: "Extension: energy-saving surface over the Theta x lambda grid",
            run: experiments::ext_grid::run,
        },
        Experiment {
            id: "ext_push_poll",
            artifact: "Extension: push-fetch over heartbeats vs polling",
            run: experiments::ext_push_poll::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

/// Binary entry point shared by all `src/bin/*.rs` wrappers: runs the
/// experiment and prints its tables. CLI flags: `--quick` shrinks the run;
/// `--csv DIR` additionally writes each table as
/// `DIR/<experiment>_<index>.csv` for plotting.
///
/// # Panics
///
/// Panics if `id` is not in the registry (binaries are generated from it),
/// or if `--csv` is given without a directory or the directory cannot be
/// written.
pub fn run_binary(id: &str) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| args.get(i + 1).expect("--csv needs a directory").clone());

    let experiment = find(id).unwrap_or_else(|| panic!("unknown experiment `{id}`"));
    println!("# {} — {}", experiment.id, experiment.artifact);
    if quick {
        println!("# (quick mode: reduced horizons/sweeps)");
    }
    let tables = (experiment.run)(quick);
    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("creating the --csv directory");
        for (index, table) in tables.iter().enumerate() {
            let path = format!("{dir}/{id}_{index}.csv");
            std::fs::write(&path, table.to_csv()).expect("writing the CSV file");
            println!("# wrote {path}");
        }
    }
}
