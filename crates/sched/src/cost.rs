//! Delay-cost profile functions (paper Sec. VI-A, Fig. 6).
//!
//! Each cargo app registers a profile `φ_u(d)` mapping a packet's queueing
//! delay `d` to a user-experience cost. The paper uses three shapes,
//! inspired by PerES [15]:
//!
//! - **f1 (Mail)** — free before the deadline, then linear:
//!   `f1(d) = d/deadline − 1` for `d ≥ deadline`;
//! - **f2 (Weibo)** — linear before the deadline, constant after:
//!   `f2(d) = d/deadline` for `d ≤ deadline`, else `2`;
//! - **f3 (Cloud)** — linear before the deadline, three times steeper after:
//!   `f3(d) = d/deadline` for `d ≤ deadline`, else `3·d/deadline − 2`.

use serde::{Deserialize, Serialize};

/// A delay-cost profile function `φ(d)`.
///
/// All variants are parameterized by a deadline in seconds. The generic
/// variants allow the ablation experiments to explore other shapes while the
/// three constructors reproduce the paper's profiles exactly.
///
/// # Examples
///
/// ```
/// use etrain_sched::CostProfile;
///
/// let mail = CostProfile::mail(60.0);
/// assert_eq!(mail.cost(30.0), 0.0);          // free before deadline
/// assert_eq!(mail.cost(120.0), 1.0);         // d/deadline − 1
///
/// let weibo = CostProfile::weibo(30.0);
/// assert_eq!(weibo.cost(15.0), 0.5);         // d/deadline
/// assert_eq!(weibo.cost(300.0), 2.0);        // capped
///
/// let cloud = CostProfile::cloud(60.0);
/// assert_eq!(cloud.cost(120.0), 4.0);        // 3·d/deadline − 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostProfile {
    /// f1: zero before the deadline, `d/deadline − 1` after.
    DeadlineLinear {
        /// The deadline in seconds.
        deadline_s: f64,
    },
    /// f2: `d/deadline` before the deadline, a constant ceiling after.
    LinearThenConstant {
        /// The deadline in seconds.
        deadline_s: f64,
        /// The cost held after the deadline (paper: 2).
        ceiling: f64,
    },
    /// f3: `d/deadline` before the deadline,
    /// `steepness·d/deadline − (steepness − 1)` after.
    LinearThenSteep {
        /// The deadline in seconds.
        deadline_s: f64,
        /// The post-deadline slope multiplier (paper: 3).
        steepness: f64,
    },
}

impl CostProfile {
    /// The eTrain Mail profile f1 with the given deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not strictly positive.
    pub fn mail(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        CostProfile::DeadlineLinear { deadline_s }
    }

    /// The Luna Weibo profile f2 with the given deadline (ceiling 2).
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not strictly positive.
    pub fn weibo(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        CostProfile::LinearThenConstant {
            deadline_s,
            ceiling: 2.0,
        }
    }

    /// The eTrain Cloud profile f3 with the given deadline (steepness 3).
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not strictly positive.
    pub fn cloud(deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        CostProfile::LinearThenSteep {
            deadline_s,
            steepness: 3.0,
        }
    }

    /// Evaluates `φ(d)` for a delay of `delay_s` seconds (clamped at 0 for
    /// negative delays).
    pub fn cost(&self, delay_s: f64) -> f64 {
        let d = delay_s.max(0.0);
        match *self {
            CostProfile::DeadlineLinear { deadline_s } => {
                if d < deadline_s {
                    0.0
                } else {
                    d / deadline_s - 1.0
                }
            }
            CostProfile::LinearThenConstant {
                deadline_s,
                ceiling,
            } => {
                if d <= deadline_s {
                    (d / deadline_s).min(ceiling)
                } else {
                    ceiling
                }
            }
            CostProfile::LinearThenSteep {
                deadline_s,
                steepness,
            } => {
                if d <= deadline_s {
                    d / deadline_s
                } else {
                    steepness * d / deadline_s - (steepness - 1.0)
                }
            }
        }
    }

    /// The profile's deadline in seconds.
    pub fn deadline_s(&self) -> f64 {
        match *self {
            CostProfile::DeadlineLinear { deadline_s }
            | CostProfile::LinearThenConstant { deadline_s, .. }
            | CostProfile::LinearThenSteep { deadline_s, .. } => deadline_s,
        }
    }

    /// Returns the same profile shape with a different deadline (used by
    /// the Fig. 10(c) deadline sweep).
    ///
    /// # Panics
    ///
    /// Panics if `deadline_s` is not strictly positive.
    pub fn with_deadline(self, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        match self {
            CostProfile::DeadlineLinear { .. } => CostProfile::DeadlineLinear { deadline_s },
            CostProfile::LinearThenConstant { ceiling, .. } => CostProfile::LinearThenConstant {
                deadline_s,
                ceiling,
            },
            CostProfile::LinearThenSteep { steepness, .. } => CostProfile::LinearThenSteep {
                deadline_s,
                steepness,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_profile_matches_paper() {
        let f1 = CostProfile::mail(60.0);
        assert_eq!(f1.cost(0.0), 0.0);
        assert_eq!(f1.cost(59.9), 0.0);
        assert_eq!(f1.cost(60.0), 0.0); // d/deadline − 1 at the deadline
        assert_eq!(f1.cost(90.0), 0.5);
        assert_eq!(f1.cost(180.0), 2.0);
    }

    #[test]
    fn weibo_profile_matches_paper() {
        let f2 = CostProfile::weibo(30.0);
        assert_eq!(f2.cost(0.0), 0.0);
        assert_eq!(f2.cost(30.0), 1.0);
        assert_eq!(f2.cost(31.0), 2.0);
        assert_eq!(f2.cost(1e9), 2.0);
    }

    #[test]
    fn cloud_profile_matches_paper() {
        let f3 = CostProfile::cloud(60.0);
        assert_eq!(f3.cost(30.0), 0.5);
        assert_eq!(f3.cost(60.0), 1.0);
        // Continuity at the deadline, then 3× slope.
        assert!((f3.cost(60.0 + 1e-9) - 1.0).abs() < 1e-6);
        assert_eq!(f3.cost(120.0), 4.0);
    }

    #[test]
    fn all_profiles_monotone_nondecreasing() {
        let profiles = [
            CostProfile::mail(45.0),
            CostProfile::weibo(45.0),
            CostProfile::cloud(45.0),
        ];
        for p in profiles {
            let mut prev = 0.0;
            for i in 0..400 {
                let c = p.cost(i as f64);
                assert!(c >= prev - 1e-12, "{p:?} decreased at {i}");
                prev = c;
            }
        }
    }

    #[test]
    fn negative_delay_clamps_to_zero_cost() {
        assert_eq!(CostProfile::weibo(30.0).cost(-5.0), 0.0);
        assert_eq!(CostProfile::cloud(30.0).cost(-5.0), 0.0);
    }

    #[test]
    fn with_deadline_preserves_shape() {
        let f3 = CostProfile::cloud(60.0).with_deadline(10.0);
        assert_eq!(f3.deadline_s(), 10.0);
        assert_eq!(f3.cost(20.0), 4.0); // 3·2 − 2
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = CostProfile::mail(0.0);
    }
}
