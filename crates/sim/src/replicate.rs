//! Replication across seeds: mean ± deviation statistics for every metric,
//! so experiment conclusions do not rest on a single random draw.

use serde::{Deserialize, Serialize};

use crate::metrics::RunReport;
use crate::runner::RunGrid;
use crate::scenario::Scenario;

/// Mean and sample standard deviation of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std_dev: f64,
}

impl Stat {
    /// Mean and sample standard deviation of `samples`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a mean of zero samples is not a number,
    /// and silently returning NaN here has historically poisoned every
    /// downstream aggregate.
    pub fn from_samples(samples: &[f64]) -> Stat {
        assert!(
            !samples.is_empty(),
            "Stat::from_samples requires at least one sample"
        );
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Stat {
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Renders as `mean ± std` with one decimal.
    pub fn display(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std_dev)
    }
}

/// The p50/p95/p99 of one metric across a sample population — the
/// distribution view fleet experiments report next to [`Stat`]'s mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// The median (nearest-rank 50th percentile).
    pub p50: f64,
    /// The nearest-rank 95th percentile.
    pub p95: f64,
    /// The nearest-rank 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `samples`, computed **in place** via
    /// `select_nth_unstable` — three expected-O(n) selections, no sorted
    /// clone. `Stat::from_samples`-style hardening for huge populations:
    /// percentiles over 10⁶ per-device energies cost three partitions of
    /// one existing buffer, not an 8 MB copy plus an O(n log n) sort.
    ///
    /// `samples` is reordered (partially partitioned) on return; callers
    /// that need the original order must not — by design — pay for a
    /// defensive clone here, they clone at the call site where the cost is
    /// visible.
    ///
    /// Nearest-rank definition: percentile `p` is the `⌈p/100 · n⌉`-th
    /// smallest sample (1-indexed), so every reported value is an actual
    /// sample and `p100` would be the maximum.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice, exactly like [`Stat::from_samples`] — a
    /// percentile of zero samples is not a number.
    ///
    /// # Examples
    ///
    /// ```
    /// use etrain_sim::Percentiles;
    ///
    /// let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
    /// let p = Percentiles::from_samples_mut(&mut samples);
    /// assert_eq!((p.p50, p.p95, p.p99), (50.0, 95.0, 99.0));
    /// ```
    pub fn from_samples_mut(samples: &mut [f64]) -> Percentiles {
        assert!(
            !samples.is_empty(),
            "Percentiles::from_samples_mut requires at least one sample"
        );
        let mut at = |p: f64| -> f64 {
            let rank = (p / 100.0 * samples.len() as f64).ceil() as usize;
            let index = rank.clamp(1, samples.len()) - 1;
            *samples
                .select_nth_unstable_by(index, |a, b| a.total_cmp(b))
                .1
        };
        Percentiles {
            p50: at(50.0),
            p95: at(95.0),
            p99: at(99.0),
        }
    }
}

/// Aggregate of several seeded runs of the same scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedReport {
    /// The scheduler name (identical across replications).
    pub scheduler: String,
    /// Number of replications.
    pub replications: usize,
    /// Radio energy above idle, in joules.
    pub extra_energy_j: Stat,
    /// Normalized delay, in seconds.
    pub normalized_delay_s: Stat,
    /// Deadline violation ratio.
    pub deadline_violation_ratio: Stat,
    /// The individual reports, in seed order.
    pub runs: Vec<RunReport>,
}

/// Runs `scenario` once per seed — concurrently, through the
/// deterministic [`RunGrid`] — and aggregates the paper's three metrics.
/// `runs` is in seed order regardless of worker count.
///
/// # Panics
///
/// Panics if `seeds` is empty.
///
/// # Examples
///
/// ```
/// use etrain_sim::{replicate, Scenario, SchedulerKind};
///
/// let base = Scenario::paper_default()
///     .duration_secs(900)
///     .scheduler(SchedulerKind::ETrain { theta: 2.0, k: None });
/// let agg = replicate(&base, &[1, 2, 3]);
/// assert_eq!(agg.replications, 3);
/// assert!(agg.extra_energy_j.mean > 0.0);
/// ```
pub fn replicate(scenario: &Scenario, seeds: &[u64]) -> ReplicatedReport {
    assert!(!seeds.is_empty(), "at least one seed is required");
    let runs: Vec<RunReport> = RunGrid::over_seeds(scenario, seeds).run();
    let pick = |f: fn(&RunReport) -> f64| -> Stat {
        Stat::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
    };
    ReplicatedReport {
        scheduler: runs[0].scheduler.clone(),
        replications: runs.len(),
        extra_energy_j: pick(|r| r.extra_energy_j),
        normalized_delay_s: pick(|r| r.normalized_delay_s),
        deadline_violation_ratio: pick(|r| r.deadline_violation_ratio),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SchedulerKind;

    #[test]
    fn statistics_are_correct_for_known_samples() {
        let stat = Stat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((stat.mean - 2.0).abs() < 1e-12);
        assert!((stat.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(stat.display(), "2.0 ± 1.0");
    }

    #[test]
    fn single_sample_has_zero_deviation() {
        let stat = Stat::from_samples(&[5.0]);
        assert_eq!(stat.std_dev, 0.0);
    }

    #[test]
    fn replication_aggregates_distinct_seeds() {
        let base = Scenario::paper_default()
            .duration_secs(600)
            .scheduler(SchedulerKind::Baseline);
        let agg = replicate(&base, &[1, 2, 3, 4]);
        assert_eq!(agg.replications, 4);
        assert_eq!(agg.runs.len(), 4);
        // Different seeds produce different energies → non-zero deviation.
        assert!(agg.extra_energy_j.std_dev > 0.0);
        // Baseline delay is 0 in every replication.
        assert_eq!(agg.normalized_delay_s.mean, 0.0);
        assert_eq!(agg.normalized_delay_s.std_dev, 0.0);
    }

    #[test]
    fn etrain_beats_baseline_in_expectation() {
        let seeds = [1, 2, 3, 4, 5];
        let baseline = replicate(
            &Scenario::paper_default()
                .duration_secs(1200)
                .scheduler(SchedulerKind::Baseline),
            &seeds,
        );
        let etrain = replicate(
            &Scenario::paper_default()
                .duration_secs(1200)
                .scheduler(SchedulerKind::ETrain {
                    theta: 2.0,
                    k: None,
                }),
            &seeds,
        );
        assert!(
            etrain.extra_energy_j.mean + etrain.extra_energy_j.std_dev
                < baseline.extra_energy_j.mean,
            "eTrain {} ± {} vs baseline {}",
            etrain.extra_energy_j.mean,
            etrain.extra_energy_j.std_dev,
            baseline.extra_energy_j.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_rejected() {
        let _ = replicate(&Scenario::paper_default(), &[]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_slice_rejected() {
        let _ = Stat::from_samples(&[]);
    }

    #[test]
    fn percentiles_match_sorted_nearest_rank() {
        // Compare the in-place selection against the obvious sorted-copy
        // definition on a deliberately shuffled population.
        let mut samples: Vec<f64> = (0..10_007)
            .map(|i| f64::from((i * 7919) % 10_007))
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let expect = |p: f64| {
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let got = Percentiles::from_samples_mut(&mut samples);
        assert_eq!(got.p50.to_bits(), expect(50.0).to_bits());
        assert_eq!(got.p95.to_bits(), expect(95.0).to_bits());
        assert_eq!(got.p99.to_bits(), expect(99.0).to_bits());
    }

    #[test]
    fn percentiles_of_one_sample_are_that_sample() {
        let p = Percentiles::from_samples_mut(&mut [3.5]);
        assert_eq!((p.p50, p.p95, p.p99), (3.5, 3.5, 3.5));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn percentiles_reject_empty_slice() {
        let _ = Percentiles::from_samples_mut(&mut []);
    }

    #[test]
    fn replication_is_identical_serial_and_parallel() {
        let base = Scenario::paper_default()
            .duration_secs(600)
            .scheduler(SchedulerKind::Baseline);
        let parallel = replicate(&base, &[1, 2, 3]);
        let serial: Vec<RunReport> = [1u64, 2, 3]
            .iter()
            .map(|&seed| base.clone().seed(seed).run())
            .collect();
        assert_eq!(parallel.runs, serial);
    }
}
