//! The chaos campaign driver: seeded scenario fuzzing under the strict
//! oracle, automatic shrinking of failures into repro artifacts, oracle
//! self-tests, and kill/resume crash-consistency trials.
//!
//! Flags:
//! - `--seeds N` — campaign width: N consecutive seeds (default 100);
//! - `--start-seed S` — first seed (default 0; CI passes a date-derived
//!   value so every night sweeps fresh cases);
//! - `--quick` — cap scenario horizons at 600 s for fast wide sweeps;
//! - `--kill-resume N` — number of kill/resume trials (default 100);
//! - `--self-test` / `--no-self-test` — force the injected-corruption
//!   self-test on/off (default: on);
//! - `--jobs N` — campaign worker count (default: `ETRAIN_JOBS`, then
//!   the machine's available parallelism);
//! - `--out DIR` — where repro artifacts and the JSON report go
//!   (default `BENCH_chaos_repros`);
//! - `--repro FILE` — replay a repro artifact instead of running the
//!   campaign; exits 0 iff the recorded failure reproduces.
//!
//! Every campaign finding is shrunk to a minimal [`ReproCase`] and
//! written to `<out>/repro_seed<seed>.json`; the machine-readable
//! summary (campaign, self-test, kill/resume) lands in
//! `<out>/chaos_report.json`. The exit code is non-zero when any tier
//! found a problem, so CI can gate on it directly.

use etrain_chaos::{
    campaign_cases, run_campaign, run_kill_resume, shrink, ChaosCase, Corruption, ReproCase,
};
use etrain_sim::{CasePlan, EngineKind, SchedulerKind};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn numeric_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    flag_value(args, flag).map_or(default, |raw| {
        raw.parse()
            .unwrap_or_else(|_| panic!("{flag} {raw:?}: expected a number"))
    })
}

fn main() {
    etrain_bench::validate_env_knobs();
    let args: Vec<String> = std::env::args().collect();

    if let Some(path) = flag_value(&args, "--repro") {
        std::process::exit(replay(&path));
    }

    let seeds: u64 = numeric_flag(&args, "--seeds", 100);
    let start_seed: u64 = numeric_flag(&args, "--start-seed", 0);
    let killres_trials: usize = numeric_flag(&args, "--kill-resume", 100);
    let quick = args.iter().any(|a| a == "--quick");
    let self_test = !args.iter().any(|a| a == "--no-self-test");
    let jobs: usize = numeric_flag(&args, "--jobs", etrain_bench::default_jobs());
    let out_dir = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_chaos_repros".to_owned());
    std::fs::create_dir_all(&out_dir).expect("creating the output directory");

    let mut problems = 0usize;
    let mut report_sections: Vec<String> = Vec::new();

    // Tier 1: the campaign.
    eprintln!(
        "# campaign: {seeds} seeds from {start_seed} on {jobs} worker(s){}",
        if quick { " (quick)" } else { "" }
    );
    let cases = campaign_cases(start_seed, seeds, quick);
    let campaign = run_campaign(&cases, jobs);
    println!(
        "campaign: {} cases, {} finding(s)",
        campaign.cases_run,
        campaign.findings.len()
    );
    for finding in &campaign.findings {
        problems += 1;
        println!("  FINDING {}: {}", finding.case.label(), finding.failure);
        match shrink(&finding.case) {
            Some(repro) => {
                let path = format!("{out_dir}/repro_seed{}.json", finding.case.plan.seed);
                std::fs::write(&path, repro.to_json()).expect("writing the repro artifact");
                println!(
                    "    shrunk to {} events ({}); wrote {path}",
                    repro.events, repro.signature
                );
            }
            None => println!("    (failure did not reproduce under the shrinker)"),
        }
    }
    report_sections.push(format!(
        "\"campaign\":{}",
        serde_json::to_string(&campaign).expect("campaign reports serialize")
    ));

    // Tier 2: the injected-corruption self-test.
    if self_test {
        let mut plan = CasePlan::from_seed(start_seed.wrapping_add(6), false);
        plan.horizon_s = plan.horizon_s.min(900);
        let mut rows = Vec::new();
        for corruption in Corruption::all() {
            let case = ChaosCase {
                plan: plan.clone(),
                kind: SchedulerKind::Baseline,
                // Follow the campaign's parity convention so nightly
                // self-tests exercise both kernels as the start seed
                // advances.
                engine: if plan.seed % 2 == 0 {
                    EngineKind::Slot
                } else {
                    EngineKind::Event
                },
                corruption: Some(corruption),
            };
            match shrink(&case) {
                Some(repro) => {
                    let ok = repro.events <= 10;
                    if !ok {
                        problems += 1;
                    }
                    let path = format!("{out_dir}/selftest_{corruption:?}.json");
                    std::fs::write(&path, repro.to_json()).expect("writing the repro artifact");
                    println!(
                        "self-test {corruption:?}: caught, shrunk to {} events ({}), wrote {path}{}",
                        repro.events,
                        repro.signature,
                        if ok { "" } else { " — TOO LARGE" }
                    );
                    rows.push(format!(
                        "{{\"corruption\":\"{corruption:?}\",\"caught\":true,\"events\":{}}}",
                        repro.events
                    ));
                }
                None => {
                    problems += 1;
                    println!("self-test {corruption:?}: NOT CAUGHT");
                    rows.push(format!(
                        "{{\"corruption\":\"{corruption:?}\",\"caught\":false}}"
                    ));
                }
            }
        }
        report_sections.push(format!("\"self_test\":[{}]", rows.join(",")));
    }

    // Tier 3: kill/resume crash consistency. Trials are spread over
    // seeds at 4 trials per seed.
    let killres_seeds: Vec<u64> = (0..killres_trials.div_ceil(4) as u64)
        .map(|i| start_seed.wrapping_add(i))
        .collect();
    let killres = run_kill_resume(&killres_seeds, 4);
    let divergent = killres.trials.len() - killres.identical_count();
    problems += divergent;
    println!(
        "kill/resume: {} trials, {} identical, {} divergent",
        killres.trials.len(),
        killres.identical_count(),
        divergent
    );
    for trial in killres.trials.iter().filter(|t| !t.identical) {
        println!(
            "  DIVERGED seed={} kind={} kill={} cadence={}: {}",
            trial.seed,
            trial.kind,
            trial.kill_after_events,
            trial.cadence_slots,
            trial.detail.as_deref().unwrap_or("?")
        );
    }
    report_sections.push(format!(
        "\"kill_resume\":{}",
        serde_json::to_string(&killres).expect("kill/resume reports serialize")
    ));

    let report_path = format!("{out_dir}/chaos_report.json");
    std::fs::write(&report_path, format!("{{{}}}", report_sections.join(",")))
        .expect("writing the chaos report");
    eprintln!("# wrote {report_path}");

    if problems > 0 {
        eprintln!("# {problems} problem(s) found");
        std::process::exit(1);
    }
    eprintln!("# clean");
}

/// Replays a repro artifact; returns the process exit code.
fn replay(path: &str) -> i32 {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(error) => {
            eprintln!("error: cannot read {path}: {error}");
            return 2;
        }
    };
    let repro = match ReproCase::from_json(&raw) {
        Ok(repro) => repro,
        Err(error) => {
            eprintln!("error: {error}");
            return 2;
        }
    };
    println!(
        "replaying {} ({} events, expecting {})",
        repro.case.label(),
        repro.events,
        repro.signature
    );
    match repro.replay() {
        Ok(failure) => {
            println!("reproduced: {failure}");
            0
        }
        Err(divergence) => {
            eprintln!("error: {divergence}");
            1
        }
    }
}
