//! Workspace-level property tests: invariants that must hold across the
//! whole pipeline for arbitrary workloads and configurations.

use etrain::sim::{BandwidthSource, Scenario, SchedulerKind};
use etrain::trace::packets::{CargoAppSpec, CargoWorkload};
use etrain::trace::rng::TruncatedNormal;
use proptest::prelude::*;

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Baseline),
        (
            0.0f64..6.0,
            prop_oneof![Just(None), (1usize..32).prop_map(Some)]
        )
            .prop_map(|(theta, k)| SchedulerKind::ETrain { theta, k }),
        (0.02f64..4.0).prop_map(|omega| SchedulerKind::PerEs { omega }),
        (1_000.0f64..200_000.0).prop_map(|v_bytes| SchedulerKind::ETime { v_bytes }),
    ]
}

fn arb_workload() -> impl Strategy<Value = CargoWorkload> {
    prop::collection::vec((10.0f64..200.0, 500.0f64..50_000.0), 1..4).prop_map(|specs| {
        CargoWorkload::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (interarrival, mean_size))| {
                    CargoAppSpec::new(
                        format!("app{i}"),
                        interarrival,
                        TruncatedNormal::from_mean_min(mean_size, mean_size / 10.0),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No packet is ever lost or duplicated, energy components are
    /// non-negative and consistent, and ratios stay in range — for every
    /// scheduler and workload.
    #[test]
    fn pipeline_invariants(
        kind in arb_scheduler(),
        workload in arb_workload(),
        seed in 0u64..1000,
    ) {
        // Profiles must cover the workload's apps; reuse the paper trio
        // truncated/extended to the workload size.
        let mut profiles = etrain::sched::AppProfile::paper_defaults();
        profiles.truncate(workload.len().max(1));
        while profiles.len() < workload.len() {
            profiles.push(etrain::sched::AppProfile::new(
                format!("extra{}", profiles.len()),
                etrain::sched::CostProfile::weibo(120.0),
            ));
        }
        let generated = workload.generate(900.0, seed).len();
        let report = Scenario::paper_default()
            .duration_secs(900)
            .workload(workload)
            .profiles(profiles)
            .scheduler(kind)
            .seed(seed)
            .run();

        prop_assert_eq!(report.packets_completed + report.packets_unfinished, generated);
        prop_assert!(report.transmission_energy_j >= 0.0);
        prop_assert!(report.tail_energy_j >= 0.0);
        prop_assert!((report.extra_energy_j
            - report.transmission_energy_j
            - report.tail_energy_j).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&report.deadline_violation_ratio));
        prop_assert!(report.normalized_delay_s >= 0.0);
        prop_assert!(report.busy_time_s >= 0.0 && report.busy_time_s <= 900.0 + 1e-6);
    }

    /// The baseline never defers: its normalized delay is always ~0 and it
    /// never leaves packets in a queue (only in-flight work may remain).
    #[test]
    fn baseline_has_zero_scheduling_delay(seed in 0u64..1000) {
        let report = Scenario::paper_default()
            .duration_secs(600)
            .scheduler(SchedulerKind::Baseline)
            .seed(seed)
            .run();
        prop_assert!(report.normalized_delay_s < 1e-9);
    }

    /// Raising Θ with everything else fixed never increases energy
    /// (more deferral can only merge more tails) — checked on a
    /// constant-bandwidth channel where transfer times cannot shift.
    #[test]
    fn theta_monotonicity_on_constant_channel(seed in 0u64..200) {
        let base = Scenario::paper_default()
            .duration_secs(1200)
            .bandwidth(BandwidthSource::Constant(500_000.0))
            .seed(seed);
        let low = base.clone()
            .scheduler(SchedulerKind::ETrain { theta: 0.5, k: None })
            .run();
        let high = base
            .scheduler(SchedulerKind::ETrain { theta: 8.0, k: None })
            .run();
        // Allow a small tolerance: deferral can push work past the horizon
        // boundary, truncating different amounts of tail.
        prop_assert!(
            high.extra_energy_j <= low.extra_energy_j * 1.05 + 5.0,
            "theta 8 used {} J vs theta 0.5 {} J (seed {})",
            high.extra_energy_j, low.extra_energy_j, seed
        );
    }

    /// The same (scenario, seed) is always bitwise reproducible.
    #[test]
    fn determinism(kind in arb_scheduler(), seed in 0u64..100) {
        let make = || Scenario::paper_default()
            .duration_secs(600)
            .scheduler(kind)
            .seed(seed)
            .run();
        prop_assert_eq!(make(), make());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The capture classifier finds every planted heartbeat flow (recall 1)
    /// without false positives (precision 1) across capture shapes.
    #[test]
    fn capture_classifier_is_exact(
        burst_interarrival in 60.0f64..400.0,
        noise_rate in 0.0f64..0.1,
        seed in 0u64..500,
    ) {
        use etrain::hb::identify_heartbeat_flows;
        use etrain::trace::capture::{synthesize_capture, CaptureConfig};
        use etrain::trace::heartbeats::TrainAppSpec;

        let capture = synthesize_capture(&CaptureConfig {
            trains: TrainAppSpec::paper_trio(),
            burst_interarrival_s: burst_interarrival,
            burst_len_max: 40,
            noise_rate,
            duration_s: 3600.0,
        }, seed);
        let flows = identify_heartbeat_flows(&capture, &Default::default());
        let mut found: Vec<_> = flows.iter().map(|f| f.flow).collect();
        found.sort();
        let mut truth: Vec<_> = capture.truth.iter().map(|(k, _)| *k).collect();
        truth.sort();
        prop_assert_eq!(found, truth);
    }

    /// The live energy meter never reports negative savings for schedules
    /// where decisions only defer (decided_at >= submitted_at) onto a
    /// single aggregation point — deferral toward one instant can only
    /// merge tails.
    #[test]
    fn meter_savings_nonnegative_for_single_point_aggregation(
        submit_times in prop::collection::vec(0.0f64..400.0, 1..10),
        anchor in 400.0f64..600.0,
    ) {
        use etrain::core::{EnergyMeter, RequestId, TransmitDecision};
        use etrain::radio::RadioParams;
        use etrain::trace::{CargoAppId, TrainAppId};

        let mut meter = EnergyMeter::new(RadioParams::galaxy_s4_3g(), 450_000.0);
        for (i, &t) in submit_times.iter().enumerate() {
            meter.record_decision(&TransmitDecision {
                request: RequestId(i as u64),
                app: CargoAppId(0),
                size_bytes: 2_000,
                decided_at_s: anchor,
                submitted_at_s: t,
                piggybacked_on: Some(TrainAppId(0)),
            });
        }
        prop_assert!(meter.saved_j(1000.0) >= -1e-6,
            "negative saving {}", meter.saved_j(1000.0));
    }

    /// Bounded admission in the live core: for any shed policy, capacity
    /// and interleaving of heartbeats, the deferred backlog never exceeds
    /// the global capacity and every submission is accounted for exactly
    /// once — still pending, decided, or shed (request conservation).
    #[test]
    fn core_admission_bounds_backlog_and_conserves_requests(
        policy in prop_oneof![
            Just(etrain::sched::ShedPolicy::RejectNew),
            Just(etrain::sched::ShedPolicy::DropLowestValue),
            Just(etrain::sched::ShedPolicy::ForceFlushOldest),
        ],
        global_cap in 1usize..8,
        per_app_cap in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        ops in prop::collection::vec(
            (0usize..3, 1_000u64..50_000, 0.0f64..5.0, prop::bool::weighted(0.15)),
            1..60,
        ),
    ) {
        use etrain::core::{AdmissionConfig, CoreConfig, ETrainCore, TransmitRequest};
        use etrain::sched::AppProfile;

        let mut admission = AdmissionConfig::unbounded()
            .with_global_capacity(global_cap)
            .with_policy(policy);
        if let Some(cap) = per_app_cap {
            admission = admission.with_per_app_capacity(cap);
        }
        let mut core = ETrainCore::new(CoreConfig {
            theta: 1e9, // defer everything, so the queues actually fill
            admission,
            ..CoreConfig::default()
        });
        let train = core.register_train("WeChat");
        let apps: Vec<_> = AppProfile::paper_defaults()
            .into_iter()
            .map(|p| core.register_cargo(p))
            .collect();

        let mut now = 0.0;
        for (app_idx, size, dt, heartbeat) in ops {
            now += dt;
            if heartbeat {
                core.on_heartbeat(train, now).unwrap();
            }
            core.submit(apps[app_idx], TransmitRequest::upload(size), now).unwrap();
            prop_assert!(
                core.pending_requests() <= global_cap,
                "backlog {} exceeds global capacity {global_cap}",
                core.pending_requests()
            );
            let stats = core.stats();
            prop_assert_eq!(
                stats.submitted,
                core.pending_requests() + stats.decided + stats.shed,
                "conservation broken: {:?}", stats
            );
        }
    }

    /// The same bounds at the scheduler layer, where the per-app backlog
    /// is observable: the guarded scheduler never exceeds either capacity
    /// no matter the policy, and conserves packets (admitted arrivals are
    /// pending, released, or shed — never lost or duplicated).
    #[test]
    fn guarded_admission_bounds_every_app_and_conserves_packets(
        policy in prop_oneof![
            Just(etrain::sched::ShedPolicy::RejectNew),
            Just(etrain::sched::ShedPolicy::DropLowestValue),
            Just(etrain::sched::ShedPolicy::ForceFlushOldest),
        ],
        global_cap in prop_oneof![Just(None), (1usize..8).prop_map(Some)],
        per_app_cap in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        arrivals in prop::collection::vec((0usize..3, 500u64..20_000, 0.0f64..5.0), 1..60),
    ) {
        use etrain::sched::{
            AdmissionConfig, AppProfile, ETrainConfig, GuardedScheduler, HealthConfig,
            Scheduler,
        };
        use etrain::trace::packets::Packet;
        use etrain::trace::CargoAppId;

        let mut admission = AdmissionConfig::unbounded().with_policy(policy);
        if let Some(cap) = global_cap {
            admission = admission.with_global_capacity(cap);
        }
        if let Some(cap) = per_app_cap {
            admission = admission.with_per_app_capacity(cap);
        }
        let mut sched = GuardedScheduler::new(
            ETrainConfig { theta: 1e9, k: None, slot_s: 1.0 },
            HealthConfig::default(),
            AppProfile::paper_defaults(),
        )
        .with_admission(admission);

        let mut now = 0.0;
        let mut released = 0usize;
        let mut shed = 0usize;
        for (i, (app_idx, size, dt)) in arrivals.iter().enumerate() {
            now += dt;
            let packet = Packet {
                id: i as u64,
                app: CargoAppId(*app_idx),
                arrival_s: now,
                size_bytes: *size,
            };
            released += sched.on_arrival(packet, now).unwrap().len();
            shed += sched.take_shed().len();

            if let Some(cap) = global_cap {
                prop_assert!(sched.pending() <= cap, "global backlog over {cap}");
            }
            if let Some(cap) = per_app_cap {
                for app in 0..3 {
                    prop_assert!(
                        sched.pending_for(CargoAppId(app)) <= cap,
                        "app {app} backlog {} over per-app capacity {cap}",
                        sched.pending_for(CargoAppId(app))
                    );
                }
            }
            prop_assert_eq!(
                i + 1,
                sched.pending() + released + shed,
                "packet conservation broken after arrival {i}"
            );
        }
    }

    /// Diurnal generation respects the horizon, sorting and app bounds for
    /// arbitrary profiles.
    #[test]
    fn diurnal_traces_are_well_formed(
        peak in 0.0f64..24.0,
        amplitude in 0.0f64..1.0,
        start in 0.0f64..24.0,
        seed in 0u64..300,
    ) {
        use etrain::trace::diurnal::{generate_diurnal, DiurnalProfile};
        use etrain::trace::packets::CargoWorkload;

        let packets = generate_diurnal(
            &CargoWorkload::paper_default(0.08),
            DiurnalProfile::new(peak, amplitude),
            start,
            7200.0,
            seed,
        );
        for w in packets.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for (i, p) in packets.iter().enumerate() {
            prop_assert_eq!(p.id, i as u64);
            prop_assert!(p.arrival_s >= 0.0 && p.arrival_s < 7200.0);
            prop_assert!(p.app.index() < 3);
        }
    }
}
