//! Deterministic parallel execution of scenario grids.
//!
//! Every experiment layer above the simulator — Θ sweeps, E-D curves,
//! seed replication, scheduler comparisons, the bench harness — is a grid
//! of independent [`Scenario`] runs. [`RunGrid`] executes such a grid on a
//! crossbeam-channel worker pool and guarantees the result is **bit-for-bit
//! identical** to serial execution:
//!
//! - each job is an independent, deterministic function of its
//!   [`RunSpec`] (the engine holds no global state, and per-run RNG
//!   streams are derived from the scenario seed);
//! - jobs complete out of order, but results are re-assembled in
//!   job-index order before they are returned;
//! - trace synthesis is shared through a [`TraceCache`] keyed by
//!   [`Scenario::trace_key`], which never changes what is generated —
//!   only how often.
//!
//! The pool is sized from `std::thread::available_parallelism`, can be
//! overridden by the `ETRAIN_JOBS` environment variable or the
//! [`RunGrid::jobs`] builder, and `jobs = 1` degenerates to fully in-line
//! serial execution (no threads spawned at all).
//!
//! # Robustness
//!
//! Every job runs under [`std::panic::catch_unwind`]: a panicking job
//! becomes a [`RunError::Panicked`] entry (carrying the panic payload)
//! instead of killing the worker pool, and every other job still
//! completes. Long grids can additionally checkpoint completed reports
//! into a [`GridCheckpoint`] (see [`RunGrid::run_with_checkpoints`]) and
//! resume after a crash; resumed jobs are bit-for-bit identical to a
//! fresh run because each job is a pure function of its spec.

use std::collections::HashMap;
use std::sync::Mutex;

use crossbeam::channel;
use etrain_obs::{Journal, ObsMode};

use crate::metrics::RunReport;
use crate::oracle::OracleMode;
use crate::scenario::{Scenario, ScenarioError, SchedulerKind, TraceBundle};

/// The environment variable that overrides the worker-pool size.
pub const JOBS_ENV: &str = "ETRAIN_JOBS";

/// One job of a grid: a scenario plus the labelling that ties its report
/// back to the experiment axis that produced it.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Human-readable job label (`"Θ=0.2"`, `"seed=7"`, a scheduler
    /// display name, ...). Used in error messages and result tables.
    pub label: String,
    /// The swept knob value, when the grid has a numeric axis.
    pub knob: Option<f64>,
    /// The full scenario to run.
    pub scenario: Scenario,
}

impl RunSpec {
    /// A job with a label and no numeric knob.
    pub fn new(label: impl Into<String>, scenario: Scenario) -> Self {
        RunSpec {
            label: label.into(),
            knob: None,
            scenario,
        }
    }

    /// A job on a numeric axis (Θ, λ, deadline, seed, ...).
    pub fn with_knob(label: impl Into<String>, knob: f64, scenario: Scenario) -> Self {
        RunSpec {
            label: label.into(),
            knob: Some(knob),
            scenario,
        }
    }
}

/// A grid job that could not produce a report: its scenario failed
/// validation, or it panicked and was isolated by the pool.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The job's scenario failed [`Scenario::validate`].
    Scenario {
        /// Index of the failing job in the grid.
        index: usize,
        /// The failing job's label.
        label: String,
        /// Why the scenario cannot run.
        error: ScenarioError,
    },
    /// The job panicked mid-run. The pool caught the unwind, so every
    /// other job still completed; only this entry is lost.
    Panicked {
        /// Index of the panicking job in the grid.
        index: usize,
        /// The panicking job's label.
        label: String,
        /// The panic payload, stringified.
        payload: String,
    },
    /// A resume checkpoint does not belong to this grid: its job count or
    /// shape fingerprint disagrees with the grid it was handed to.
    /// Nothing has run when this is returned — the caller kept a stale or
    /// foreign checkpoint file.
    CheckpointMismatch {
        /// The grid's own value (job count or fingerprint), rendered.
        expected: String,
        /// The checkpoint's value, rendered.
        found: String,
    },
}

impl RunError {
    /// Index of the failing job in the grid (`usize::MAX` for errors that
    /// concern the whole grid rather than one job, like a rejected resume
    /// checkpoint).
    pub fn index(&self) -> usize {
        match self {
            RunError::Scenario { index, .. } | RunError::Panicked { index, .. } => *index,
            RunError::CheckpointMismatch { .. } => usize::MAX,
        }
    }

    /// The failing job's label.
    pub fn label(&self) -> &str {
        match self {
            RunError::Scenario { label, .. } | RunError::Panicked { label, .. } => label,
            RunError::CheckpointMismatch { .. } => "resume checkpoint",
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Scenario {
                index,
                label,
                error,
            } => write!(f, "grid job #{index} ({label}): {error}"),
            RunError::Panicked {
                index,
                label,
                payload,
            } => write!(f, "grid job #{index} ({label}) panicked: {payload}"),
            RunError::CheckpointMismatch { expected, found } => write!(
                f,
                "resume checkpoint is from a different grid: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Scenario { error, .. } => Some(error),
            RunError::Panicked { .. } | RunError::CheckpointMismatch { .. } => None,
        }
    }
}

/// One journaled job's reassembly slot: unfilled, or the job's report
/// plus its (optional) journal, or its failure.
type JournaledSlot = Option<Result<(RunReport, Option<Journal>), JobError>>;

/// A job failure before attribution to a grid index.
#[derive(Debug)]
enum JobError {
    Scenario(ScenarioError),
    Panicked(String),
}

impl JobError {
    fn into_run_error(self, index: usize, label: String) -> RunError {
        match self {
            JobError::Scenario(error) => RunError::Scenario {
                index,
                label,
                error,
            },
            JobError::Panicked(payload) => RunError::Panicked {
                index,
                label,
                payload,
            },
        }
    }
}

/// A resumable snapshot of a grid's completed jobs, produced by
/// [`RunGrid::run_with_checkpoints`]. Serializable, so a long grid can
/// persist it periodically and survive a process crash: resuming skips
/// every completed job and — because each job is a pure function of its
/// spec — yields reports bit-for-bit identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GridCheckpoint {
    /// Binds the checkpoint to the grid shape it was taken from (job
    /// labels, knobs, trace keys and schedulers); resuming with a
    /// mismatched grid is rejected.
    fingerprint: u64,
    /// One slot per grid job; `Some` holds the completed report.
    slots: Vec<Option<RunReport>>,
    /// Mid-run engine snapshots for jobs that were *in flight* when the
    /// checkpoint was persisted (see [`crate::EngineSnapshot`]): a durable
    /// partial lets a resumed job fast-forward by replay instead of
    /// starting over. `None` in checkpoints written before this field
    /// existed (an `Option` deserializes from an absent field), and an
    /// entry is cleared once its job's report lands.
    partials: Option<Vec<Option<crate::engine::EngineSnapshot>>>,
}

impl GridCheckpoint {
    /// Number of jobs in the checkpointed grid.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the checkpointed grid has no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of jobs with a completed report.
    pub fn completed(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether every job has completed.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Indices of the completed jobs, ascending.
    pub fn completed_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    /// The completed report of job `index`, if any.
    pub fn report(&self, index: usize) -> Option<&RunReport> {
        self.slots.get(index).and_then(Option::as_ref)
    }

    /// Consumes a complete checkpoint into its reports in job order;
    /// `None` while any job is still pending.
    pub fn into_reports(self) -> Option<Vec<RunReport>> {
        self.slots.into_iter().collect()
    }

    /// Records a durable mid-run engine snapshot for job `index`, so a
    /// crash between full-job completions can resume that job from the
    /// snapshot instead of from scratch. Overwrites any earlier partial
    /// for the same job; completion clears it.
    pub fn record_partial(&mut self, index: usize, snapshot: crate::engine::EngineSnapshot) {
        if index >= self.slots.len() {
            return;
        }
        self.ensure_partials()[index] = Some(snapshot);
    }

    /// The last recorded mid-run snapshot for job `index`, if one exists
    /// and the job has not completed since.
    pub fn partial(&self, index: usize) -> Option<&crate::engine::EngineSnapshot> {
        self.partials
            .as_ref()
            .and_then(|partials| partials.get(index))
            .and_then(Option::as_ref)
    }

    /// Sizes `partials` to match `slots` (checkpoints deserialized from
    /// older versions carry none at all).
    fn ensure_partials(&mut self) -> &mut Vec<Option<crate::engine::EngineSnapshot>> {
        let partials = self
            .partials
            .get_or_insert_with(|| vec![None; self.slots.len()]);
        if partials.len() != self.slots.len() {
            partials.resize(self.slots.len(), None);
        }
        partials
    }
}

/// A concurrent trace-artifact cache: [`TraceBundle`]s keyed by
/// [`Scenario::trace_key`].
///
/// Generation happens outside the lock, so two workers may briefly
/// synthesize the same key concurrently; the first insert wins and —
/// because generation is deterministic — both candidates are
/// bit-identical, so the race never affects results.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<u64, TraceBundle>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the bundle for `scenario`'s trace key, generating and
    /// memoizing it on first use.
    pub fn get_or_generate(&self, scenario: &Scenario) -> TraceBundle {
        let key = scenario.trace_key();
        if let Some(bundle) = self.lock().get(&key) {
            return bundle.clone();
        }
        let fresh = scenario.generate_traces();
        self.lock().entry(key).or_insert(fresh).clone()
    }

    /// Number of distinct trace keys generated so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TraceBundle>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A batch of scenario jobs executed with deterministic output order.
///
/// # Examples
///
/// ```
/// use etrain_sim::{RunGrid, RunSpec, Scenario, SchedulerKind};
///
/// let base = Scenario::paper_default().duration_secs(600).seed(1);
/// let grid = RunGrid::from_specs(
///     [0.0_f64, 1.0, 2.0]
///         .iter()
///         .map(|&theta| {
///             RunSpec::with_knob(
///                 format!("Θ={theta}"),
///                 theta,
///                 base.clone()
///                     .scheduler(SchedulerKind::ETrain { theta, k: None }),
///             )
///         })
///         .collect(),
/// );
/// let reports = grid.run();
/// assert_eq!(reports.len(), 3);
/// // Results are in job order no matter how many workers ran them.
/// assert_eq!(reports, grid.jobs(1).run());
/// ```
#[derive(Debug)]
pub struct RunGrid {
    specs: Vec<RunSpec>,
    jobs: Option<usize>,
}

impl RunGrid {
    /// An empty grid.
    pub fn new() -> Self {
        RunGrid {
            specs: Vec::new(),
            jobs: None,
        }
    }

    /// A grid over the given jobs.
    pub fn from_specs(specs: Vec<RunSpec>) -> Self {
        RunGrid { specs, jobs: None }
    }

    /// One job per scheduler kind on a shared base scenario (the
    /// comparison shape).
    pub fn over_schedulers(base: &Scenario, kinds: &[SchedulerKind]) -> Self {
        RunGrid::from_specs(
            kinds
                .iter()
                .map(|&kind| RunSpec::new(kind.to_string(), base.clone().scheduler(kind)))
                .collect(),
        )
    }

    /// One job per seed on a shared base scenario (the replication shape).
    pub fn over_seeds(base: &Scenario, seeds: &[u64]) -> Self {
        RunGrid::from_specs(
            seeds
                .iter()
                .map(|&seed| {
                    RunSpec::with_knob(format!("seed={seed}"), seed as f64, base.clone().seed(seed))
                })
                .collect(),
        )
    }

    /// Appends a job.
    pub fn push(&mut self, spec: RunSpec) {
        self.specs.push(spec);
    }

    /// Builder: appends a job.
    pub fn spec(mut self, spec: RunSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Builder: overrides the worker count (`1` forces in-line serial
    /// execution). Takes precedence over `ETRAIN_JOBS` and the detected
    /// parallelism; `0` is treated as `1`.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Builder: sets the simulation-oracle mode on every job in the grid
    /// (see [`Scenario::oracle`]). Apply after all specs are pushed.
    pub fn oracle(mut self, mode: OracleMode) -> Self {
        for spec in &mut self.specs {
            spec.scenario = spec.scenario.clone().oracle(mode);
        }
        self
    }

    /// Builder: sets the observability mode on every job in the grid (see
    /// [`Scenario::obs`]). Apply after all specs are pushed.
    pub fn obs(mut self, mode: ObsMode) -> Self {
        for spec in &mut self.specs {
            spec.scenario = spec.scenario.clone().obs(mode);
        }
        self
    }

    /// Builder: sets the simulation kernel on every job in the grid (see
    /// [`Scenario::engine`]). Apply after all specs are pushed.
    pub fn engine(mut self, kind: crate::engine::EngineKind) -> Self {
        for spec in &mut self.specs {
            spec.scenario = spec.scenario.clone().engine(kind);
        }
        self
    }

    /// Number of jobs in the grid.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the grid has no jobs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The job specs, in job order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// The worker count this grid will use: the builder override if set,
    /// else `ETRAIN_JOBS` if parseable, else the machine's available
    /// parallelism — never more workers than jobs.
    pub fn effective_jobs(&self) -> usize {
        let configured = self
            .jobs
            .or_else(|| jobs_from_env(std::env::var(JOBS_ENV).ok().as_deref()))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        configured.clamp(1, self.specs.len().max(1))
    }

    /// Runs every job and returns the reports in job-index order.
    ///
    /// # Panics
    ///
    /// Panics if any job fails validation or panics itself (see
    /// [`RunGrid::try_run`] for the fallible form).
    pub fn run(&self) -> Vec<RunReport> {
        self.try_run().expect("invalid grid job")
    }

    /// Fallible [`RunGrid::run`]: returns the lowest-index failure, if
    /// any — regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) scenario-validation failure or
    /// isolated job panic.
    pub fn try_run(&self) -> Result<Vec<RunReport>, RunError> {
        self.try_run_with_cache(&TraceCache::new())
    }

    /// [`RunGrid::try_run`] against a caller-owned trace cache, so
    /// several grids over the same workloads (e.g. the per-figure
    /// experiments of one bench invocation) share synthesis.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) failure — a validation error or
    /// an isolated panic. Every other job still ran to completion first.
    pub fn try_run_with_cache(&self, cache: &TraceCache) -> Result<Vec<RunReport>, RunError> {
        let mut slots: Vec<Option<Result<RunReport, JobError>>> =
            (0..self.specs.len()).map(|_| None).collect();
        let todo: Vec<usize> = (0..self.specs.len()).collect();
        self.execute(cache, &todo, run_one_isolated, |index, outcome| {
            slots[index] = Some(outcome)
        });
        let mut reports = Vec::with_capacity(slots.len());
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.expect("every job reports exactly once") {
                Ok(report) => reports.push(report),
                Err(error) => {
                    return Err(error.into_run_error(index, self.specs[index].label.clone()))
                }
            }
        }
        Ok(reports)
    }

    /// Runs every job and additionally returns the grid's merged event
    /// journal (see [`RunGrid::try_run_journaled`] for the fallible form).
    ///
    /// # Panics
    ///
    /// Panics if any job fails validation or panics itself.
    pub fn run_journaled(&self) -> (Vec<RunReport>, Journal) {
        self.try_run_journaled().expect("invalid grid job")
    }

    /// Fallible [`RunGrid::run_journaled`]: runs every job via
    /// [`Scenario::try_run_journaled_on`] and merges the per-run journals
    /// with [`Journal::merge`].
    ///
    /// The merge is **deterministic**: per-run journals are collected into
    /// job-index slots (not completion order) and concatenated in index
    /// order, with each record's `run` field retagged to its job index —
    /// so the merged journal is byte-for-byte identical no matter how many
    /// workers ran the grid. Jobs whose scenario has observability off
    /// contribute an empty journal, keeping run indices aligned with job
    /// indices.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) scenario-validation failure or
    /// isolated job panic.
    pub fn try_run_journaled(&self) -> Result<(Vec<RunReport>, Journal), RunError> {
        self.try_run_journaled_with_cache(&TraceCache::new())
    }

    /// [`RunGrid::try_run_journaled`] against a caller-owned trace cache.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) failure — a validation error or
    /// an isolated panic. Every other job still ran to completion first.
    pub fn try_run_journaled_with_cache(
        &self,
        cache: &TraceCache,
    ) -> Result<(Vec<RunReport>, Journal), RunError> {
        let mut slots: Vec<JournaledSlot> = (0..self.specs.len()).map(|_| None).collect();
        let todo: Vec<usize> = (0..self.specs.len()).collect();
        self.execute(
            cache,
            &todo,
            run_one_journaled_isolated,
            |index, outcome| slots[index] = Some(outcome),
        );
        let mut reports = Vec::with_capacity(slots.len());
        let mut journals = Vec::with_capacity(slots.len());
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.expect("every job reports exactly once") {
                Ok((report, journal)) => {
                    reports.push(report);
                    journals.push(journal.unwrap_or_default());
                }
                Err(error) => {
                    return Err(error.into_run_error(index, self.specs[index].label.clone()))
                }
            }
        }
        Ok((reports, Journal::merge(journals)))
    }

    /// A deterministic identity for the grid's *shape*: job count plus
    /// each job's label, knob, trace key and scheduler. Used to bind a
    /// [`GridCheckpoint`] to the grid it was taken from. (FNV-1a rather
    /// than [`std::hash::DefaultHasher`] at this layer so the combining
    /// step is stable across processes — checkpoints outlive the
    /// process.)
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            // Field separator, so ("ab","c") and ("a","bc") differ.
            hash ^= 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        mix(&(self.specs.len() as u64).to_le_bytes());
        for spec in &self.specs {
            mix(spec.label.as_bytes());
            mix(&spec.knob.unwrap_or(f64::NAN).to_bits().to_le_bytes());
            mix(&spec.scenario.trace_key().to_le_bytes());
            mix(spec.scenario.scheduler_kind().to_string().as_bytes());
        }
        hash
    }

    /// Runs the grid with periodic crash-recovery checkpoints.
    ///
    /// Starts from `resume_from` when given (jobs already completed there
    /// are skipped, not re-run), executes the remaining jobs, and calls
    /// `persist` with the current checkpoint after every `checkpoint_every`
    /// newly completed jobs *and* once more at the end. A typical caller
    /// serializes the checkpoint to disk in `persist`; after a crash it
    /// deserializes the latest snapshot and passes it back as
    /// `resume_from`.
    ///
    /// Because each job is a pure function of its spec, the reports of a
    /// resumed grid are bit-for-bit identical to an uninterrupted run.
    /// Only successful reports are checkpointed: jobs that failed
    /// validation or panicked are reported in the returned error list and
    /// retried on resume.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CheckpointMismatch`] — without running any job
    /// — if `resume_from` was taken from a different grid (length or
    /// [`RunGrid::fingerprint`] mismatch).
    pub fn run_with_checkpoints<F: FnMut(&GridCheckpoint)>(
        &self,
        resume_from: Option<GridCheckpoint>,
        checkpoint_every: usize,
        mut persist: F,
    ) -> Result<(GridCheckpoint, Vec<RunError>), RunError> {
        let fingerprint = self.fingerprint();
        let mut checkpoint = match resume_from {
            Some(cp) => {
                if cp.slots.len() != self.specs.len() {
                    return Err(RunError::CheckpointMismatch {
                        expected: format!("{} jobs", self.specs.len()),
                        found: format!("{} jobs", cp.slots.len()),
                    });
                }
                if cp.fingerprint != fingerprint {
                    return Err(RunError::CheckpointMismatch {
                        expected: format!("fingerprint {fingerprint:#018x}"),
                        found: format!("fingerprint {:#018x}", cp.fingerprint),
                    });
                }
                let mut cp = cp;
                cp.ensure_partials();
                cp
            }
            None => GridCheckpoint {
                fingerprint,
                slots: (0..self.specs.len()).map(|_| None).collect(),
                partials: Some((0..self.specs.len()).map(|_| None).collect()),
            },
        };
        let todo: Vec<usize> = checkpoint
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        let every = checkpoint_every.max(1);
        let cache = TraceCache::new();
        let mut errors = Vec::new();
        let mut fresh = 0usize;
        self.execute(
            &cache,
            &todo,
            run_one_isolated,
            |index, outcome| match outcome {
                Ok(report) => {
                    checkpoint.slots[index] = Some(report);
                    if let Some(partials) = checkpoint.partials.as_mut() {
                        partials[index] = None;
                    }
                    fresh += 1;
                    if fresh.is_multiple_of(every) {
                        persist(&checkpoint);
                    }
                }
                Err(error) => {
                    errors.push(error.into_run_error(index, self.specs[index].label.clone()));
                }
            },
        );
        errors.sort_by_key(RunError::index);
        persist(&checkpoint);
        Ok((checkpoint, errors))
    }

    /// Shared execution path: runs `run` on the jobs at `todo`, invoking
    /// `on_result` on the calling thread as each job completes (out of
    /// index order under the pool — callers that need order re-assemble by
    /// index). `run` must be panic-isolating (see [`run_one_isolated`]);
    /// it is a plain `fn` pointer so worker threads can share it freely.
    fn execute<T, F>(
        &self,
        cache: &TraceCache,
        todo: &[usize],
        run: fn(&RunSpec, &TraceCache) -> Result<T, JobError>,
        mut on_result: F,
    ) where
        T: Send,
        F: FnMut(usize, Result<T, JobError>),
    {
        let workers = self.effective_jobs().min(todo.len().max(1));
        if workers <= 1 || todo.len() <= 1 {
            for &index in todo {
                on_result(index, run(&self.specs[index], cache));
            }
            return;
        }
        let (job_tx, job_rx) = channel::unbounded::<(usize, &RunSpec)>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, Result<T, JobError>)>();
        for &index in todo {
            job_tx
                .send((index, &self.specs[index]))
                .expect("job receiver alive");
        }
        drop(job_tx);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((index, spec)) = job_rx.recv() {
                        if result_tx.send((index, run(spec, cache))).is_err() {
                            return;
                        }
                    }
                });
            }
            // Drain on the calling thread *while workers run*, so
            // `on_result` (and therefore periodic checkpointing) fires
            // mid-grid, not only after the last job. The iterator ends
            // when the workers drop their sender clones.
            drop(result_tx);
            for (index, outcome) in result_rx.iter() {
                on_result(index, outcome);
            }
        });
    }
}

impl Default for RunGrid {
    fn default() -> Self {
        RunGrid::new()
    }
}

fn run_one(spec: &RunSpec, cache: &TraceCache) -> Result<RunReport, ScenarioError> {
    spec.scenario.validate()?;
    let traces = cache.get_or_generate(&spec.scenario);
    spec.scenario
        .try_run_with_output_on(&traces)
        .map(|(report, _)| report)
}

/// [`run_one`] with panic isolation: an unwinding job becomes
/// [`JobError::Panicked`] instead of tearing down the worker (and, under
/// `std::thread::scope`, the whole grid). `AssertUnwindSafe` is sound
/// here because a panicking job's only shared state is the [`TraceCache`],
/// which is itself poison-tolerant and only ever holds fully generated
/// bundles.
fn run_one_isolated(spec: &RunSpec, cache: &TraceCache) -> Result<RunReport, JobError> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(spec, cache)));
    match unwound {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(error)) => Err(JobError::Scenario(error)),
        Err(payload) => Err(JobError::Panicked(panic_payload_string(payload.as_ref()))),
    }
}

/// [`run_one`] through the journaled scenario path, keeping the per-run
/// journal (`None` when the job's scenario has observability off).
fn run_one_journaled(
    spec: &RunSpec,
    cache: &TraceCache,
) -> Result<(RunReport, Option<Journal>), ScenarioError> {
    spec.scenario.validate()?;
    let traces = cache.get_or_generate(&spec.scenario);
    spec.scenario
        .try_run_journaled_on(&traces)
        .map(|(report, _, journal)| (report, journal))
}

/// [`run_one_journaled`] with the same panic isolation as
/// [`run_one_isolated`].
fn run_one_journaled_isolated(
    spec: &RunSpec,
    cache: &TraceCache,
) -> Result<(RunReport, Option<Journal>), JobError> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_one_journaled(spec, cache)
    }));
    match unwound {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(error)) => Err(JobError::Scenario(error)),
        Err(payload) => Err(JobError::Panicked(panic_payload_string(payload.as_ref()))),
    }
}

/// Best-effort stringification of a caught panic payload (`panic!` with a
/// literal yields `&str`, with formatting yields `String`).
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Parses an `ETRAIN_JOBS` value strictly: `Ok(None)` when unset or empty,
/// `Ok(Some(n))` for a positive integer, and `Err` (with a human-readable
/// reason) for anything else — including `0`, which would silently mean
/// "not set" under the old lenient reader.
pub fn try_jobs_from_env(value: Option<&str>) -> Result<Option<usize>, String> {
    let raw = match value {
        None => return Ok(None),
        Some(raw) => raw.trim(),
    };
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<usize>() {
        Ok(0) => Err(format!("{JOBS_ENV}={raw:?}: worker count must be >= 1")),
        Ok(jobs) => Ok(Some(jobs)),
        Err(_) => Err(format!(
            "{JOBS_ENV}={raw:?}: expected a positive integer worker count"
        )),
    }
}

/// Lenient `ETRAIN_JOBS` reader for library paths: unparseable values fall
/// back to "not set", but — unlike the old silent fallback — the first bad
/// value warns once on stderr so a typo like `ETRAIN_JOBS=fuor` doesn't
/// quietly run on every core. Binaries that want to fail fast call
/// [`try_jobs_from_env`] instead.
fn jobs_from_env(value: Option<&str>) -> Option<usize> {
    match try_jobs_from_env(value) {
        Ok(jobs) => jobs,
        Err(reason) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: ignoring {reason}");
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BandwidthSource;
    use etrain_trace::packets::Packet;
    use etrain_trace::CargoAppId;

    fn theta_grid(jobs: usize) -> RunGrid {
        let base = Scenario::paper_default().duration_secs(600).seed(3);
        RunGrid::from_specs(
            [0.0_f64, 0.5, 1.0, 2.0]
                .iter()
                .map(|&theta| {
                    RunSpec::with_knob(
                        format!("Θ={theta}"),
                        theta,
                        base.clone()
                            .scheduler(SchedulerKind::ETrain { theta, k: None }),
                    )
                })
                .collect(),
        )
        .jobs(jobs)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = theta_grid(1).run();
        let parallel = theta_grid(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_in_job_index_order() {
        let grid = theta_grid(3);
        let reports = grid.run();
        for (spec, report) in grid.specs().iter().zip(&reports) {
            assert_eq!(report.scheduler, "eTrain", "{}", spec.label);
        }
        // Direct per-spec runs agree position by position.
        for (spec, report) in grid.specs().iter().zip(&reports) {
            assert_eq!(&spec.scenario.run(), report);
        }
    }

    #[test]
    fn grid_over_one_seed_generates_traces_once() {
        let cache = TraceCache::new();
        let grid = theta_grid(2);
        grid.try_run_with_cache(&cache).unwrap();
        assert_eq!(cache.len(), 1, "same workload+seed must share one bundle");
    }

    #[test]
    fn distinct_seeds_get_distinct_bundles() {
        let cache = TraceCache::new();
        let base = Scenario::paper_default().duration_secs(600);
        RunGrid::over_seeds(&base, &[1, 2, 3])
            .jobs(2)
            .try_run_with_cache(&cache)
            .unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn over_schedulers_labels_with_display() {
        let base = Scenario::paper_default().duration_secs(600).seed(2);
        let grid = RunGrid::over_schedulers(
            &base,
            &[
                SchedulerKind::Baseline,
                SchedulerKind::ETime { v_bytes: 20_000.0 },
            ],
        );
        assert_eq!(grid.specs()[0].label, "Baseline");
        assert_eq!(grid.specs()[1].label, "eTime(V=20000 B)");
        let reports = grid.run();
        assert_eq!(reports[0].scheduler, "Baseline");
        assert_eq!(reports[1].scheduler, "eTime");
    }

    #[test]
    fn invalid_job_reports_lowest_index_regardless_of_jobs() {
        for jobs in [1, 4] {
            let base = Scenario::paper_default().duration_secs(600).seed(1);
            let grid = RunGrid::new()
                .spec(RunSpec::new("ok", base.clone()))
                .spec(RunSpec::new(
                    "bad-bandwidth",
                    base.clone().bandwidth(BandwidthSource::Constant(0.0)),
                ))
                .spec(RunSpec::new("bad-duration", base.clone().duration_secs(0)))
                .jobs(jobs);
            let err = grid.try_run().unwrap_err();
            assert!(matches!(err, RunError::Scenario { .. }), "jobs={jobs}");
            assert_eq!(err.index(), 1, "jobs={jobs}");
            assert_eq!(err.label(), "bad-bandwidth");
            assert!(err.to_string().contains("grid job #1"));
        }
    }

    /// A spec that passes `validate()` but panics inside the engine: its
    /// explicit packet trace references an unregistered app index.
    fn panicking_spec(label: &str) -> RunSpec {
        RunSpec::new(
            label,
            Scenario::paper_default()
                .duration_secs(600)
                .seed(5)
                .packets(vec![Packet {
                    id: 0,
                    app: CargoAppId(99),
                    arrival_s: 10.0,
                    size_bytes: 1_000,
                }]),
        )
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let mut survivors = Vec::new();
        for jobs in [1, 4] {
            let base = Scenario::paper_default().duration_secs(600).seed(3);
            let grid = RunGrid::new()
                .spec(RunSpec::new("ok-0", base.clone()))
                .spec(panicking_spec("boom"))
                .spec(RunSpec::new("ok-2", base.clone().seed(4)))
                .jobs(jobs);
            let err = grid.try_run().unwrap_err();
            assert!(matches!(err, RunError::Panicked { .. }), "jobs={jobs}");
            assert_eq!(err.index(), 1, "jobs={jobs}");
            assert_eq!(err.label(), "boom");
            assert!(err.to_string().contains("panicked"), "jobs={jobs}");

            // The pool survived: both healthy jobs still completed.
            let (checkpoint, errors) = grid.run_with_checkpoints(None, 1, |_| {}).unwrap();
            assert_eq!(checkpoint.completed_indices(), vec![0, 2], "jobs={jobs}");
            assert_eq!(errors.len(), 1, "jobs={jobs}");
            assert!(matches!(
                &errors[0],
                RunError::Panicked { index: 1, payload, .. }
                    if payload.contains("registered with the scheduler")
            ));
            survivors.push(checkpoint);
        }
        // Surviving reports are bit-for-bit identical serial vs pool.
        assert_eq!(survivors[0], survivors[1]);
    }

    #[test]
    fn checkpoint_resume_is_bit_for_bit_identical() {
        let uninterrupted = theta_grid(1).run();

        // Take a mid-flight snapshot (as a crash would leave on disk)...
        let mut snapshot: Option<GridCheckpoint> = None;
        let (full, errors) = theta_grid(2)
            .run_with_checkpoints(None, 1, |cp| {
                if snapshot.is_none() && !cp.is_complete() {
                    snapshot = Some(cp.clone());
                }
            })
            .unwrap();
        assert!(errors.is_empty());
        assert!(full.is_complete());

        // ... and resume from it on an identically shaped grid.
        let snapshot = snapshot.expect("mid-flight checkpoint captured");
        assert!(snapshot.completed() < snapshot.len());
        let (resumed, errors) = theta_grid(2)
            .run_with_checkpoints(Some(snapshot), 8, |_| {})
            .unwrap();
        assert!(errors.is_empty());
        assert_eq!(resumed, full);
        assert_eq!(resumed.into_reports().expect("complete"), uninterrupted);
    }

    #[test]
    fn persist_fires_every_n_and_at_end() {
        let mut completions = Vec::new();
        let (checkpoint, errors) = theta_grid(1)
            .run_with_checkpoints(None, 2, |cp| completions.push(cp.completed()))
            .unwrap();
        assert!(errors.is_empty());
        assert!(checkpoint.is_complete());
        assert_eq!(completions, vec![2, 4, 4], "every 2 jobs, plus final");
    }

    #[test]
    fn resuming_with_foreign_checkpoint_is_rejected() {
        let (checkpoint, _) = theta_grid(1).run_with_checkpoints(None, 8, |_| {}).unwrap();
        let other = RunGrid::from_specs(
            (0..4u64)
                .map(|i| {
                    RunSpec::new(
                        format!("job-{i}"),
                        Scenario::paper_default().duration_secs(600).seed(50 + i),
                    )
                })
                .collect(),
        );
        let err = other
            .run_with_checkpoints(Some(checkpoint), 8, |_| {})
            .unwrap_err();
        assert!(matches!(err, RunError::CheckpointMismatch { .. }));
        assert_eq!(err.index(), usize::MAX);
        assert_eq!(err.label(), "resume checkpoint");
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn resuming_with_wrong_length_checkpoint_is_rejected() {
        let (checkpoint, _) = theta_grid(1).run_with_checkpoints(None, 8, |_| {}).unwrap();
        let shorter = RunGrid::from_specs(theta_grid(1).specs()[..2].to_vec());
        let err = shorter
            .run_with_checkpoints(Some(checkpoint), 8, |_| {})
            .unwrap_err();
        assert!(
            matches!(
                &err,
                RunError::CheckpointMismatch { expected, found }
                    if expected == "2 jobs" && found == "4 jobs"
            ),
            "{err}"
        );
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let (checkpoint, errors) = theta_grid(2).run_with_checkpoints(None, 4, |_| {}).unwrap();
        assert!(errors.is_empty());
        let json = serde_json::to_string(&checkpoint).expect("serializes");
        let back: GridCheckpoint = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn checkpoint_without_partials_field_still_deserializes() {
        // Checkpoints persisted before the crash-consistency work carry no
        // `partials` key; they must load and resume cleanly.
        let (checkpoint, _) = theta_grid(1).run_with_checkpoints(None, 8, |_| {}).unwrap();
        let json = serde_json::to_string(&checkpoint).unwrap();
        // `partials` is the struct's last field, so cutting from its key to
        // the closing brace yields the pre-field wire format exactly.
        let cut = json.rfind(",\"partials\"").expect("field serialized last");
        let stripped = format!("{}}}", &json[..cut]);
        let back: GridCheckpoint = serde_json::from_str(&stripped).expect("legacy format loads");
        assert!(back.partials.is_none());
        let (resumed, errors) = theta_grid(1)
            .run_with_checkpoints(Some(back), 8, |_| {})
            .unwrap();
        assert!(errors.is_empty());
        assert_eq!(resumed.slots, checkpoint.slots);
    }

    #[test]
    fn partial_snapshots_attach_and_clear_on_completion() {
        let mut snapshot: Option<GridCheckpoint> = None;
        theta_grid(1)
            .run_with_checkpoints(None, 1, |cp| {
                if snapshot.is_none() {
                    snapshot = Some(cp.clone());
                }
            })
            .unwrap();
        let mut cp = snapshot.expect("persist fired");
        let pending = cp
            .completed_indices()
            .last()
            .map_or(0, |&i| (i + 1) % cp.len());
        let partial = crate::engine::EngineSnapshot {
            version: crate::engine::SNAPSHOT_VERSION,
            taken_at_s: 12.0,
            events_processed: 34,
            steps_run: 5,
            journal_events: 0,
            engine: crate::engine::EngineKind::Slot,
            fingerprint: 0xfeed,
        };
        cp.record_partial(pending, partial);
        cp.record_partial(usize::MAX, partial); // out of range: ignored
        assert_eq!(cp.partial(pending), Some(&partial));
        let (done, errors) = theta_grid(1)
            .run_with_checkpoints(Some(cp), 8, |_| {})
            .unwrap();
        assert!(errors.is_empty());
        // The job completed on resume, so its partial was cleared.
        assert_eq!(done.partial(pending), None);
    }

    #[test]
    fn empty_grid_runs_to_empty() {
        assert!(RunGrid::new().run().is_empty());
        assert_eq!(RunGrid::new().effective_jobs(), 1);
    }

    #[test]
    fn jobs_env_parsing() {
        assert_eq!(jobs_from_env(None), None);
        assert_eq!(jobs_from_env(Some("")), None);
        assert_eq!(jobs_from_env(Some("zero")), None);
        assert_eq!(jobs_from_env(Some("0")), None);
        assert_eq!(jobs_from_env(Some("4")), Some(4));
        assert_eq!(jobs_from_env(Some(" 8 ")), Some(8));
    }

    #[test]
    fn strict_jobs_parsing_rejects_what_the_lenient_reader_swallows() {
        assert_eq!(try_jobs_from_env(None), Ok(None));
        assert_eq!(try_jobs_from_env(Some("  ")), Ok(None));
        assert_eq!(try_jobs_from_env(Some("4")), Ok(Some(4)));
        let zero = try_jobs_from_env(Some("0")).unwrap_err();
        assert!(zero.contains(">= 1"), "{zero}");
        let junk = try_jobs_from_env(Some("fuor")).unwrap_err();
        assert!(junk.contains("positive integer"), "{junk}");
        assert!(junk.contains(JOBS_ENV), "{junk}");
    }

    #[test]
    fn builder_jobs_override_wins_and_is_clamped() {
        let grid = theta_grid(64);
        // Never more workers than jobs.
        assert_eq!(grid.effective_jobs(), 4);
        let serial = theta_grid(0);
        assert_eq!(serial.effective_jobs(), 1);
    }
}
