//! Generalized multi-phase tail profiles.
//!
//! The paper's UMTS model has exactly two tail phases (DCH then FACH).
//! Other radios have more: LTE's connected-mode tail runs continuous
//! reception, then short-DRX, then long-DRX — three plateaus of decreasing
//! duty-cycled power — before RRC-idle. [`TailProfile`] models a tail as
//! any finite sequence of constant-power phases and provides the same
//! machinery the two-phase model has: cumulative gap energy `E_tail(Δ)`
//! and an analytic whole-schedule evaluator, so eTrain's aggregation
//! arithmetic can be asked about arbitrary radios.

use serde::{Deserialize, Serialize};

use crate::params::RadioParams;
use crate::tail::merge_busy_periods;
use crate::timeline::Transmission;

/// One constant-power phase of a tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailPhase {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Power above idle during the phase, in milliwatts.
    pub extra_mw: f64,
}

/// A radio tail as a sequence of constant-power phases (highest first in
/// every physical radio, though the model does not require monotonicity).
///
/// # Examples
///
/// ```
/// use etrain_radio::{RadioParams, TailProfile};
///
/// // The paper's two-phase UMTS tail, expressed as a profile:
/// let umts = TailProfile::from_params(&RadioParams::galaxy_s4_3g());
/// assert_eq!(umts.total_duration_s(), 17.5);
/// assert!((umts.full_energy_j() - 10.375).abs() < 1e-9);
///
/// // A three-phase LTE DRX tail.
/// let lte = TailProfile::lte_drx_3phase();
/// assert_eq!(lte.phases().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailProfile {
    phases: Vec<TailPhase>,
    active_extra_mw: f64,
}

impl TailProfile {
    /// Creates a profile from explicit phases and the active (transmit)
    /// power above idle.
    ///
    /// # Panics
    ///
    /// Panics if any phase has a negative or non-finite duration/power, or
    /// if `active_extra_mw` is negative.
    pub fn new(phases: Vec<TailPhase>, active_extra_mw: f64) -> Self {
        for phase in &phases {
            assert!(
                phase.duration_s.is_finite() && phase.duration_s >= 0.0,
                "phase duration must be finite and non-negative"
            );
            assert!(
                phase.extra_mw.is_finite() && phase.extra_mw >= 0.0,
                "phase power must be finite and non-negative"
            );
        }
        assert!(
            active_extra_mw.is_finite() && active_extra_mw >= 0.0,
            "active power must be finite and non-negative"
        );
        TailProfile {
            phases,
            active_extra_mw,
        }
    }

    /// The two-phase profile equivalent to a [`RadioParams`] — the
    /// compatibility bridge to the paper's model.
    pub fn from_params(params: &RadioParams) -> Self {
        TailProfile::new(
            vec![
                TailPhase {
                    duration_s: params.delta_dch_s(),
                    extra_mw: params.dch_extra_mw(),
                },
                TailPhase {
                    duration_s: params.delta_fach_s(),
                    extra_mw: params.fach_extra_mw(),
                },
            ],
            params.dch_extra_mw(),
        )
    }

    /// A three-phase LTE tail: 1 s continuous reception at 1 W, 5 s
    /// short-DRX at a 300 mW duty-cycled average, 10 s long-DRX at 60 mW.
    pub fn lte_drx_3phase() -> Self {
        TailProfile::new(
            vec![
                TailPhase {
                    duration_s: 1.0,
                    extra_mw: 1_000.0,
                },
                TailPhase {
                    duration_s: 5.0,
                    extra_mw: 300.0,
                },
                TailPhase {
                    duration_s: 10.0,
                    extra_mw: 60.0,
                },
            ],
            1_000.0,
        )
    }

    /// The phases in order.
    pub fn phases(&self) -> &[TailPhase] {
        &self.phases
    }

    /// Power above idle while actively transmitting, in milliwatts.
    pub fn active_extra_mw(&self) -> f64 {
        self.active_extra_mw
    }

    /// Total tail length in seconds (the generalized `T_tail`).
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Energy of one complete, un-reused tail in joules.
    pub fn full_energy_j(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.extra_mw / 1000.0 * p.duration_s)
            .sum()
    }

    /// The generalized `E_tail(Δ)`: energy spent in the tail during a gap
    /// of `gap_s` seconds before the next transmission, in joules.
    pub fn gap_energy_j(&self, gap_s: f64) -> f64 {
        let mut remaining = gap_s.max(0.0);
        let mut energy = 0.0;
        for phase in &self.phases {
            if remaining <= 0.0 {
                break;
            }
            let t = remaining.min(phase.duration_s);
            energy += phase.extra_mw / 1000.0 * t;
            remaining -= phase.duration_s;
        }
        energy
    }

    /// Analytic extra energy of a whole transmission schedule under this
    /// profile (active power during busy periods, gap energy between
    /// them), in joules — the multi-phase counterpart of
    /// [`analytic_extra_energy_j`](crate::analytic_extra_energy_j).
    pub fn schedule_energy_j(&self, transmissions: &[Transmission], horizon_s: f64) -> f64 {
        let busy = merge_busy_periods(transmissions, horizon_s);
        let mut energy = 0.0;
        for (idx, &(start, end)) in busy.iter().enumerate() {
            energy += self.active_extra_mw / 1000.0 * (end - start);
            let gap_end = busy
                .get(idx + 1)
                .map_or(horizon_s, |&(next_start, _)| next_start);
            energy += self.gap_energy_j(gap_end - end);
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tail::{analytic_extra_energy_j, tail_energy_j};

    #[test]
    fn two_phase_profile_matches_the_closed_form() {
        let params = RadioParams::galaxy_s4_3g();
        let profile = TailProfile::from_params(&params);
        for gap in [-1.0, 0.0, 3.0, 10.0, 12.5, 17.5, 100.0] {
            assert!(
                (profile.gap_energy_j(gap) - tail_energy_j(&params, gap)).abs() < 1e-12,
                "gap {gap}"
            );
        }
    }

    #[test]
    fn two_phase_schedule_matches_the_analytic_model() {
        let params = RadioParams::galaxy_s4_3g();
        let profile = TailProfile::from_params(&params);
        let txs = [
            Transmission::new(0.0, 0.5),
            Transmission::new(9.0, 1.0),
            Transmission::new(80.0, 0.2),
        ];
        let a = profile.schedule_energy_j(&txs, 500.0);
        let b = analytic_extra_energy_j(&params, &txs, 500.0);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn lte_three_phase_arithmetic() {
        let lte = TailProfile::lte_drx_3phase();
        assert_eq!(lte.total_duration_s(), 16.0);
        // 1 + 1.5 + 0.6 J.
        assert!((lte.full_energy_j() - 3.1).abs() < 1e-12);
        // Mid-second-phase gap: 1 J + 2 s × 0.3 W.
        assert!((lte.gap_energy_j(3.0) - 1.6).abs() < 1e-12);
        // Saturation.
        assert_eq!(lte.gap_energy_j(1e9), lte.full_energy_j());
    }

    #[test]
    fn gap_energy_is_monotone_and_continuous() {
        let lte = TailProfile::lte_drx_3phase();
        let mut prev = 0.0;
        for i in 0..400 {
            let g = i as f64 * 0.05;
            let e = lte.gap_energy_j(g);
            assert!(e >= prev - 1e-12);
            prev = e;
        }
    }

    #[test]
    fn aggregation_also_wins_on_lte() {
        // eTrain's premise transfers to the multi-phase radio: three
        // scattered transfers vs an aggregated burst.
        let lte = TailProfile::lte_drx_3phase();
        let scattered = [
            Transmission::new(0.0, 0.5),
            Transmission::new(60.0, 0.5),
            Transmission::new(120.0, 0.5),
        ];
        let aggregated = [
            Transmission::new(120.0, 0.5),
            Transmission::new(120.5, 0.5),
            Transmission::new(121.0, 0.5),
        ];
        assert!(
            lte.schedule_energy_j(&aggregated, 300.0) < lte.schedule_energy_j(&scattered, 300.0)
        );
    }

    #[test]
    fn empty_profile_is_pure_active_power() {
        let p = TailProfile::new(Vec::new(), 500.0);
        assert_eq!(p.full_energy_j(), 0.0);
        assert_eq!(p.gap_energy_j(100.0), 0.0);
        let txs = [Transmission::new(0.0, 2.0)];
        assert!((p.schedule_energy_j(&txs, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "phase duration must be finite")]
    fn bad_phase_rejected() {
        let _ = TailProfile::new(
            vec![TailPhase {
                duration_s: f64::NAN,
                extra_mw: 1.0,
            }],
            1.0,
        );
    }
}
