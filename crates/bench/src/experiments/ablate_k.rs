//! Ablation: finite piggyback bounds vs the paper's deployed `k = ∞`.
//!
//! The paper argues (Sec. IV) that larger `k` strictly helps and deploys
//! `k = ∞`. This ablation quantifies the residual-backlog cost of small
//! `k` at a fixed Θ.

use crate::ExperimentResult;
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, pct, s};

/// Runs the k ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let theta = 2.0;
    let ks: &[Option<usize>] = if quick {
        &[Some(1), Some(4), None]
    } else {
        &[Some(1), Some(2), Some(4), Some(8), Some(16), Some(32), None]
    };

    let mut table = Table::new(
        "Ablation — piggyback bound k at Θ = 2",
        &["k", "energy_j", "delay_s", "violation"],
    );
    for &k in ks {
        let report = base
            .clone()
            .scheduler(SchedulerKind::ETrain { theta, k })
            .run();
        table.push_row_strings(vec![
            k.map_or("inf".to_owned(), |v| v.to_string()),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            pct(report.deadline_violation_ratio),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "delay_at_k_inf",
        0,
        -1,
        "delay_s",
        "s",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_k_never_delays_more_than_k1() {
        let tables = run(true).tables;
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let d_k1: f64 = rows[0][2].parse().unwrap();
        let d_inf: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(d_inf <= d_k1 + 1.0, "k=∞ delay {d_inf} vs k=1 {d_k1}");
    }
}
