//! Push-vs-poll content freshness — why the heartbeat infrastructure
//! exists at all, quantified.
//!
//! The heartbeats eTrain exploits keep a push channel alive: when content
//! changes, the server notifies the phone over the already-open connection
//! (a notification that, by construction, arrives together with heartbeat
//! traffic on an already-promoted radio) and the app fetches immediately —
//! the fetch rides the same radio session. The alternative is polling:
//! fetch every `T` seconds whether or not anything changed, paying a
//! radio wake-up per poll and still serving content up to `T` seconds
//! stale.
//!
//! This module generates the fetch traces for both strategies from one
//! underlying content-update process, so the simulator can price them on
//! the same radio, and computes the staleness metric the energy numbers
//! trade against.

use etrain_trace::heartbeats::Heartbeat;
use etrain_trace::packets::Packet;
use etrain_trace::rng::{exponential, seeded};
use etrain_trace::CargoAppId;

/// One content update appearing on the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentUpdate {
    /// When the update became available, in seconds.
    pub available_s: f64,
}

/// Generates a Poisson content-update process with the given mean
/// inter-update time over `[0, horizon_s)`.
///
/// # Panics
///
/// Panics if `mean_interval_s` is not strictly positive.
pub fn generate_updates(mean_interval_s: f64, horizon_s: f64, seed: u64) -> Vec<ContentUpdate> {
    assert!(mean_interval_s > 0.0, "update interval must be positive");
    let mut rng = seeded(seed);
    let mut updates = Vec::new();
    let mut t = exponential(&mut rng, mean_interval_s);
    while t < horizon_s {
        updates.push(ContentUpdate { available_s: t });
        t += exponential(&mut rng, mean_interval_s);
    }
    updates
}

/// A fetch schedule with its freshness outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPlan {
    /// The fetch transmissions as simulator packets for `app`.
    pub packets: Vec<Packet>,
    /// Mean staleness: how long updates waited before being fetched, in
    /// seconds (0 when there were no updates).
    pub mean_staleness_s: f64,
    /// Fetches that brought nothing new (polls between updates).
    pub empty_fetches: usize,
}

/// Polling: fetch every `period_s` (first poll at `phase_s`) regardless of
/// updates. Every poll costs a transmission; updates wait for the next
/// poll tick. The phase matters: a poll timer harmonically locked to some
/// app's heartbeat grid would accidentally share its tails, which no real
/// polling app arranges — pass a phase that breaks the lock.
pub fn plan_polling(
    updates: &[ContentUpdate],
    period_s: f64,
    phase_s: f64,
    fetch_bytes: u64,
    horizon_s: f64,
    app: CargoAppId,
) -> FetchPlan {
    assert!(period_s > 0.0, "poll period must be positive");
    assert!(phase_s >= 0.0, "poll phase must be non-negative");
    let mut packets = Vec::new();
    let mut t = phase_s + period_s;
    let mut id = 0;
    while t < horizon_s {
        packets.push(Packet {
            id,
            app,
            arrival_s: t,
            size_bytes: fetch_bytes,
        });
        id += 1;
        t += period_s;
    }
    let next_poll_after = |time_s: f64| -> f64 {
        let k = ((time_s - phase_s) / period_s).floor().max(0.0);
        phase_s + (k + 1.0) * period_s
    };
    let staleness: Vec<f64> = updates
        .iter()
        .filter_map(|u| {
            let next_poll = next_poll_after(u.available_s);
            (next_poll < horizon_s).then_some(next_poll - u.available_s)
        })
        .collect();
    let polls_with_news: std::collections::BTreeSet<u64> = updates
        .iter()
        .map(|u| next_poll_after(u.available_s).round() as u64)
        .collect();
    FetchPlan {
        empty_fetches: packets.len().saturating_sub(polls_with_news.len()),
        mean_staleness_s: mean(&staleness),
        packets,
    }
}

/// Push-based fetching: the server's notification arrives on the next
/// heartbeat after the update (the push channel shares the keep-alive
/// connection), and the fetch departs immediately — aligned with the
/// heartbeat's radio session by construction. No update, no fetch.
pub fn plan_push_fetch(
    updates: &[ContentUpdate],
    heartbeats: &[Heartbeat],
    fetch_bytes: u64,
    horizon_s: f64,
    app: CargoAppId,
) -> FetchPlan {
    let mut packets = Vec::new();
    let mut staleness = Vec::new();
    for (id, update) in updates.iter().enumerate() {
        let Some(hb) = heartbeats
            .iter()
            .find(|hb| hb.time_s >= update.available_s && hb.time_s < horizon_s)
        else {
            continue; // no heartbeat before the horizon: never fetched
        };
        packets.push(Packet {
            id: id as u64,
            app,
            arrival_s: hb.time_s,
            size_bytes: fetch_bytes,
        });
        staleness.push(hb.time_s - update.available_s);
    }
    // Re-number densely (some updates may have been dropped).
    for (i, p) in packets.iter_mut().enumerate() {
        p.id = i as u64;
    }
    FetchPlan {
        mean_staleness_s: mean(&staleness),
        empty_fetches: 0,
        packets,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::heartbeats::{synthesize, TrainAppSpec};

    fn updates() -> Vec<ContentUpdate> {
        generate_updates(300.0, 7200.0, 4)
    }

    #[test]
    fn update_process_matches_rate() {
        let u = generate_updates(100.0, 100_000.0, 1);
        let n = u.len() as f64;
        assert!((n - 1000.0).abs() / 1000.0 < 0.1, "{n} updates");
        assert!(u.windows(2).all(|w| w[0].available_s <= w[1].available_s));
    }

    #[test]
    fn polling_fetches_on_schedule_and_measures_staleness() {
        let updates = vec![
            ContentUpdate { available_s: 50.0 },
            ContentUpdate { available_s: 260.0 },
        ];
        let plan = plan_polling(&updates, 120.0, 0.0, 20_000, 1000.0, CargoAppId(0));
        // Polls at 120, 240, ..., 960.
        assert_eq!(plan.packets.len(), 8);
        // Update at 50 waits until 120 (70 s); update at 260 until 360 (100 s).
        assert!((plan.mean_staleness_s - 85.0).abs() < 1e-9);
        // 8 polls, 2 carried news.
        assert_eq!(plan.empty_fetches, 6);
    }

    #[test]
    fn push_fetch_rides_the_next_heartbeat() {
        let heartbeats = synthesize(&[TrainAppSpec::qq()], 1000.0, 1); // 0,300,600,900
        let updates = vec![ContentUpdate { available_s: 50.0 }];
        let plan = plan_push_fetch(&updates, &heartbeats, 20_000, 1000.0, CargoAppId(0));
        assert_eq!(plan.packets.len(), 1);
        assert_eq!(plan.packets[0].arrival_s, 300.0);
        assert_eq!(plan.mean_staleness_s, 250.0);
        assert_eq!(plan.empty_fetches, 0);
    }

    #[test]
    fn push_never_fetches_without_updates() {
        let heartbeats = synthesize(&TrainAppSpec::paper_trio(), 7200.0, 1);
        let plan = plan_push_fetch(&[], &heartbeats, 20_000, 7200.0, CargoAppId(0));
        assert!(plan.packets.is_empty());
        assert_eq!(plan.mean_staleness_s, 0.0);
    }

    #[test]
    fn denser_heartbeats_reduce_push_staleness() {
        let sparse = synthesize(&[TrainAppSpec::qq()], 7200.0, 1);
        let dense = synthesize(&TrainAppSpec::paper_trio(), 7200.0, 1);
        let u = updates();
        let s1 = plan_push_fetch(&u, &sparse, 20_000, 7200.0, CargoAppId(0)).mean_staleness_s;
        let s2 = plan_push_fetch(&u, &dense, 20_000, 7200.0, CargoAppId(0)).mean_staleness_s;
        assert!(s2 < s1, "dense {s2} vs sparse {s1}");
    }

    #[test]
    fn faster_polling_is_fresher_but_busier() {
        let u = updates();
        let fast = plan_polling(&u, 60.0, 13.0, 20_000, 7200.0, CargoAppId(0));
        let slow = plan_polling(&u, 600.0, 13.0, 20_000, 7200.0, CargoAppId(0));
        assert!(fast.mean_staleness_s < slow.mean_staleness_s);
        assert!(fast.packets.len() > slow.packets.len());
    }
}
