use std::error::Error;
use std::fmt;

/// Error returned when constructing invalid radio parameters or timelines.
#[derive(Debug, Clone, PartialEq)]
pub enum RadioError {
    /// A power level was negative or not finite.
    InvalidPower {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value in milliwatts.
        value_mw: f64,
    },
    /// A duration was negative or not finite.
    InvalidDuration {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value in seconds.
        value_s: f64,
    },
    /// DCH power must dominate FACH power, which must dominate idle power.
    PowerOrdering {
        /// Idle power in milliwatts.
        idle_mw: f64,
        /// FACH power in milliwatts.
        fach_mw: f64,
        /// DCH power in milliwatts.
        dch_mw: f64,
    },
    /// A transmission had a negative start time or duration.
    InvalidTransmission {
        /// Start time of the rejected transmission in seconds.
        start_s: f64,
        /// Duration of the rejected transmission in seconds.
        duration_s: f64,
    },
}

impl fmt::Display for RadioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadioError::InvalidPower { name, value_mw } => {
                write!(f, "power parameter `{name}` is invalid: {value_mw} mW")
            }
            RadioError::InvalidDuration { name, value_s } => {
                write!(f, "duration parameter `{name}` is invalid: {value_s} s")
            }
            RadioError::PowerOrdering {
                idle_mw,
                fach_mw,
                dch_mw,
            } => write!(
                f,
                "power ordering violated: need idle ({idle_mw} mW) <= fach ({fach_mw} mW) <= dch ({dch_mw} mW)"
            ),
            RadioError::InvalidTransmission { start_s, duration_s } => write!(
                f,
                "transmission with start {start_s} s and duration {duration_s} s is invalid"
            ),
        }
    }
}

impl Error for RadioError {}
