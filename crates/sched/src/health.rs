//! The degraded-mode ladder: Healthy → Degraded → Fallback.
//!
//! The paper's safety argument (Sec. IV) is that eTrain can never do worse
//! than transmit-on-arrival, because deferral is bounded by each app's
//! delay-cost profile. That argument assumes the scheduler itself is
//! behaving. When it demonstrably is not — repeated transmission failures,
//! a simulation-oracle alarm, or the watchdog reporting every train app
//! dead — the safest reaction is to *stop being clever*:
//!
//! - **Healthy**: full Algorithm 1 with the configured burst limit `k`;
//! - **Degraded**: Algorithm 1 with the burst limit halved (bounded by
//!   [`HealthConfig::degraded_k`] when the base `k` is the paper's ∞), so
//!   a misbehaving run defers less data per heartbeat;
//! - **Fallback**: immediate send — every arrival and every deferred
//!   packet is released at once, which is exactly the no-piggyback
//!   baseline and therefore provably never worse than it.
//!
//! Recovery is stepwise: after [`HealthConfig::clean_heartbeats`]
//! heartbeats with no intervening failure, the ladder re-promotes one
//! state. Every transition is recorded as a typed, timestamped
//! [`HealthTransition`] that flows into the run report.

use etrain_trace::packets::Packet;
use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionConfig, ShedPolicy};
use crate::api::{Scheduler, SchedulerError, SlotContext};
use crate::etrain::{ETrainConfig, ETrainScheduler};
use crate::queue::AppProfile;

/// The three rungs of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Full eTrain behaviour.
    Healthy,
    /// eTrain with the piggyback burst limit halved.
    Degraded,
    /// Immediate send (no-piggyback baseline semantics).
    Fallback,
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => write!(f, "healthy"),
            HealthState::Degraded => write!(f, "degraded"),
            HealthState::Fallback => write!(f, "fallback"),
        }
    }
}

/// What drove a ladder transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionCause {
    /// `failures` consecutive transmission failures crossed the threshold.
    RepeatedTxFailures {
        /// The consecutive-failure count that tripped the demotion.
        failures: usize,
    },
    /// The simulation oracle (or an external monitor) raised a violation.
    OracleViolation,
    /// The watchdog observed every train app dead.
    TrainDeath,
    /// `clean_heartbeats` consecutive clean heartbeats earned a promotion.
    Recovered {
        /// The clean-heartbeat count that earned the promotion.
        clean_heartbeats: usize,
    },
}

impl std::fmt::Display for TransitionCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionCause::RepeatedTxFailures { failures } => {
                write!(f, "{failures} consecutive tx failures")
            }
            TransitionCause::OracleViolation => write!(f, "oracle violation"),
            TransitionCause::TrainDeath => write!(f, "all train apps dead"),
            TransitionCause::Recovered { clean_heartbeats } => {
                write!(f, "{clean_heartbeats} clean heartbeats")
            }
        }
    }
}

/// One typed, timestamped ladder transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Simulation time of the transition, in seconds.
    pub at_s: f64,
    /// The state left.
    pub from: HealthState,
    /// The state entered.
    pub to: HealthState,
    /// What drove it.
    pub cause: TransitionCause,
}

impl std::fmt::Display for HealthTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={:.1}s {} -> {} ({})",
            self.at_s, self.from, self.to, self.cause
        )
    }
}

/// The rung index of a state on the ladder (Healthy = 0 … Fallback = 2).
fn rung(state: HealthState) -> i32 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::Fallback => 2,
    }
}

/// Audits a recorded transition log against the ladder's structural
/// invariants, returning one human-readable anomaly per violation (empty
/// for a clean log). A healthy [`GuardedScheduler`] can never produce an
/// anomalous log, so any finding signals a ladder bug — the chaos
/// campaign runs this over every guarded run it sweeps.
///
/// Checked invariants:
///
/// - timestamps are finite, non-negative, and non-decreasing;
/// - the log chains: each transition leaves the state the previous one
///   entered, and the first leaves `Healthy` (every run starts there);
/// - no transition is a self-loop;
/// - every step moves exactly one rung, except the
///   [`TransitionCause::TrainDeath`] watchdog, which may drop straight
///   from any rung to `Fallback` (and only to `Fallback`);
/// - [`TransitionCause::Recovered`] appears only on promotions, every
///   other cause only on demotions.
pub fn audit_transitions(transitions: &[HealthTransition]) -> Vec<String> {
    let mut anomalies = Vec::new();
    let mut expected_from = HealthState::Healthy;
    let mut last_at_s = f64::NEG_INFINITY;
    for (i, t) in transitions.iter().enumerate() {
        if !t.at_s.is_finite() || t.at_s < 0.0 {
            anomalies.push(format!("#{i}: non-finite or negative timestamp ({t})"));
        } else if t.at_s < last_at_s {
            anomalies.push(format!(
                "#{i}: timestamp moves backwards ({} < {last_at_s}) ({t})",
                t.at_s
            ));
        }
        if t.from != expected_from {
            anomalies.push(format!(
                "#{i}: broken chain — leaves {} but the ladder was in {expected_from} ({t})",
                t.from
            ));
        }
        let step = rung(t.to) - rung(t.from);
        let watchdog_drop =
            matches!(t.cause, TransitionCause::TrainDeath) && t.to == HealthState::Fallback;
        if step == 0 {
            anomalies.push(format!("#{i}: self-transition ({t})"));
        } else if step.abs() > 1 && !watchdog_drop {
            anomalies.push(format!("#{i}: skips a rung ({t})"));
        }
        let is_promotion = step < 0;
        let cause_is_recovery = matches!(t.cause, TransitionCause::Recovered { .. });
        if is_promotion && !cause_is_recovery {
            anomalies.push(format!("#{i}: promotion with a demotion cause ({t})"));
        }
        if step > 0 && cause_is_recovery {
            anomalies.push(format!("#{i}: demotion attributed to recovery ({t})"));
        }
        expected_from = t.to;
        last_at_s = last_at_s.max(t.at_s);
    }
    anomalies
}

/// Tuning of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Consecutive transmission failures that demote one rung.
    pub failure_threshold: usize,
    /// Consecutive clean heartbeats that promote one rung.
    pub clean_heartbeats: usize,
    /// The degraded-mode burst limit when the base `k` is unbounded
    /// (halving ∞ is still ∞, so Degraded needs a finite cap).
    pub degraded_k: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            clean_heartbeats: 5,
            degraded_k: 2,
        }
    }
}

impl HealthConfig {
    /// Checks invariants on a config deserialized from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.failure_threshold == 0 {
            return Err("failure threshold must be at least 1".into());
        }
        if self.clean_heartbeats == 0 {
            return Err("clean-heartbeat threshold must be at least 1".into());
        }
        if self.degraded_k == 0 {
            return Err("degraded k must be at least 1".into());
        }
        Ok(())
    }

    /// The burst limit applied in the Degraded state for a base limit
    /// `base_k`: half of it (minimum 1), or [`HealthConfig::degraded_k`]
    /// when the base is unbounded.
    pub fn degraded_budget(&self, base_k: Option<usize>) -> usize {
        match base_k {
            Some(k) => (k / 2).max(1),
            None => self.degraded_k.max(1),
        }
    }
}

/// [`ETrainScheduler`] wrapped in the degradation ladder plus bounded
/// admission.
///
/// In `Healthy` it is bit-for-bit the inner eTrain scheduler (with
/// unbounded admission and no faults, a guarded run equals a plain eTrain
/// run). Demotions are driven by [`Scheduler::on_tx_failure`] streaks,
/// [`Scheduler::on_oracle_violation`] alarms, and the watchdog condition
/// `!trains_alive`; promotions by clean-heartbeat streaks.
#[derive(Debug)]
pub struct GuardedScheduler {
    inner: ETrainScheduler,
    health: HealthConfig,
    admission: AdmissionConfig,
    state: HealthState,
    /// The configured (Healthy) burst limit, restored on full recovery.
    base_k: Option<usize>,
    consecutive_failures: usize,
    clean_streak: usize,
    transitions: Vec<HealthTransition>,
    shed: Vec<Packet>,
    forced_flushes: usize,
    /// Whether to buffer structured events for the journal.
    obs_enabled: bool,
    /// Buffered `(time_s, event)` pairs awaiting a driver drain.
    obs_events: Vec<(f64, etrain_obs::Event)>,
}

impl GuardedScheduler {
    /// Wraps an eTrain configuration in the ladder, with unbounded
    /// admission.
    ///
    /// # Panics
    ///
    /// Panics if `config` or `health` is invalid.
    pub fn new(config: ETrainConfig, health: HealthConfig, profiles: Vec<AppProfile>) -> Self {
        if let Err(msg) = health.validate() {
            panic!("invalid health config: {msg}");
        }
        let base_k = config.k;
        GuardedScheduler {
            inner: ETrainScheduler::new(config, profiles),
            health,
            admission: AdmissionConfig::unbounded(),
            state: HealthState::Healthy,
            base_k,
            consecutive_failures: 0,
            clean_streak: 0,
            transitions: Vec::new(),
            shed: Vec::new(),
            forced_flushes: 0,
            obs_enabled: false,
            obs_events: Vec::new(),
        }
    }

    /// Adds bounded admission on top of the ladder.
    ///
    /// # Panics
    ///
    /// Panics if the admission config is invalid (zero capacity).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        if let Err(msg) = admission.validate() {
            panic!("invalid admission config: {msg}");
        }
        self.admission = admission;
        self
    }

    /// The current ladder state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The transitions recorded so far, in time order.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    /// Count of packets shed so far (not yet drained via
    /// [`Scheduler::take_shed`]).
    pub fn shed_count(&self) -> usize {
        self.shed.len()
    }

    /// Packets currently deferred for one app (for auditing the per-app
    /// admission bound).
    pub fn pending_for(&self, app: etrain_trace::CargoAppId) -> usize {
        self.inner.pending_for(app)
    }

    fn transition(&mut self, at_s: f64, to: HealthState, cause: TransitionCause) {
        if to == self.state {
            return;
        }
        self.transitions.push(HealthTransition {
            at_s,
            from: self.state,
            to,
            cause,
        });
        if self.obs_enabled {
            self.obs_events.push((
                at_s,
                etrain_obs::Event::HealthTransition {
                    from: self.state.to_string(),
                    to: to.to_string(),
                    cause: cause.to_string(),
                },
            ));
        }
        self.state = to;
        self.clean_streak = 0;
        match to {
            HealthState::Healthy => {
                self.consecutive_failures = 0;
                self.inner.set_k(self.base_k);
            }
            HealthState::Degraded => {
                self.inner
                    .set_k(Some(self.health.degraded_budget(self.base_k)));
            }
            // Fallback drains everything regardless of k; keep the
            // degraded budget so a partial promotion lands in a sane spot.
            HealthState::Fallback => {
                self.inner
                    .set_k(Some(self.health.degraded_budget(self.base_k)));
            }
        }
    }

    fn demote_one(&mut self, at_s: f64, cause: TransitionCause) {
        let next = match self.state {
            HealthState::Healthy => HealthState::Degraded,
            HealthState::Degraded | HealthState::Fallback => HealthState::Fallback,
        };
        self.transition(at_s, next, cause);
    }

    /// Applies admission control for an arrival; returns any packet that
    /// must be released immediately (force-flush-oldest), or an error for
    /// unknown apps. A `true` second element means the arrival itself was
    /// shed and must not be enqueued.
    fn admit(
        &mut self,
        packet: &Packet,
        now_s: f64,
    ) -> Result<(Vec<Packet>, bool), SchedulerError> {
        if packet.app.index() >= self.inner.profiles().len() {
            return Err(SchedulerError::UnknownApp { app: packet.app });
        }
        if self.admission.is_unbounded()
            || !self
                .admission
                .would_overflow(self.inner.pending(), self.inner.pending_for(packet.app))
        {
            return Ok((Vec::new(), false));
        }
        // When the per-app bound tripped, the victim must come from the
        // violating app; a global victim would leave that bound exceeded.
        let scoped = self
            .admission
            .app_overflow(self.inner.pending_for(packet.app));
        match self.admission.policy {
            ShedPolicy::RejectNew => {
                self.record_shed(now_s, packet);
                self.shed.push(*packet);
                Ok((Vec::new(), true))
            }
            ShedPolicy::DropLowestValue => {
                let victim = if scoped {
                    self.inner.evict_lowest_value_in(packet.app, now_s)
                } else {
                    self.inner.evict_lowest_value(now_s)
                };
                if let Some(victim) = victim {
                    self.record_shed(now_s, &victim);
                    self.shed.push(victim);
                }
                Ok((Vec::new(), false))
            }
            ShedPolicy::ForceFlushOldest => {
                let oldest = if scoped {
                    self.inner.pop_oldest_in(packet.app)
                } else {
                    self.inner.pop_oldest()
                };
                let mut flushed = Vec::new();
                if let Some(oldest) = oldest {
                    self.forced_flushes += 1;
                    if self.obs_enabled {
                        self.obs_events.push((
                            now_s,
                            etrain_obs::Event::ForcedFlush {
                                packet_id: oldest.id,
                                app: oldest.app.index(),
                            },
                        ));
                    }
                    flushed.push(oldest);
                }
                Ok((flushed, false))
            }
        }
    }

    fn record_shed(&mut self, now_s: f64, victim: &Packet) {
        if self.obs_enabled {
            self.obs_events.push((
                now_s,
                etrain_obs::Event::Shed {
                    packet_id: victim.id,
                    app: victim.app.index(),
                },
            ));
        }
    }
}

impl Scheduler for GuardedScheduler {
    fn name(&self) -> &'static str {
        "eTrain (guarded)"
    }

    fn on_arrival(&mut self, packet: Packet, now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        let (mut released, rejected) = self.admit(&packet, now_s)?;
        if rejected {
            return Ok(released);
        }
        released.extend(self.inner.on_arrival(packet, now_s)?);
        if self.state == HealthState::Fallback {
            // Immediate-send semantics: nothing stays deferred.
            released.extend(self.inner.drain_pending());
        }
        if self.obs_enabled {
            self.obs_events.extend(self.inner.take_obs_events());
        }
        Ok(released)
    }

    fn on_slot(&mut self, ctx: &SlotContext) -> Vec<Packet> {
        // Watchdog: every train app dead is an immediate drop to Fallback
        // (paper Sec. V-3 — stop deferring to avoid indefinite waiting).
        if !ctx.trains_alive && self.state != HealthState::Fallback {
            self.transition(
                ctx.now_s,
                HealthState::Fallback,
                TransitionCause::TrainDeath,
            );
        }
        // Clean-heartbeat recovery, one rung at a time.
        if ctx.trains_alive && ctx.heartbeat_departing && self.state != HealthState::Healthy {
            self.clean_streak += 1;
            if self.clean_streak >= self.health.clean_heartbeats {
                let streak = self.clean_streak;
                let next = match self.state {
                    HealthState::Fallback => HealthState::Degraded,
                    HealthState::Degraded | HealthState::Healthy => HealthState::Healthy,
                };
                self.transition(
                    ctx.now_s,
                    next,
                    TransitionCause::Recovered {
                        clean_heartbeats: streak,
                    },
                );
            }
        }
        let mut released = self.inner.on_slot(ctx);
        if self.state == HealthState::Fallback {
            released.extend(self.inner.drain_pending());
        }
        if self.obs_enabled {
            self.obs_events.extend(self.inner.take_obs_events());
        }
        released
    }

    fn on_tx_failure(&mut self, packet: Packet, now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        self.clean_streak = 0;
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.health.failure_threshold {
            let failures = self.consecutive_failures;
            self.consecutive_failures = 0;
            self.demote_one(now_s, TransitionCause::RepeatedTxFailures { failures });
        }
        // Re-admit through the normal arrival path (admission included:
        // under overload a retried packet competes like any other).
        self.on_arrival(packet, now_s)
    }

    fn on_oracle_violation(&mut self, now_s: f64) {
        self.clean_streak = 0;
        self.demote_one(now_s, TransitionCause::OracleViolation);
    }

    fn health_transitions(&self) -> Vec<HealthTransition> {
        self.transitions.clone()
    }

    fn take_shed(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.shed)
    }

    fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs_enabled = enabled;
        self.inner.set_obs_enabled(enabled);
        if !enabled {
            self.obs_events.clear();
        }
    }

    fn set_reference_decisions(&mut self, reference: bool) {
        self.inner.set_reference_decisions(reference);
    }

    fn take_obs_events(&mut self) -> Vec<(f64, etrain_obs::Event)> {
        // Catch any inner events not yet folded in (e.g. when the driver
        // drains between calls), then hand over the causally ordered
        // buffer.
        let stragglers = self.inner.take_obs_events();
        self.obs_events.extend(stragglers);
        std::mem::take(&mut self.obs_events)
    }

    fn forced_flushes(&self) -> usize {
        self.forced_flushes
    }

    fn slot_s(&self) -> f64 {
        self.inner.slot_s()
    }

    fn slot_quiescent(&self, trains_alive: bool) -> bool {
        // A dead-trains slot outside Fallback triggers the watchdog
        // demotion (a recorded transition), so it is never inert; the
        // clean-heartbeat recovery branch only fires on heartbeat slots,
        // which the event kernel never skips.
        (trains_alive || self.state == HealthState::Fallback)
            && self.inner.slot_quiescent(trains_alive)
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }

    fn pending_bytes(&self) -> u64 {
        self.inner.pending_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::CargoAppId;

    fn packet(id: u64, app: usize, arrival_s: f64) -> Packet {
        Packet {
            id,
            app: CargoAppId(app),
            arrival_s,
            size_bytes: 1_000,
        }
    }

    fn ctx(now_s: f64, heartbeat: bool, trains_alive: bool) -> SlotContext {
        SlotContext {
            now_s,
            heartbeat_departing: heartbeat,
            predicted_bandwidth_bps: 500_000.0,
            trains_alive,
        }
    }

    fn guarded(k: Option<usize>) -> GuardedScheduler {
        GuardedScheduler::new(
            ETrainConfig {
                theta: 10.0,
                k,
                slot_s: 1.0,
            },
            HealthConfig::default(),
            AppProfile::paper_trio(30.0),
        )
    }

    fn step(
        at_s: f64,
        from: HealthState,
        to: HealthState,
        cause: TransitionCause,
    ) -> HealthTransition {
        HealthTransition {
            at_s,
            from,
            to,
            cause,
        }
    }

    #[test]
    fn audit_accepts_a_legal_demote_recover_cycle() {
        let log = [
            step(
                10.0,
                HealthState::Healthy,
                HealthState::Degraded,
                TransitionCause::RepeatedTxFailures { failures: 3 },
            ),
            step(
                20.0,
                HealthState::Degraded,
                HealthState::Fallback,
                TransitionCause::TrainDeath,
            ),
            step(
                90.0,
                HealthState::Fallback,
                HealthState::Degraded,
                TransitionCause::Recovered {
                    clean_heartbeats: 5,
                },
            ),
            step(
                150.0,
                HealthState::Degraded,
                HealthState::Healthy,
                TransitionCause::Recovered {
                    clean_heartbeats: 5,
                },
            ),
        ];
        assert!(audit_transitions(&log).is_empty());
        assert!(audit_transitions(&[]).is_empty());
    }

    #[test]
    fn audit_flags_each_structural_violation() {
        let demote = TransitionCause::OracleViolation;
        let recover = TransitionCause::Recovered {
            clean_heartbeats: 5,
        };
        // Rung skip — except the train-death watchdog, which is the one
        // cause allowed to drop straight to Fallback.
        let skip = [step(
            1.0,
            HealthState::Healthy,
            HealthState::Fallback,
            demote,
        )];
        assert!(audit_transitions(&skip)[0].contains("skips a rung"));
        let watchdog = [step(
            1.0,
            HealthState::Healthy,
            HealthState::Fallback,
            TransitionCause::TrainDeath,
        )];
        assert!(audit_transitions(&watchdog).is_empty());
        // Self-loop.
        let looped = [step(
            1.0,
            HealthState::Healthy,
            HealthState::Healthy,
            demote,
        )];
        assert!(audit_transitions(&looped)[0].contains("self-transition"));
        // Broken chain: second transition leaves a state never entered.
        let broken = [
            step(1.0, HealthState::Healthy, HealthState::Degraded, demote),
            step(2.0, HealthState::Fallback, HealthState::Degraded, recover),
        ];
        assert!(audit_transitions(&broken)
            .iter()
            .any(|a| a.contains("broken chain")));
        // First transition not from Healthy.
        let cold = [step(
            1.0,
            HealthState::Degraded,
            HealthState::Fallback,
            demote,
        )];
        assert!(audit_transitions(&cold)[0].contains("broken chain"));
        // Time reversal.
        let reversed = [
            step(5.0, HealthState::Healthy, HealthState::Degraded, demote),
            step(2.0, HealthState::Degraded, HealthState::Fallback, demote),
        ];
        assert!(audit_transitions(&reversed)
            .iter()
            .any(|a| a.contains("moves backwards")));
        // Non-finite timestamp.
        let nan = [step(
            f64::NAN,
            HealthState::Healthy,
            HealthState::Degraded,
            demote,
        )];
        assert!(audit_transitions(&nan)[0].contains("non-finite"));
        // Cause/direction mismatches.
        let bad_promote = [
            step(1.0, HealthState::Healthy, HealthState::Degraded, demote),
            step(2.0, HealthState::Degraded, HealthState::Healthy, demote),
        ];
        assert!(audit_transitions(&bad_promote)
            .iter()
            .any(|a| a.contains("promotion with a demotion cause")));
        let bad_demote = [step(
            1.0,
            HealthState::Healthy,
            HealthState::Degraded,
            recover,
        )];
        assert!(audit_transitions(&bad_demote)[0].contains("demotion attributed to recovery"));
    }

    #[test]
    fn audit_accepts_real_guarded_scheduler_logs() {
        // Drive an actual ladder through demotions and a recovery and
        // audit the log it produced.
        let mut g = guarded(None);
        for i in 0..6 {
            g.on_tx_failure(packet(i, 1, 0.0), i as f64).unwrap();
        }
        assert_eq!(g.state(), HealthState::Fallback);
        for i in 0..12 {
            let _ = g.on_slot(&ctx(10.0 + i as f64, true, true));
        }
        assert!(!g.transitions().is_empty());
        assert!(audit_transitions(g.transitions()).is_empty());
    }

    #[test]
    fn healthy_defers_like_etrain() {
        let mut g = guarded(None);
        assert!(g.on_arrival(packet(0, 1, 0.0), 0.0).unwrap().is_empty());
        assert!(g.on_slot(&ctx(1.0, false, true)).is_empty());
        assert_eq!(g.pending(), 1);
        assert_eq!(g.state(), HealthState::Healthy);
        assert!(g.transitions().is_empty());
    }

    #[test]
    fn failure_streak_demotes_stepwise() {
        let mut g = guarded(Some(8));
        for i in 0..3 {
            g.on_tx_failure(packet(i, 0, 0.0), 5.0 + i as f64).unwrap();
        }
        assert_eq!(g.state(), HealthState::Degraded);
        for i in 3..6 {
            g.on_tx_failure(packet(i, 0, 0.0), 5.0 + i as f64).unwrap();
        }
        assert_eq!(g.state(), HealthState::Fallback);
        let causes: Vec<_> = g.transitions().iter().map(|t| t.cause).collect();
        assert_eq!(
            causes,
            vec![
                TransitionCause::RepeatedTxFailures { failures: 3 },
                TransitionCause::RepeatedTxFailures { failures: 3 },
            ]
        );
    }

    #[test]
    fn degraded_halves_burst_limit() {
        let mut g = guarded(Some(8));
        for i in 0..3 {
            g.on_tx_failure(packet(100 + i, 0, 0.0), 1.0).unwrap();
        }
        assert_eq!(g.state(), HealthState::Degraded);
        // Fallback packets from on_tx_failure already drained; queue fresh.
        let drained = g.on_slot(&ctx(2.0, true, true));
        drop(drained);
        for i in 0..6 {
            g.on_arrival(packet(i, 1, 3.0), 3.0).unwrap();
        }
        let released = g.on_slot(&ctx(4.0, true, true));
        assert_eq!(released.len(), 4, "k halved from 8 to 4");
    }

    #[test]
    fn unbounded_k_degrades_to_cap() {
        let cfg = HealthConfig::default();
        assert_eq!(cfg.degraded_budget(None), 2);
        assert_eq!(cfg.degraded_budget(Some(8)), 4);
        assert_eq!(cfg.degraded_budget(Some(1)), 1);
    }

    #[test]
    fn fallback_sends_immediately() {
        let mut g = guarded(None);
        for i in 0..6 {
            g.on_tx_failure(packet(100 + i, 0, 0.0), 1.0).unwrap();
        }
        assert_eq!(g.state(), HealthState::Fallback);
        let released = g.on_arrival(packet(0, 1, 2.0), 2.0).unwrap();
        assert_eq!(released.len(), 1, "fallback releases on arrival");
        assert_eq!(g.pending(), 0);
    }

    #[test]
    fn train_death_drops_to_fallback_and_recovers() {
        let mut g = guarded(None);
        g.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        let released = g.on_slot(&ctx(1.0, false, false));
        assert_eq!(released.len(), 1, "watchdog flushes the backlog");
        assert_eq!(g.state(), HealthState::Fallback);
        assert_eq!(g.transitions()[0].cause, TransitionCause::TrainDeath);

        // 5 clean heartbeats -> Degraded, 5 more -> Healthy.
        for i in 0..5 {
            g.on_slot(&ctx(10.0 + i as f64, true, true));
        }
        assert_eq!(g.state(), HealthState::Degraded);
        for i in 0..5 {
            g.on_slot(&ctx(20.0 + i as f64, true, true));
        }
        assert_eq!(g.state(), HealthState::Healthy);
        assert_eq!(g.transitions().len(), 3);
        let at: Vec<f64> = g.transitions().iter().map(|t| t.at_s).collect();
        assert!(at.windows(2).all(|w| w[0] <= w[1]), "timestamps ordered");
    }

    #[test]
    fn oracle_violation_demotes_immediately() {
        let mut g = guarded(None);
        g.on_oracle_violation(7.0);
        assert_eq!(g.state(), HealthState::Degraded);
        g.on_oracle_violation(8.0);
        assert_eq!(g.state(), HealthState::Fallback);
        assert_eq!(g.transitions().len(), 2);
        assert_eq!(g.transitions()[1].cause, TransitionCause::OracleViolation);
    }

    #[test]
    fn failures_reset_clean_streak() {
        let mut g = guarded(None);
        g.on_oracle_violation(1.0);
        for i in 0..4 {
            g.on_slot(&ctx(2.0 + i as f64, true, true));
        }
        g.on_tx_failure(packet(0, 0, 0.0), 6.5).unwrap();
        for i in 0..4 {
            g.on_slot(&ctx(7.0 + i as f64, true, true));
        }
        assert_eq!(g.state(), HealthState::Degraded, "streak restarted");
        g.on_slot(&ctx(11.0, true, true));
        assert_eq!(g.state(), HealthState::Healthy);
    }

    #[test]
    fn reject_new_sheds_arrivals_at_capacity() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_global_capacity(2)
                .with_policy(ShedPolicy::RejectNew),
        );
        for i in 0..5 {
            g.on_arrival(packet(i, 1, 0.0), 0.0).unwrap();
        }
        assert_eq!(g.pending(), 2);
        assert_eq!(g.shed_count(), 3);
        let shed = g.take_shed();
        assert_eq!(shed.iter().map(|p| p.id).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(g.shed_count(), 0);
    }

    #[test]
    fn drop_lowest_value_keeps_costliest() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_global_capacity(2)
                .with_policy(ShedPolicy::DropLowestValue),
        );
        // Mail (app 0) is free before its deadline; Weibo (app 1) accrues
        // cost immediately. At capacity the Mail packet is the victim.
        g.on_arrival(packet(0, 0, 0.0), 0.0).unwrap();
        g.on_arrival(packet(1, 1, 0.0), 0.0).unwrap();
        g.on_arrival(packet(2, 1, 10.0), 10.0).unwrap();
        assert_eq!(g.pending(), 2);
        let shed = g.take_shed();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 0);
    }

    #[test]
    fn force_flush_oldest_releases_instead_of_dropping() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_per_app_capacity(2)
                .with_policy(ShedPolicy::ForceFlushOldest),
        );
        g.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        g.on_arrival(packet(1, 1, 1.0), 1.0).unwrap();
        let released = g.on_arrival(packet(2, 1, 2.0), 2.0).unwrap();
        assert_eq!(released.len(), 1, "oldest flushed, not shed");
        assert_eq!(released[0].id, 0);
        assert_eq!(g.forced_flushes(), 1);
        assert_eq!(g.shed_count(), 0);
        assert_eq!(g.pending(), 2);
    }

    #[test]
    fn per_app_capacity_is_independent() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_per_app_capacity(1)
                .with_policy(ShedPolicy::RejectNew),
        );
        g.on_arrival(packet(0, 0, 0.0), 0.0).unwrap();
        g.on_arrival(packet(1, 1, 0.0), 0.0).unwrap();
        assert_eq!(g.pending(), 2, "different apps both admitted");
        g.on_arrival(packet(2, 0, 1.0), 1.0).unwrap();
        assert_eq!(g.shed_count(), 1);
    }

    #[test]
    fn unknown_app_is_an_error_not_a_shed() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_global_capacity(1)
                .with_policy(ShedPolicy::RejectNew),
        );
        let err = g.on_arrival(packet(0, 99, 0.0), 0.0).unwrap_err();
        assert!(matches!(err, SchedulerError::UnknownApp { .. }));
        assert_eq!(g.shed_count(), 0);
    }

    #[test]
    fn obs_events_cover_shed_flush_and_transitions() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_global_capacity(1)
                .with_policy(ShedPolicy::RejectNew),
        );
        g.set_obs_enabled(true);
        g.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        g.on_arrival(packet(1, 1, 0.5), 0.5).unwrap(); // shed: at capacity
        g.on_oracle_violation(1.0); // healthy -> degraded
        let _ = g.on_slot(&ctx(2.0, true, true));
        let kinds: Vec<&'static str> = g.take_obs_events().iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"shed"), "{kinds:?}");
        assert!(kinds.contains(&"health_transition"), "{kinds:?}");
        assert!(kinds.contains(&"piggyback_decision"), "{kinds:?}");
        // Causal order: the shed (t=0.5) precedes the transition (t=1.0).
        let shed_pos = kinds.iter().position(|k| *k == "shed").unwrap();
        let trans_pos = kinds
            .iter()
            .position(|k| *k == "health_transition")
            .unwrap();
        assert!(shed_pos < trans_pos);
    }

    #[test]
    fn forced_flush_emits_event() {
        let mut g = guarded(None).with_admission(
            AdmissionConfig::unbounded()
                .with_global_capacity(1)
                .with_policy(ShedPolicy::ForceFlushOldest),
        );
        g.set_obs_enabled(true);
        g.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        let released = g.on_arrival(packet(1, 1, 1.0), 1.0).unwrap();
        assert_eq!(released.len(), 1);
        let events = g.take_obs_events();
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, etrain_obs::Event::ForcedFlush { packet_id: 0, .. })));
    }

    #[test]
    fn transition_display_is_readable() {
        let t = HealthTransition {
            at_s: 42.0,
            from: HealthState::Healthy,
            to: HealthState::Degraded,
            cause: TransitionCause::RepeatedTxFailures { failures: 3 },
        };
        assert_eq!(
            t.to_string(),
            "t=42.0s healthy -> degraded (3 consecutive tx failures)"
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: HealthTransition = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
