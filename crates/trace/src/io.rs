//! Trace persistence: CSV for the tabular trace formats and JSON for
//! specifications and whole traces.
//!
//! The CSV formats mirror the shapes of the paper's data: bandwidth traces
//! are `(time_s, bps)` rows at fixed cadence, packet traces are
//! `(id, app, arrival_s, size_bytes)`, heartbeat traces are
//! `(train, time_s, size_bytes)`, and user traces are the paper's 4-tuple
//! `(user_id, behavior, time_s, size_bytes)`.
//!
//! All readers and writers are generic over [`std::io::Read`] /
//! [`std::io::Write`] taken by value; pass `&mut reader` to keep ownership.

use std::io::{BufRead, BufReader, Read, Write};

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::bandwidth::BandwidthTrace;
use crate::heartbeats::Heartbeat;
use crate::ids::{CargoAppId, TrainAppId};
use crate::packets::Packet;
use crate::user::{BehaviorType, UserBehaviorRecord};

/// Error produced by trace readers and writers.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A CSV line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse failed at line {line}: {message}")
            }
            TraceIoError::Json(e) => write!(f, "trace json failed: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serializes any serde-serializable value as pretty JSON.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O or serialization failure.
pub fn write_json<T: Serialize, W: Write>(value: &T, mut writer: W) -> Result<(), TraceIoError> {
    let text = serde_json::to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Deserializes a value previously written with [`write_json`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O or deserialization failure.
pub fn read_json<T: DeserializeOwned, R: Read>(mut reader: R) -> Result<T, TraceIoError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    Ok(serde_json::from_str(&text)?)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    name: &str,
) -> Result<T, TraceIoError> {
    let raw = field.ok_or_else(|| TraceIoError::Parse {
        line,
        message: format!("missing field `{name}`"),
    })?;
    raw.trim().parse().map_err(|_| TraceIoError::Parse {
        line,
        message: format!("invalid `{name}`: {raw:?}"),
    })
}

/// Writes a bandwidth trace as `time_s,bps` rows with a header.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_bandwidth_csv<W: Write>(
    trace: &BandwidthTrace,
    mut writer: W,
) -> Result<(), TraceIoError> {
    writeln!(writer, "time_s,bps")?;
    for (i, &bps) in trace.samples_bps().iter().enumerate() {
        writeln!(writer, "{},{}", i as f64 * trace.dt_s(), bps)?;
    }
    Ok(())
}

/// Reads a bandwidth trace written by [`write_bandwidth_csv`]. The cadence
/// is inferred from the first two rows (1 s for single-row traces).
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, malformed rows, or an empty
/// trace.
pub fn read_bandwidth_csv<R: Read>(reader: R) -> Result<BandwidthTrace, TraceIoError> {
    let mut times = Vec::new();
    let mut samples = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue; // header
        }
        let mut fields = line.split(',');
        let t: f64 = parse_field(fields.next(), idx + 1, "time_s")?;
        let bps: f64 = parse_field(fields.next(), idx + 1, "bps")?;
        times.push(t);
        samples.push(bps);
    }
    if samples.is_empty() {
        return Err(TraceIoError::Parse {
            line: 0,
            message: "bandwidth trace is empty".to_owned(),
        });
    }
    let dt = if times.len() >= 2 {
        times[1] - times[0]
    } else {
        1.0
    };
    Ok(BandwidthTrace::new(dt, samples))
}

/// Writes a packet trace as `id,app,arrival_s,size_bytes` rows.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_packets_csv<W: Write>(packets: &[Packet], mut writer: W) -> Result<(), TraceIoError> {
    writeln!(writer, "id,app,arrival_s,size_bytes")?;
    for p in packets {
        writeln!(
            writer,
            "{},{},{},{}",
            p.id,
            p.app.index(),
            p.arrival_s,
            p.size_bytes
        )?;
    }
    Ok(())
}

/// Reads a packet trace written by [`write_packets_csv`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure or malformed rows.
pub fn read_packets_csv<R: Read>(reader: R) -> Result<Vec<Packet>, TraceIoError> {
    let mut packets = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        packets.push(Packet {
            id: parse_field(fields.next(), idx + 1, "id")?,
            app: CargoAppId(parse_field(fields.next(), idx + 1, "app")?),
            arrival_s: parse_field(fields.next(), idx + 1, "arrival_s")?,
            size_bytes: parse_field(fields.next(), idx + 1, "size_bytes")?,
        });
    }
    Ok(packets)
}

/// Writes a heartbeat trace as `train,time_s,size_bytes` rows.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_heartbeats_csv<W: Write>(
    heartbeats: &[Heartbeat],
    mut writer: W,
) -> Result<(), TraceIoError> {
    writeln!(writer, "train,time_s,size_bytes")?;
    for hb in heartbeats {
        writeln!(
            writer,
            "{},{},{}",
            hb.train.index(),
            hb.time_s,
            hb.size_bytes
        )?;
    }
    Ok(())
}

/// Reads a heartbeat trace written by [`write_heartbeats_csv`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure or malformed rows.
pub fn read_heartbeats_csv<R: Read>(reader: R) -> Result<Vec<Heartbeat>, TraceIoError> {
    let mut heartbeats = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        heartbeats.push(Heartbeat {
            train: TrainAppId(parse_field(fields.next(), idx + 1, "train")?),
            time_s: parse_field(fields.next(), idx + 1, "time_s")?,
            size_bytes: parse_field(fields.next(), idx + 1, "size_bytes")?,
        });
    }
    Ok(heartbeats)
}

/// Writes user behaviour records in the paper's 4-tuple format:
/// `user_id,behavior,time_s,size_bytes`.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_user_csv<W: Write>(
    records: &[UserBehaviorRecord],
    mut writer: W,
) -> Result<(), TraceIoError> {
    writeln!(writer, "user_id,behavior,time_s,size_bytes")?;
    for r in records {
        writeln!(
            writer,
            "{},{},{},{}",
            r.user_id, r.behavior, r.time_s, r.size_bytes
        )?;
    }
    Ok(())
}

/// Reads user behaviour records written by [`write_user_csv`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, malformed rows, or unknown
/// behavior names.
pub fn read_user_csv<R: Read>(reader: R) -> Result<Vec<UserBehaviorRecord>, TraceIoError> {
    let mut records = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let user_id = parse_field(fields.next(), idx + 1, "user_id")?;
        let behavior_raw = fields.next().ok_or_else(|| TraceIoError::Parse {
            line: idx + 1,
            message: "missing field `behavior`".to_owned(),
        })?;
        let behavior = match behavior_raw.trim() {
            "upload" => BehaviorType::Upload,
            "browse" => BehaviorType::Browse,
            other => {
                return Err(TraceIoError::Parse {
                    line: idx + 1,
                    message: format!("unknown behavior {other:?}"),
                })
            }
        };
        records.push(UserBehaviorRecord {
            user_id,
            behavior,
            time_s: parse_field(fields.next(), idx + 1, "time_s")?,
            size_bytes: parse_field(fields.next(), idx + 1, "size_bytes")?,
        });
    }
    Ok(records)
}

/// Writes a packet capture as `time_s,local_port,remote_port,direction,length`
/// rows (ground-truth flow labels are not part of the capture format, as in
/// a real `.pcap`).
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure.
pub fn write_capture_csv<W: Write>(
    packets: &[crate::capture::CapturedPacket],
    mut writer: W,
) -> Result<(), TraceIoError> {
    writeln!(writer, "time_s,local_port,remote_port,direction,length")?;
    for p in packets {
        let direction = match p.direction {
            crate::capture::PacketDirection::Outbound => "out",
            crate::capture::PacketDirection::Inbound => "in",
        };
        writeln!(
            writer,
            "{},{},{},{},{}",
            p.time_s, p.flow.local_port, p.flow.remote_port, direction, p.length
        )?;
    }
    Ok(())
}

/// Reads a capture written by [`write_capture_csv`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, malformed rows, or unknown
/// direction names.
pub fn read_capture_csv<R: Read>(
    reader: R,
) -> Result<Vec<crate::capture::CapturedPacket>, TraceIoError> {
    use crate::capture::{CapturedPacket, FlowKey, PacketDirection};
    let mut packets = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let time_s = parse_field(fields.next(), idx + 1, "time_s")?;
        let local_port = parse_field(fields.next(), idx + 1, "local_port")?;
        let remote_port = parse_field(fields.next(), idx + 1, "remote_port")?;
        let direction_raw = fields.next().ok_or_else(|| TraceIoError::Parse {
            line: idx + 1,
            message: "missing field `direction`".to_owned(),
        })?;
        let direction = match direction_raw.trim() {
            "out" => PacketDirection::Outbound,
            "in" => PacketDirection::Inbound,
            other => {
                return Err(TraceIoError::Parse {
                    line: idx + 1,
                    message: format!("unknown direction {other:?}"),
                })
            }
        };
        packets.push(CapturedPacket {
            time_s,
            flow: FlowKey {
                local_port,
                remote_port,
            },
            direction,
            length: parse_field(fields.next(), idx + 1, "length")?,
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::wuhan_drive_synthetic;
    use crate::heartbeats::{synthesize, TrainAppSpec};
    use crate::packets::CargoWorkload;
    use crate::user::{generate_app_use, Activeness};

    #[test]
    fn bandwidth_csv_roundtrip() {
        let trace = wuhan_drive_synthetic(1);
        let mut buf = Vec::new();
        write_bandwidth_csv(&trace, &mut buf).unwrap();
        let back = read_bandwidth_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.dt_s(), trace.dt_s());
        for (a, b) in trace.samples_bps().iter().zip(back.samples_bps()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn packets_csv_roundtrip() {
        let packets = CargoWorkload::paper_default(0.08).generate(600.0, 2);
        let mut buf = Vec::new();
        write_packets_csv(&packets, &mut buf).unwrap();
        let back = read_packets_csv(buf.as_slice()).unwrap();
        assert_eq!(packets, back);
    }

    #[test]
    fn heartbeats_csv_roundtrip() {
        let beats = synthesize(&TrainAppSpec::paper_trio(), 1800.0, 3);
        let mut buf = Vec::new();
        write_heartbeats_csv(&beats, &mut buf).unwrap();
        let back = read_heartbeats_csv(buf.as_slice()).unwrap();
        assert_eq!(beats, back);
    }

    #[test]
    fn user_csv_roundtrip() {
        let trace = generate_app_use(7, Activeness::Moderate, 5);
        let mut buf = Vec::new();
        write_user_csv(&trace.records, &mut buf).unwrap();
        let back = read_user_csv(buf.as_slice()).unwrap();
        assert_eq!(trace.records, back);
    }

    #[test]
    fn json_roundtrip_for_specs() {
        let specs = TrainAppSpec::paper_trio();
        let mut buf = Vec::new();
        write_json(&specs, &mut buf).unwrap();
        let back: Vec<TrainAppSpec> = read_json(buf.as_slice()).unwrap();
        assert_eq!(specs, back);
    }

    #[test]
    fn malformed_csv_reports_line() {
        let data = "id,app,arrival_s,size_bytes\n0,0,notanumber,10\n";
        let err = read_packets_csv(data.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("arrival_s"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_behavior_rejected() {
        let data = "user_id,behavior,time_s,size_bytes\n1,teleport,0.0,10\n";
        let err = read_user_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("teleport"));
    }

    #[test]
    fn empty_bandwidth_csv_rejected() {
        let err = read_bandwidth_csv("time_s,bps\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn capture_csv_roundtrip() {
        use crate::capture::{synthesize_capture, CaptureConfig};
        let capture = synthesize_capture(
            &CaptureConfig {
                duration_s: 900.0,
                ..CaptureConfig::default()
            },
            6,
        );
        let mut buf = Vec::new();
        write_capture_csv(&capture.packets, &mut buf).unwrap();
        let back = read_capture_csv(buf.as_slice()).unwrap();
        assert_eq!(capture.packets, back);
    }

    #[test]
    fn capture_csv_rejects_unknown_direction() {
        let data = "time_s,local_port,remote_port,direction,length\n1.0,1,2,sideways,3\n";
        let err = read_capture_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("sideways"));
    }
}
