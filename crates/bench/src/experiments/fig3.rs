//! Fig. 3: heartbeat cycles of the measured apps, with interleaved data
//! transmissions.
//!
//! Paper observations: (a–c) data packet transmissions have no impact on
//! the timing of heartbeat transmissions; (d) NetEase news starts at a
//! 60 s cycle and doubles after every 6 heartbeats up to 480 s, while
//! RenRen holds a constant 300 s cycle.

use crate::ExperimentResult;
use etrain_hb::HeartbeatMonitor;
use etrain_sim::Table;
use etrain_trace::heartbeats::{CyclePattern, TrainAppSpec};
use etrain_trace::packets::CargoWorkload;
use etrain_trace::TrainAppId;

use super::s;

/// Runs the Fig. 3 reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { 3600.0 } else { 7200.0 };
    let mut tables = Vec::new();

    // (a-c): IM apps with data traffic interleaved — heartbeat timing is
    // unaffected (heartbeats and data are independent processes; we verify
    // the monitor recovers the exact cycle despite the data noise).
    let mut im = Table::new(
        "Fig. 3(a-c) — IM heartbeat cycles with data traffic present",
        &[
            "app",
            "spec_cycle_s",
            "data_packets",
            "detected_cycle_s",
            "unaffected",
        ],
    );
    let data = CargoWorkload::paper_default(0.08).generate(horizon, 5);
    for spec in TrainAppSpec::paper_trio() {
        let mut rng = etrain_trace::rng::seeded(2);
        let beats = spec.generate(TrainAppId(0), horizon, &mut rng);
        let mut monitor = HeartbeatMonitor::new();
        for hb in &beats {
            monitor.observe(TrainAppId(0), hb.time_s);
        }
        let detected = match monitor.pattern(TrainAppId(0)) {
            etrain_hb::DetectedPattern::Fixed { cycle_s, .. } => cycle_s,
            other => panic!("IM apps have fixed cycles, got {other:?}"),
        };
        let spec_cycle = match spec.pattern {
            CyclePattern::Fixed { cycle_s } => cycle_s,
            _ => unreachable!("paper trio is fixed-cycle"),
        };
        im.push_row_strings(vec![
            spec.name.clone(),
            s(spec_cycle),
            data.len().to_string(),
            s(detected),
            ((detected - spec_cycle).abs() < 1.0).to_string(),
        ]);
    }
    tables.push(im);

    // (d): NetEase doubling vs RenRen constant — the inter-heartbeat gap
    // series.
    let mut gaps = Table::new(
        "Fig. 3(d) — NetEase doubling vs RenRen constant cycle",
        &["beat_index", "netease_gap_s", "renren_gap_s"],
    );
    let netease = TrainAppSpec::netease()
        .pattern
        .departure_times(0.0, horizon);
    let renren = TrainAppSpec::renren().pattern.departure_times(0.0, horizon);
    let n = netease.len().min(renren.len()).saturating_sub(1).min(24);
    for i in 0..n {
        gaps.push_row_strings(vec![
            i.to_string(),
            s(netease[i + 1] - netease[i]),
            s(renren[i + 1] - renren[i]),
        ]);
    }
    tables.push(gaps);
    ExperimentResult::from_tables(tables).headline_cell(
        "netease_first_gap_s",
        1,
        0,
        "netease_gap_s",
        "s",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_cycles_match_specs_despite_data() {
        let tables = run(true).tables;
        for row in tables[0].to_csv().lines().skip(1) {
            assert!(row.ends_with("true"), "cycle affected by data: {row}");
        }
    }

    #[test]
    fn netease_gaps_double_and_cap() {
        let tables = run(false).tables;
        let csv = tables[1].to_csv();
        let gaps: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|row| row.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(gaps[0], 60.0);
        assert_eq!(gaps[6], 120.0);
        assert!(gaps.iter().all(|&g| g <= 480.0));
    }
}
